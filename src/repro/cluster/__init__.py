"""Mesos-like cluster manager substrate.

The paper runs ElasticRMI on Apache Mesos, which carves physical/virtual
nodes into *slices* (resource offers: a CPU + RAM reservation backed by a
Linux container) and hands them to frameworks.  ElasticRMI interacts with
Mesos through a narrow contract — request slices, receive (possibly
partial) grants, release slices, observe cluster utilization — and this
package reproduces exactly that contract:

- :class:`Resources` — a CPU/RAM reservation.
- :class:`Node` / :class:`Slice` — machines and the slices carved from them.
- :class:`MesosMaster` — framework registration, slice allocation with
  partial grants, release, utilization watermark notifications for
  administrators, and failure injection (master outage pauses scaling, as
  in section 4.4 of the paper).
- :class:`ContainerProvisioner` / :class:`VMProvisioner` — provisioning
  latency models: containers start in seconds (ElasticRMI, Figure 8), VM
  instances boot in minutes (the CloudWatch baseline).
"""

from repro.cluster.node import Node, Resources, Slice, SliceState
from repro.cluster.master import Framework, MesosMaster, UtilizationWatch
from repro.cluster.provisioner import (
    ContainerProvisioner,
    InstantProvisioner,
    Provisioner,
    VMProvisioner,
)

__all__ = [
    "ContainerProvisioner",
    "InstantProvisioner",
    "Framework",
    "MesosMaster",
    "Node",
    "Provisioner",
    "Resources",
    "Slice",
    "SliceState",
    "UtilizationWatch",
    "VMProvisioner",
]
