"""The Mesos-like master: slice allocation with partial grants.

ElasticRMI's contract with Mesos (paper sections 2.4, 4.2):

- While instantiating an elastic class with minimum pool size ``k``, the
  runtime requests ``k`` slices; if only ``l < k`` are free it receives
  ``l`` and creates ``l`` objects (partial grants, never an error).
- Released slices return to the cluster and may be re-granted to any
  framework (or the same one later).
- Administrators can register to be notified when cluster utilization
  crosses configurable high/low watermarks (proactive capacity planning).
- A master outage pauses add/remove of objects until recovery (4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MasterUnavailableError, SliceError
from repro.cluster.node import Node, Resources, Slice, SliceState


@dataclass
class Framework:
    """A registered consumer of slices (e.g. one ElasticRMI runtime)."""

    name: str
    slices: list[Slice] = field(default_factory=list)

    def slice_count(self) -> int:
        return len(self.slices)


@dataclass
class UtilizationWatch:
    """Administrator notification thresholds on cluster slice utilization."""

    high: float
    low: float
    on_high: Callable[[float], None]
    on_low: Callable[[float], None]
    _armed_high: bool = True
    _armed_low: bool = True


class MesosMaster:
    """Allocates slices to frameworks; the single point scaling talks to."""

    def __init__(self, nodes: list[Node] | None = None) -> None:
        self.nodes: list[Node] = list(nodes or [])
        self.frameworks: dict[str, Framework] = {}
        self.available = True
        self._watches: list[UtilizationWatch] = []
        self._lost_callbacks: dict[str, Callable[[Slice], None]] = {}
        # Observability: None keeps allocation at one extra branch.
        self._tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a :class:`repro.obs.Tracer`.

        Slice events record *node names* and counts — never slice ids,
        which come from a process-global counter and would make seeded
        traces differ across runs."""
        self._tracer = tracer

    # -- cluster construction helpers ---------------------------------------

    @classmethod
    def homogeneous(
        cls,
        node_count: int,
        slices_per_node: int = 4,
        slice_cpus: float = 2.0,
        slice_mem_mb: int = 2048,
    ) -> "MesosMaster":
        """Build a uniform cluster: ``node_count`` nodes, each carved into
        ``slices_per_node`` identical slices (the paper's 2-CPU/2-GB
        example reservation)."""
        slice_size = Resources(slice_cpus, slice_mem_mb)
        capacity = Resources(
            slice_cpus * slices_per_node, slice_mem_mb * slices_per_node
        )
        nodes = [
            Node(f"node-{i}", capacity, slice_size) for i in range(node_count)
        ]
        return cls(nodes)

    def add_node(self, node: Node) -> None:
        self.nodes.append(node)

    # -- framework API -------------------------------------------------------

    def register_framework(
        self,
        name: str,
        on_slice_lost: Callable[[Slice], None] | None = None,
    ) -> Framework:
        if name in self.frameworks:
            raise ValueError(f"framework already registered: {name}")
        fw = Framework(name)
        self.frameworks[name] = fw
        if on_slice_lost is not None:
            self._lost_callbacks[name] = on_slice_lost
        return fw

    def request_slices(self, framework: str, count: int) -> list[Slice]:
        """Grant up to ``count`` free slices, spreading across nodes.

        Partial grants are normal (the caller creates fewer objects); an
        empty list means the cluster is exhausted.  Raises
        :class:`MasterUnavailableError` during a master outage.
        """
        self._check_available()
        fw = self._framework(framework)
        if count < 0:
            raise ValueError(f"negative slice count: {count}")
        granted: list[Slice] = []
        # Round-robin across nodes so one elastic pool's members land on
        # distinct machines when possible (perf note in paper section 2.4).
        pools = [n.free_slices() for n in self.nodes]
        idx = 0
        while len(granted) < count and any(pools):
            pool = pools[idx % len(pools)]
            if pool:
                sl = pool.pop(0)
                sl.state = SliceState.ALLOCATED
                sl.framework = framework
                fw.slices.append(sl)
                granted.append(sl)
            idx += 1
            if idx > len(pools) and not any(pools):
                break
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "master", "slice-offer",
                framework=framework, requested=count,
            )
            tracer.emit(
                "master", "slice-grant",
                framework=framework, granted=len(granted),
                nodes=sorted(sl.node.node_id for sl in granted),
            )
        self._check_watches()
        return granted

    def release_slice(self, framework: str, sl: Slice) -> None:
        """Return a slice to the cluster for reuse by any framework."""
        self._check_available()
        fw = self._framework(framework)
        if sl not in fw.slices:
            raise SliceError(f"{sl} is not held by framework {framework}")
        fw.slices.remove(sl)
        sl.node.release(sl)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "master", "slice-release",
                framework=framework, node=sl.node.node_id,
            )
        self._check_watches()

    # -- introspection -------------------------------------------------------

    def total_slices(self) -> int:
        return sum(len(n.slices) for n in self.nodes if n.alive)

    def allocated_slices(self) -> int:
        return sum(len(n.allocated_slices()) for n in self.nodes if n.alive)

    def free_slice_count(self) -> int:
        return sum(len(n.free_slices()) for n in self.nodes)

    def utilization(self) -> float:
        total = self.total_slices()
        return 0.0 if total == 0 else self.allocated_slices() / total

    # -- administrator watermarks (paper section 4.2) -------------------------

    def watch_utilization(
        self,
        high: float,
        low: float,
        on_high: Callable[[float], None],
        on_low: Callable[[float], None],
    ) -> UtilizationWatch:
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")
        watch = UtilizationWatch(high, low, on_high, on_low)
        self._watches.append(watch)
        return watch

    def _check_watches(self) -> None:
        util = self.utilization()
        for w in self._watches:
            if util >= w.high:
                if w._armed_high:
                    w._armed_high = False
                    w.on_high(util)
            else:
                w._armed_high = True
            if util <= w.low:
                if w._armed_low:
                    w._armed_low = False
                    w.on_low(util)
            else:
                w._armed_low = True

    # -- failure injection ----------------------------------------------------

    def fail(self) -> None:
        """Master outage: allocation and release raise until recovery."""
        self.available = False

    def recover(self) -> None:
        self.available = True

    def fail_node(self, node_id: str) -> None:
        """Crash one node, notifying owning frameworks of lost slices."""
        node = self._node(node_id)
        for sl in node.fail():
            owner = sl.framework
            if owner and owner in self.frameworks:
                fw = self.frameworks[owner]
                if sl in fw.slices:
                    fw.slices.remove(sl)
                cb = self._lost_callbacks.get(owner)
                if cb is not None:
                    cb(sl)
        # Capacity just changed; watermark watches must see it even
        # though no allocation round triggered the re-check.
        self._check_watches()

    def recover_node(self, node_id: str) -> None:
        self._node(node_id).recover()
        self._check_watches()

    def node(self, node_id: str) -> Node:
        """Public node lookup (fault scripts pick victims through it)."""
        return self._node(node_id)

    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    # -- internals -------------------------------------------------------------

    def _check_available(self) -> None:
        if not self.available:
            raise MasterUnavailableError("mesos master is unavailable")

    def _framework(self, name: str) -> Framework:
        if name not in self.frameworks:
            raise ValueError(f"unknown framework: {name}")
        return self.frameworks[name]

    def _node(self, node_id: str) -> Node:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise ValueError(f"unknown node: {node_id}")
