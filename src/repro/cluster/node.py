"""Nodes, resources, and slices.

A :class:`Node` models one machine managed by the master.  Its capacity is
carved into :class:`Slice` reservations (Mesos resource offers backed by
Linux containers).  Slices are the unit of allocation: ElasticRMI places
exactly one JVM (pool member) per slice, never two (paper section 4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

from repro.errors import SliceError


@dataclass(frozen=True)
class Resources:
    """A resource reservation: CPU cores and RAM megabytes.

    Supports the small amount of arithmetic the allocator needs; both
    quantities must stay non-negative.
    """

    cpus: float
    mem_mb: int

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.mem_mb < 0:
            raise ValueError(f"negative resources: {self}")

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(self.cpus + other.cpus, self.mem_mb + other.mem_mb)

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(self.cpus - other.cpus, self.mem_mb - other.mem_mb)

    def fits_in(self, other: "Resources") -> bool:
        """True if a reservation of this size fits inside ``other``."""
        return self.cpus <= other.cpus and self.mem_mb <= other.mem_mb


class SliceState(Enum):
    FREE = "free"
    ALLOCATED = "allocated"
    LOST = "lost"  # node failed while the slice was in use


_slice_ids = itertools.count(1)


class Slice:
    """One resource offer: a container-backed reservation on a node."""

    def __init__(self, node: "Node", resources: Resources) -> None:
        self.slice_id = f"slice-{next(_slice_ids)}"
        self.node = node
        self.resources = resources
        self.state = SliceState.FREE
        self.framework: str | None = None  # owning framework name

    def __repr__(self) -> str:
        return (
            f"Slice({self.slice_id}, node={self.node.node_id}, "
            f"state={self.state.value}, framework={self.framework})"
        )


class Node:
    """A machine (physical or virtual) carved into equally sized slices."""

    def __init__(
        self,
        node_id: str,
        capacity: Resources,
        slice_size: Resources,
    ) -> None:
        if not slice_size.fits_in(capacity):
            raise ValueError(
                f"slice {slice_size} does not fit in node capacity {capacity}"
            )
        self.node_id = node_id
        self.capacity = capacity
        self.slice_size = slice_size
        self.alive = True
        self.slices: list[Slice] = []
        remaining = capacity
        while slice_size.fits_in(remaining) and slice_size.cpus > 0:
            self.slices.append(Slice(self, slice_size))
            remaining = remaining - slice_size

    def free_slices(self) -> list[Slice]:
        if not self.alive:
            return []
        return [s for s in self.slices if s.state is SliceState.FREE]

    def allocated_slices(self) -> list[Slice]:
        return [s for s in self.slices if s.state is SliceState.ALLOCATED]

    def lost_slices(self) -> list[Slice]:
        """Slices stranded by a node crash, pending recovery/reap."""
        return [s for s in self.slices if s.state is SliceState.LOST]

    def fail(self) -> list[Slice]:
        """Crash the node.  In-use slices transition to LOST and are
        returned so the master can notify owning frameworks."""
        self.alive = False
        lost = []
        for s in self.slices:
            if s.state is SliceState.ALLOCATED:
                s.state = SliceState.LOST
                lost.append(s)
        return lost

    def recover(self) -> None:
        """Bring the node back; lost slices become free again."""
        self.alive = True
        for s in self.slices:
            if s.state is SliceState.LOST:
                s.state = SliceState.FREE
                s.framework = None

    def release(self, sl: Slice) -> None:
        if sl.node is not self:
            raise SliceError(f"{sl} does not belong to node {self.node_id}")
        if sl.state is not SliceState.ALLOCATED:
            raise SliceError(f"cannot release {sl}: not allocated")
        sl.state = SliceState.FREE
        sl.framework = None
