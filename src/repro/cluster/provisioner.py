"""Provisioning latency models.

Figure 8 of the paper plots *provisioning interval*: the time between
initiating a request to bring up a resource and that resource serving its
first request.  Two regimes matter:

- **Containers** (ElasticRMI on Mesos): tens of seconds at most.  The paper
  observes latency *growing with workload* because the sentinel must compute
  which in-flight invocations to redirect, and the sentinel itself is busier
  at high load; :class:`ContainerProvisioner` models base + load-dependent
  components.
- **VM instances** (CloudWatch + AutoScaling): several minutes — so far
  above ElasticRMI that the paper omits the curve from Figure 8.

Provisioners only *sample* latencies; the runtime schedules the delays.
"""

from __future__ import annotations

import random
from typing import Protocol


class Provisioner(Protocol):
    """Samples the seconds from "request resource" to "serves first request"."""

    def sample_up_latency(self, load_factor: float) -> float:
        """Latency to bring a resource up.

        ``load_factor`` is the pool's current normalized load in [0, ∞);
        implementations may ignore it.
        """
        ...

    def sample_down_latency(self, load_factor: float) -> float:
        """Latency to drain and drop a resource."""
        ...


class ContainerProvisioner:
    """Mesos container + JVM start: seconds, growing with load.

    up latency = base + slope * load_factor + jitter, clamped to ``cap``
    (the paper reports < 30 s in all cases).
    """

    def __init__(
        self,
        rng: random.Random,
        base_s: float = 4.0,
        slope_s: float = 14.0,
        jitter_s: float = 2.0,
        cap_s: float = 30.0,
        drain_base_s: float = 2.0,
    ) -> None:
        self._rng = rng
        self.base_s = base_s
        self.slope_s = slope_s
        self.jitter_s = jitter_s
        self.cap_s = cap_s
        self.drain_base_s = drain_base_s

    def sample_up_latency(self, load_factor: float) -> float:
        load = max(0.0, min(load_factor, 1.5))
        latency = (
            self.base_s
            + self.slope_s * load
            + self._rng.uniform(0.0, self.jitter_s)
        )
        return min(latency, self.cap_s)

    def sample_down_latency(self, load_factor: float) -> float:
        # Drain time scales with in-flight work on the departing member.
        load = max(0.0, min(load_factor, 1.5))
        return self.drain_base_s + 4.0 * load + self._rng.uniform(0.0, 1.0)


class VMProvisioner:
    """Full VM boot for the CloudWatch/AutoScaling baseline: minutes."""

    def __init__(
        self,
        rng: random.Random,
        mean_s: float = 240.0,
        jitter_s: float = 120.0,
        drain_s: float = 30.0,
    ) -> None:
        self._rng = rng
        self.mean_s = mean_s
        self.jitter_s = jitter_s
        self.drain_s = drain_s

    def sample_up_latency(self, load_factor: float) -> float:
        return self.mean_s + self._rng.uniform(0.0, self.jitter_s)

    def sample_down_latency(self, load_factor: float) -> float:
        return self.drain_s


class InstantProvisioner:
    """Zero-latency provisioning (the overprovisioning oracle, and tests)."""

    def sample_up_latency(self, load_factor: float) -> float:
        return 0.0

    def sample_down_latency(self, load_factor: float) -> float:
        return 0.0
