"""Scaling policies: how the runtime decides to change a pool's size.

Evaluated once per burst interval.  The four mechanisms of the paper
(sections 3.1-3.3), in the precedence order the runtime applies:

1. :class:`DeciderPolicy` — an application-level :class:`Decider` is
   attached: the runtime asks it for the *desired* size of the pool and
   applies the difference.
2. :class:`FineGrainedPolicy` — the class overrides ``change_pool_size``:
   every member is polled, and the votes (positive or negative integers)
   are **averaged** to determine how many objects to add or remove.
   Overriding ``change_pool_size`` disables CPU/memory scaling.
3. :class:`CoarseGrainedPolicy` — explicit CPU and/or RAM thresholds set
   through the Figure 3 setters; thresholds combine with logical OR.
4. :class:`ImplicitPolicy` — the default: add one object when average
   CPU utilization exceeds 90%, remove one when it falls below 60%,
   evaluated every 60 s.

All deltas are later clamped to ``[min_pool_size, max_pool_size]`` by the
runtime; policies themselves return raw intent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.core.api import Decider, ElasticConfig, ElasticObject

if TYPE_CHECKING:
    from repro.core.pool import ElasticObjectPool


class ScalingPolicy(Protocol):
    """One burst-interval decision: a signed member-count delta."""

    name: str

    def decide(self, pool: "ElasticObjectPool") -> int: ...


class ImplicitPolicy:
    """Paper defaults: +1 over 90% average CPU, -1 under 60%."""

    name = "implicit"

    def __init__(self, cpu_incr: float = 90.0, cpu_decr: float = 60.0) -> None:
        self.cpu_incr = cpu_incr
        self.cpu_decr = cpu_decr

    def decide(self, pool: "ElasticObjectPool") -> int:
        cpu = pool.avg_cpu_usage()
        if cpu > self.cpu_incr:
            return 1
        if cpu < self.cpu_decr:
            return -1
        return 0


class CoarseGrainedPolicy:
    """Explicit CPU/RAM thresholds, combined with logical OR (section 3.3).

    Increase by one when average CPU exceeds the CPU-increase threshold
    *or* average RAM exceeds the RAM-increase threshold; decrease by one
    when CPU is below the CPU-decrease threshold *and* (if configured)
    RAM is below the RAM-decrease threshold — shrinking on OR would
    remove capacity a still-loaded resource needs.
    """

    name = "coarse-grained"

    def __init__(self, config: ElasticConfig) -> None:
        self.config = config

    def decide(self, pool: "ElasticObjectPool") -> int:
        cfg = self.config
        cpu = pool.avg_cpu_usage()
        ram = pool.avg_ram_usage()
        grow = cpu > cfg.cpu_incr_threshold
        if cfg.ram_incr_threshold is not None:
            grow = grow or ram > cfg.ram_incr_threshold
        if grow:
            return 1
        shrink = cpu < cfg.cpu_decr_threshold
        if cfg.ram_decr_threshold is not None:
            shrink = shrink and ram < cfg.ram_decr_threshold
        return -1 if shrink else 0


class FineGrainedPolicy:
    """Poll ``change_pool_size`` on every member and average the votes.

    A member whose vote raises is counted as 0 (abstain) — a misbehaving
    member must not wedge the pool.  The averaged value is rounded toward
    zero, matching "the values returned by the various objects in the
    pool are averaged to determine the number of objects that have to be
    added/removed".
    """

    name = "fine-grained"

    def decide(self, pool: "ElasticObjectPool") -> int:
        votes: list[int] = []
        for member in pool.active_members():
            instance = member.instance
            if instance is None:
                continue
            try:
                vote = instance.change_pool_size()
            except Exception:
                vote = 0
            votes.append(int(vote) if vote is not None else 0)
        if not votes:
            return 0
        return int(sum(votes) / len(votes))


class DeciderPolicy:
    """Application-level decisions via a :class:`Decider` (section 3.3).

    The decider returns the *desired* pool size; the policy converts it to
    a delta.  Decider errors abstain.
    """

    name = "decider"

    def __init__(self, decider: Decider) -> None:
        self.decider = decider

    def decide(self, pool: "ElasticObjectPool") -> int:
        try:
            desired = int(self.decider.get_desired_pool_size(pool))
        except Exception:
            return 0
        return desired - pool.size()


def select_policy(
    cls: type[ElasticObject],
    config: ElasticConfig,
    decider: Decider | None,
) -> ScalingPolicy:
    """Pick the single decision mechanism for an elastic class.

    Precedence: attached Decider > overridden change_pool_size >
    explicit thresholds > implicit defaults.
    """
    if decider is not None:
        return DeciderPolicy(decider)
    if cls.overrides_change_pool_size():
        return FineGrainedPolicy()
    if config.explicit_thresholds:
        return CoarseGrainedPolicy(config)
    return ImplicitPolicy()
