"""Load balancing: elastic client stubs and the sentinel's rebalancer.

ElasticRMI uses a *hybrid* model (paper section 4.3):

- **Client side** — the preprocessor-generated stub contacts the sentinel
  once to fetch the member identities, then spreads subsequent calls over
  the members randomly or round-robin.  If a member disappears after its
  identity was cached, the send fails, the stub intercepts the exception
  and retries on the other members (including the sentinel); only when
  *every* member fails does the exception propagate to the application.
  :class:`ElasticStub` implements exactly that protocol.

- **Server side** — the sentinel periodically collects pending-invocation
  counts, and when a skeleton is overloaded relative to the others it
  instructs it to redirect a portion of its incoming invocations to a set
  of underloaded skeletons.  The number of redirected invocations is
  chosen with the first-fit greedy bin-packing approximation the paper
  cites: overloaded members' excesses (sorted decreasing) are packed
  first-fit into the spare capacities of underloaded members.
  :class:`FirstFitRebalancer` computes the plan;
  :class:`FractionalRedirect` is the per-skeleton directive.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    ApplicationError,
    ConnectError,
    MemberDrainedError,
    RemoteError,
    StoreError,
)
from repro.faults.policy import RetryPolicy, should_discard_member
from repro.rmi.batching import RequestBatcher, batch_max_from_env
from repro.rmi.fastpath import marshal_call, unmarshal_result
from repro.rmi.future import RmiFuture, async_executor, run_async
from repro.rmi.remote import RemoteRef, Stub
from repro.rmi.transport import Request, Response, Transport
from repro.routing import ShardRouter
from repro.sim.clock import Clock

if TYPE_CHECKING:
    from repro.core.pool import ElasticObjectPool


class BalancingMode(Enum):
    ROUND_ROBIN = "round-robin"
    RANDOM = "random"


class ElasticStub:
    """Client-side proxy for a whole elastic pool.

    Appears to the application as a single remote object: attribute access
    returns invokers, failures of individual members are masked by retry,
    and only total pool failure propagates.

    Membership caching is *epoch-based* when an ``epoch_source`` is given
    (the runtime wires one that reads the pool's epoch key the sentinel
    bumps in the KV store on every membership change): the common path
    reads the cached member list with no lock at all — the list reference
    is swapped atomically on refresh and the round-robin cursor is an
    ``itertools.count`` (atomic in CPython) — and identities are re-read
    from the sentinel only when the epoch moves.  Without an epoch source
    the stub falls back to the legacy count-based refresh (re-fetch every
    ``refresh_every`` calls).
    """

    def __init__(
        self,
        transport: Transport,
        sentinel_resolver: Callable[[], RemoteRef],
        mode: BalancingMode = BalancingMode.ROUND_ROBIN,
        caller: str = "client",
        rng: Any = None,
        refresh_every: int = 64,
        epoch_source: Callable[[], int] | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: Clock | None = None,
        sleep: Callable[[float], None] | None = None,
        obs: Any = None,
        batcher: RequestBatcher | None = None,
    ) -> None:
        self._transport = transport
        self._resolve_sentinel = sentinel_resolver
        self._mode = mode
        self._caller = caller
        self._rng = rng
        self._refresh_every = refresh_every
        self._epoch_source = epoch_source
        # Retry behaviour is budget-bounded: the policy caps attempts,
        # refresh rounds, and (when a clock is wired) total elapsed time,
        # so an all-slow pool surfaces a ConnectError instead of retrying
        # without limit.  The clock/sleep pair comes from the runtime:
        # wall time + time.sleep live, virtual clock + no-op simulated.
        self._retry_policy = retry_policy or RetryPolicy()
        self._clock = clock
        self._sleep = sleep
        # Observability (repro.obs.Observability): call/retry events and
        # the client-side counters.  Attempt counts are recorded even
        # when the *final* attempt succeeds — retries that recovery
        # masked used to vanish without record.
        self._obs = obs
        # Request batching: an explicit batcher wins; otherwise one is
        # built when ERMI_BATCH_MAX enables coalescing.  Disabled (the
        # default) keeps the invoke path at a single is-None branch.
        if batcher is None and batch_max_from_env() > 1:
            batcher = RequestBatcher(transport, caller=caller, obs=obs)
        self._batcher = (
            batcher if batcher is not None and batcher.enabled else None
        )
        # Asynchronous transports complete via loop callbacks: the happy
        # path never parks a thread, only retry/redirect recovery does
        # (offloaded to the shared async pool, off the event loop).
        self._loop_native = bool(getattr(transport, "asynchronous", False))
        self._epoch = -1  # epoch the cached members belong to
        self._members: list[RemoteRef] = []
        self._rr = itertools.count()
        self._calls_since_refresh = 0
        self._discarded: set[RemoteRef] = set()
        self._lock = threading.Lock()

    # -- public proxy surface -------------------------------------------------

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def invoker(*args: Any, **kwargs: Any) -> Any:
            return self._invoke(method, args, kwargs)

        invoker.__name__ = method
        return invoker

    def members_snapshot(self) -> list[RemoteRef]:
        with self._lock:
            return list(self._members)

    # -- membership -------------------------------------------------------------

    def _refresh_members(self, epoch: int | None = None) -> None:
        """Fetch identities from the sentinel (first contact, an epoch
        move, or failure recovery)."""
        sentinel = self._resolve_sentinel()
        stub = Stub(self._transport, sentinel, caller=self._caller)
        refs = stub.ermi_member_identities()
        with self._lock:
            # A previously-discarded member re-appearing means the
            # rotation positions shifted under us: restart the cursor so
            # round-robin stays balanced instead of skewing toward the
            # members that happened to follow the revived slot.
            if any(ref in self._discarded for ref in refs):
                self._rr = itertools.count()
            self._discarded.clear()
            self._members = list(refs)
            self._calls_since_refresh = 0
            if epoch is not None:
                self._epoch = epoch

    def _read_epoch(self) -> int:
        try:
            return int(self._epoch_source())
        except (RemoteError, StoreError):
            # Store/transport hiccup: serve the cached membership;
            # failures of the cached members themselves still trigger
            # refresh via retry.  Anything else (a TypeError from a
            # miswired epoch source, say) is a programming error and must
            # propagate, not silently degrade to a stale cache.
            return self._epoch

    def _targets(self) -> list[RemoteRef]:
        if self._epoch_source is not None:
            # Epoch path: lock-free unless the epoch moved.
            members = self._members
            epoch = self._read_epoch()
            if not members or epoch != self._epoch:
                try:
                    self._refresh_members(epoch=epoch)
                except (ConnectError, MemberDrainedError, RemoteError):
                    # The sentinel may be dead mid-re-election (the
                    # epoch moved because its members were reaped).
                    # Serve the stale cache — dead entries get
                    # discarded by per-member retry — and leave the
                    # epoch unchanged so the next call re-fetches.
                    if not self._members:
                        raise
                    if epoch != self._epoch and self._discarded:
                        # The epoch moved, so the discard set describes
                        # a membership that no longer exists.  Without
                        # this, a long sentinel outage accumulated every
                        # ref ever discarded (the set grew without
                        # bound) and a member that recovered under the
                        # same identity stayed out of the stale rotation
                        # until a refresh finally succeeded.  Return the
                        # discarded refs to the candidate list — per-
                        # member retry re-discards the ones still dead —
                        # and restart the cursor (positions shifted).
                        with self._lock:
                            revived = sorted(
                                (
                                    ref for ref in self._discarded
                                    if ref not in self._members
                                ),
                                key=lambda r: (r.endpoint_id, r.object_id),
                            )
                            self._members = self._members + revived
                            self._discarded.clear()
                            self._rr = itertools.count()
                members = self._members
        else:
            # Legacy path: count-based periodic refresh.
            with self._lock:
                needs_refresh = (
                    not self._members
                    or self._calls_since_refresh >= self._refresh_every
                )
            if needs_refresh:
                self._refresh_members()
            with self._lock:
                self._calls_since_refresh += 1
                members = self._members
        if not members:
            raise ConnectError("elastic pool has no members")
        if self._mode is BalancingMode.RANDOM and self._rng is not None:
            start = self._rng.randrange(len(members))
        else:
            start = next(self._rr) % len(members)
        # Rotation: primary target first, the rest are failover order.
        return members[start:] + members[:start]

    # -- invocation --------------------------------------------------------------

    def invoke_async(self, method: str, *args: Any, **kwargs: Any) -> RmiFuture:
        """Start ``method(*args, **kwargs)``; return an :class:`RmiFuture`.

        The synchronous proxy surface is ``invoke_async(...).result()``
        in semantics: both run the same bounded retry loop (the sync
        form short-circuits the future allocation to keep the hot path
        lean).  Execution style:

        - **batched** — the call is *deferred*: its entry queues for
          pipelining with other async calls (and with concurrent
          callers' calls bound for the same member) and is sent when
          the batch fills, the stub flushes, or the future is awaited.
          The caller's thread never parks at submission, which is what
          lets a window of async calls share wire messages.
        - **concurrent transport, no batcher** — the invocation body
          runs on the shared async pool.
        - **deterministic, no batcher** — runs eagerly in the caller
          thread; an already-completed future is returned.
        """
        payload = marshal_call(args, kwargs)
        if self._batcher is not None:
            return self._invoke_deferred(method, payload)
        if self._loop_native:
            return self._invoke_loop_native(method, payload)
        if getattr(self._transport, "concurrent", False):
            return run_async(
                lambda: self._invoke_with_payload(method, payload)
            )
        try:
            return RmiFuture.completed(
                self._invoke_with_payload(method, payload)
            )
        except Exception as exc:
            return RmiFuture.failed(exc)

    def flush_pending(self) -> None:
        """Send queued batch entries now (drain / membership change)."""
        if self._batcher is not None:
            self._batcher.flush()

    @property
    def batcher(self) -> RequestBatcher | None:
        return self._batcher

    def _invoke(self, method: str, args: tuple, kwargs: dict) -> Any:
        return self._invoke_with_payload(method, marshal_call(args, kwargs))

    def _invoke_with_payload(
        self,
        method: str,
        payload: Any,
        state: Any = None,
        started: float | None = None,
    ) -> Any:
        """The bounded retry loop for one logical invocation.

        ``state``/``started`` are normally fresh; the deferred-batch
        path passes the state it already charged its first (batched)
        attempt to, so a logical call retries exactly per policy no
        matter how its first send travelled.
        """
        if state is None:
            state = self._retry_policy.start(
                clock=self._clock, rng=self._rng, sleep=self._sleep
            )
        if started is None:
            started = None if self._clock is None else self._clock.now()
        last_error: Exception | None = None
        while True:
            try:
                targets = self._targets()
            except (ConnectError, MemberDrainedError, RemoteError) as exc:
                # First contact (or re-fetch) failed: the sentinel may be
                # mid-re-election or a message was lost.  Retrying this
                # costs a round like any other failed pass.
                last_error = exc
                if not state.next_round():
                    break
                continue
            for ref in targets:
                if not state.allow_attempt():
                    break
                state.note_attempt()
                try:
                    result = self._invoke_one(ref, method, payload)
                except ApplicationError:
                    # The remote method itself raised; never retried
                    # (policy.is_retryable): retrying would re-execute.
                    # Delivery succeeded, so the attempt count still
                    # lands in the registry.
                    self._note_call(method, state, started, "app-error")
                    raise
                except (ConnectError, MemberDrainedError, RemoteError) as exc:
                    # Retryable delivery failure.  Dead or draining
                    # members are dropped from the cache; a merely slow
                    # one (timeout) costs budget but stays cached —
                    # slowness is transient, death is not.
                    last_error = exc
                    if should_discard_member(exc):
                        self._discard(ref)
                    self._note_failed_attempt(method, state, exc)
                    continue
                self._note_call(method, state, started, "ok")
                return result
            # All cached members failed: back off, refresh identities,
            # and try once more within budget (paper: "the stub then
            # retries the invocation on other objects including the
            # sentinel").
            if not state.next_round():
                break
            try:
                self._refresh_members()
            except (ConnectError, MemberDrainedError, RemoteError) as exc:
                # The sentinel itself may be transiently unreachable (a
                # dropped message, mid-re-election).  The round already
                # cost budget; keep going from the cached membership
                # rather than aborting the invocation.
                last_error = exc
        self._note_call(method, state, started, "failed")
        raise ConnectError(
            f"all members of the elastic pool failed for {method!r}: "
            f"{state.exhausted_reason()}",
            cause=last_error,
        )

    # -- observability -----------------------------------------------------

    def _note_failed_attempt(
        self, method: str, state: Any, error: Exception
    ) -> None:
        """One send failed and will (budget permitting) be retried."""
        obs = self._obs
        if obs is None:
            return
        obs.tracer.emit(
            "client", "retry",
            method=method, attempt=state.attempts,
            error=type(error).__name__, caller=self._caller,
        )

    def _note_call(
        self, method: str, state: Any, started: float | None, outcome: str
    ) -> None:
        """Record one *logical* invocation — including the attempts a
        masked recovery spent, which previously left no record when the
        final attempt succeeded."""
        obs = self._obs
        if obs is None:
            return
        registry = obs.registry
        registry.counter("rmi.client.calls").inc()
        registry.counter("rmi.client.attempts").inc(state.attempts)
        if state.attempts > 1:
            registry.counter("rmi.client.retried_calls").inc()
            registry.counter("rmi.client.retries").inc(state.attempts - 1)
        if outcome == "failed":
            registry.counter("rmi.client.errors").inc()
        latency = (
            0.0 if started is None or self._clock is None
            else self._clock.now() - started
        )
        obs.tracer.emit(
            "client", "call",
            method=method, attempts=state.attempts, rounds=state.rounds,
            ok=(outcome == "ok"), outcome=outcome,
            latency=round(latency, 9), caller=self._caller,
        )

    def _dispatch(self, endpoint_id: str, request: Request) -> Response:
        """One send: through the batcher when attached, else direct."""
        batcher = self._batcher
        if batcher is not None:
            return batcher.dispatch(endpoint_id, request)
        return self._transport.invoke(endpoint_id, request)

    def _invoke_one(
        self,
        ref: RemoteRef,
        method: str,
        payload: Any,
        response: Response | None = None,
    ) -> Any:
        from repro.errors import ApplicationError  # local to avoid cycle noise

        hops = 0
        while True:
            if response is None:
                request = Request(
                    object_id=ref.object_id,
                    method=method,
                    payload=payload,
                    caller=self._caller,
                )
                response = self._dispatch(ref.endpoint_id, request)
            if response.kind == "result":
                return unmarshal_result(response.payload)
            if response.kind == "error":
                cause = unmarshal_result(response.payload)
                raise ApplicationError(
                    f"remote method {method!r} raised "
                    f"{type(cause).__name__}: {cause}",
                    cause=cause,
                )
            if response.kind == "redirect":
                hops += 1
                if hops > 8:
                    raise ConnectError(f"redirect loop invoking {method!r}")
                ref = response.value
                response = None  # re-dispatch at the redirect target
                continue
            if response.kind == "drained":
                raise MemberDrainedError(f"{ref.describe()} is draining")
            raise RemoteError(f"unknown response kind {response.kind!r}")

    def _discard(self, ref: RemoteRef) -> None:
        with self._lock:
            # Replace (never mutate) the list: readers hold no lock.
            self._members = [m for m in self._members if m != ref]
            self._discarded.add(ref)

    # -- deferred (pipelined) invocation -----------------------------------

    def _invoke_deferred(self, method: str, payload: Any) -> RmiFuture:
        """Queue one invocation for pipelined dispatch.

        The entry targets the balancing choice made *now*; the batched
        send is the logical call's first attempt and is charged to its
        retry state, so if the batch fails — dropped wire message, the
        target drained mid-flight — the call falls back into the normal
        retry loop with that attempt already spent: exactly the policy's
        budget, independently per logical call.
        """
        state = self._retry_policy.start(
            clock=self._clock, rng=self._rng, sleep=self._sleep
        )
        started = None if self._clock is None else self._clock.now()
        try:
            targets = self._targets()
        except (ConnectError, MemberDrainedError, RemoteError):
            # Bootstrap failure: the sync loop owns round/refresh
            # semantics; run it eagerly.
            try:
                return RmiFuture.completed(
                    self._invoke_with_payload(method, payload, state, started)
                )
            except Exception as exc:
                return RmiFuture.failed(exc)
        ref = targets[0]
        request = Request(
            object_id=ref.object_id,
            method=method,
            payload=payload,
            caller=self._caller,
        )
        state.note_attempt()

        def finish(
            future: RmiFuture,
            response: Response | None,
            error: BaseException | None,
        ) -> None:
            try:
                value = self._finish_deferred(
                    ref, method, payload, state, started, response, error
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                future.set_exception(exc)
            else:
                future.set_result(value)

        def complete(
            future: RmiFuture,
            response: Response | None,
            error: BaseException | None,
        ) -> None:
            terminal = (
                error is None
                and response is not None
                and response.kind in ("result", "error")
            )
            if self._loop_native and not terminal:
                # Recovery re-enters the blocking retry loop; under the
                # loop drain discipline this completer runs on the event
                # loop, so the shared async pool carries it.
                async_executor().submit(finish, future, response, error)
                return
            finish(future, response, error)

        return self._batcher.submit(ref.endpoint_id, request, complete)

    def _finish_deferred(
        self,
        ref: RemoteRef,
        method: str,
        payload: Any,
        state: Any,
        started: float | None,
        response: Response | None,
        error: BaseException | None,
    ) -> Any:
        """Interpret a deferred entry's outcome; runs in the sender
        thread (deterministic transports: the waiter itself)."""
        try:
            if error is not None:
                raise error
            result = self._invoke_one(ref, method, payload, response=response)
        except ApplicationError:
            self._note_call(method, state, started, "app-error")
            raise
        except (ConnectError, MemberDrainedError, RemoteError) as exc:
            # The batched first attempt failed (whole-batch drop, dead
            # endpoint, drained or unresolved entry): re-enter the sync
            # retry loop with the attempt already charged.
            if should_discard_member(exc):
                self._discard(ref)
            self._note_failed_attempt(method, state, exc)
            return self._invoke_with_payload(method, payload, state, started)
        self._note_call(method, state, started, "ok")
        return result

    # -- loop-native invocation (asynchronous transports) ------------------

    def _invoke_loop_native(self, method: str, payload: Any) -> RmiFuture:
        """One invocation with no thread parked while it flies.

        The request goes straight to the asyncio transport; the future
        completes from the transport's callback on the event loop.  The
        happy path — the chosen member answers ``result`` — unmarshals
        and completes inline (CPU-light, loop-safe).  *Every* other
        outcome (application error, redirect, drained, delivery
        failure) re-enters :meth:`_finish_deferred` on the shared async
        pool with the first attempt already charged, so recovery
        semantics are byte-for-byte those of the threaded path and the
        loop never blocks.
        """
        transport = self._transport
        state = self._retry_policy.start(
            clock=self._clock, rng=self._rng, sleep=self._sleep
        )
        started = None if self._clock is None else self._clock.now()
        try:
            targets = self._targets()
        except (ConnectError, MemberDrainedError, RemoteError):
            # Bootstrap failure: the sync loop owns round/refresh
            # semantics; run it on the pool.
            return run_async(
                lambda: self._invoke_with_payload(
                    method, payload, state, started
                )
            )
        ref = targets[0]
        request = Request(
            object_id=ref.object_id,
            method=method,
            payload=payload,
            caller=self._caller,
        )
        state.note_attempt()
        future = RmiFuture()
        future.bind_wait_guard(transport.wait_guard)

        def finish(
            response: Response | None, error: BaseException | None
        ) -> None:
            try:
                value = self._finish_deferred(
                    ref, method, payload, state, started, response, error
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                future.set_exception(exc)
            else:
                future.set_result(value)

        def on_done(
            response: Response | None, error: BaseException | None
        ) -> None:  # runs on the event loop; must not block
            if (
                error is None
                and response is not None
                and response.kind == "result"
            ):
                try:
                    value = unmarshal_result(response.payload)
                except BaseException as exc:  # noqa: BLE001 - to waiter
                    future.set_exception(exc)
                    return
                self._note_call(method, state, started, "ok")
                future.set_result(value)
                return
            async_executor().submit(finish, response, error)

        transport.submit(ref.endpoint_id, request, on_done)
        return future


class ShardedElasticStub:
    """Client-side proxy for a sharded elastic pool.

    Holds one :class:`ElasticStub` per shard and a
    :class:`~repro.routing.ShardRouter` built over the same shard names
    the server side used, so client and server agree on every key's
    owner without coordination.  Routing contract:

    - ``affinity_key=K`` — ``K`` is hashed onto the shard ring; the call
      round-robins *within* that shard only.  All calls carrying the
      same key land on the same shard for the lifetime of the pool
      (the shard set is fixed; per-shard membership churn never moves
      a key).
    - no affinity key — the call spreads round-robin across shards,
      then round-robins within the chosen shard: flat spread, same as
      an unsharded pool.

    Each shard's stub owns its own membership cache, retry state, and —
    when batching is enabled — its own :class:`RequestBatcher`, so
    batches coalesce per shard endpoint and never across shards.
    """

    def __init__(
        self,
        name: str,
        stubs: list[ElasticStub],
        router: ShardRouter | None = None,
    ) -> None:
        if not stubs:
            raise ValueError(f"sharded stub {name!r} needs >= 1 shard stub")
        self._name = name
        self._stubs = list(stubs)
        self._router = router or ShardRouter.for_pool(name, len(stubs))
        if self._router.shards != len(stubs):
            raise ValueError(
                f"router covers {self._router.shards} shards but "
                f"{len(stubs)} stubs were given"
            )

    # -- routing ---------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._stubs)

    def shard_for(self, key: str) -> int:
        return self._router.shard_for(str(key))

    def stub_for(self, key: str | None) -> ElasticStub:
        """The shard stub serving ``key`` (keyless → spread)."""
        if key is None:
            return self._stubs[self._router.spread()]
        return self._stubs[self.shard_for(key)]

    def shard_stub(self, index: int) -> ElasticStub:
        return self._stubs[index]

    # -- public proxy surface --------------------------------------------

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def invoker(*args: Any, **kwargs: Any) -> Any:
            # affinity_key is routing metadata, not a remote argument:
            # strip it before the payload is marshalled.
            key = kwargs.pop("affinity_key", None)
            return self.stub_for(key)._invoke(method, args, kwargs)

        invoker.__name__ = method
        return invoker

    def invoke(
        self,
        method: str,
        *args: Any,
        affinity_key: str | None = None,
        **kwargs: Any,
    ) -> Any:
        return self.stub_for(affinity_key)._invoke(method, args, kwargs)

    def invoke_async(
        self,
        method: str,
        *args: Any,
        affinity_key: str | None = None,
        **kwargs: Any,
    ) -> RmiFuture:
        return self.stub_for(affinity_key).invoke_async(
            method, *args, **kwargs
        )

    def flush_pending(self) -> None:
        """Flush every shard's queued batch entries."""
        for stub in self._stubs:
            stub.flush_pending()

    def members_snapshot(self) -> list[RemoteRef]:
        """All cached members across shards (diagnostics)."""
        refs: list[RemoteRef] = []
        for stub in self._stubs:
            refs.extend(stub.members_snapshot())
        return refs


class FractionalRedirect:
    """Skeleton directive: bounce ``fraction`` of incoming calls to
    ``targets`` (cycled).  Deterministic counter-based selection so tests
    and simulations are reproducible."""

    def __init__(self, fraction: float, targets: list[RemoteRef]) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1]: {fraction}")
        if fraction > 0 and not targets:
            raise ValueError("positive fraction requires at least one target")
        self.fraction = fraction
        self.targets = list(targets)
        self._count = 0
        self._redirected = 0

    def __call__(self, request: Request) -> RemoteRef | None:
        if self.fraction <= 0.0 or not self.targets:
            return None
        self._count += 1
        # Redirect whenever the realized ratio lags the desired fraction.
        if self._redirected < self.fraction * self._count:
            self._redirected += 1
            target = self.targets[self._redirected % len(self.targets)]
            return target
        return None


@dataclass
class RebalanceDecision:
    """The sentinel's plan: per-member redirect directives."""

    plan: dict[int, FractionalRedirect | None]
    overloaded: list[int]
    underloaded: list[int]


class FirstFitRebalancer:
    """First-fit greedy bin packing of excess load into spare capacity.

    ``tolerance`` is the relative deviation from the mean pending count a
    member may have before it counts as overloaded/underloaded.
    """

    def __init__(self, tolerance: float = 0.25) -> None:
        if tolerance < 0:
            raise ValueError(f"negative tolerance: {tolerance}")
        self.tolerance = tolerance

    def plan(
        self,
        pending: dict[int, int],
        refs: dict[int, RemoteRef],
    ) -> RebalanceDecision:
        """Compute redirect directives from per-member pending counts."""
        if len(pending) < 2:
            return RebalanceDecision({uid: None for uid in pending}, [], [])
        mean = sum(pending.values()) / len(pending)
        high = mean * (1 + self.tolerance)
        low = mean * (1 - self.tolerance)
        overloaded = [
            (uid, count - mean) for uid, count in pending.items() if count > high
        ]
        underloaded = [
            (uid, mean - count) for uid, count in pending.items() if count < low
        ]
        plan: dict[int, FractionalRedirect | None] = {
            uid: None for uid in pending
        }
        if not overloaded or not underloaded:
            return RebalanceDecision(plan, [], [])
        # First-fit decreasing: largest excess first, packed into the
        # spare-capacity bins in order.
        overloaded.sort(key=lambda item: -item[1])
        bins = [[uid, spare] for uid, spare in underloaded]
        for uid, excess in overloaded:
            assigned: list[tuple[int, float]] = []
            remaining = excess
            for entry in bins:
                if remaining <= 0:
                    break
                if entry[1] <= 0:
                    continue
                take = min(entry[1], remaining)
                assigned.append((entry[0], take))
                entry[1] -= take
                remaining -= take
            if assigned:
                moved = sum(amount for _, amount in assigned)
                fraction = min(1.0, moved / max(pending[uid], 1))
                targets = [refs[target] for target, _ in assigned]
                plan[uid] = FractionalRedirect(fraction, targets)
        return RebalanceDecision(
            plan,
            [uid for uid, _ in overloaded],
            [uid for uid, _ in underloaded],
        )
