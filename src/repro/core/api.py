"""The ElasticRMI server-side API (paper Figure 3).

Java names map to Python names mechanically (``setMinPoolSize`` →
``set_min_pool_size``, ``changePoolSize`` → ``change_pool_size``, …); the
semantics are the paper's:

- an elastic class extends :class:`ElasticObject` (and thereby the RMI
  :class:`~repro.rmi.remote.Remote` marker through :class:`Elastic`);
- pool limits, the burst interval, and CPU/RAM thresholds are configured
  by calling setters, typically in ``__init__``;
- ``change_pool_size`` may be overridden for fine-grained scaling; doing
  so *disables* CPU/RAM threshold scaling (the paper allows exactly one
  decision mechanism per class);
- a :class:`Decider` may be attached for application-level decisions that
  span multiple pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import PoolConfigurationError, ScalingDisabledError
from repro.rmi.remote import Remote

if TYPE_CHECKING:
    from repro.core.pool import ElasticObjectPool


class Elastic(Remote):
    """Marker for elastic classes (``interface Elastic extends Remote``).

    The preprocessor in the paper keys off this marker; here it is the
    base the metaclass machinery and the runtime check for.
    """


@dataclass
class MethodCallStat:
    """One entry of ``get_method_call_stats()``: averages over the burst
    interval just ended."""

    calls: int = 0              # total invocations across the pool
    rate: float = 0.0           # invocations per second
    mean_latency: float = 0.0   # seconds
    errors: int = 0

    def latency(self) -> float:
        """Paper spelling (Figure 5 calls ``getLatency()``)."""
        return self.mean_latency


@dataclass
class ElasticConfig:
    """Pool configuration accumulated by the Figure 3 setters.

    Defaults are the paper's: burst interval 60 s, CPU add threshold 90%,
    CPU remove threshold 60%, RAM thresholds unset.
    """

    min_pool_size: int = 2
    max_pool_size: int = 8
    burst_interval: float = 60.0
    cpu_incr_threshold: float = 90.0
    cpu_decr_threshold: float = 60.0
    ram_incr_threshold: float | None = None
    ram_decr_threshold: float | None = None
    explicit_thresholds: bool = False  # any threshold setter called

    def validate(self) -> None:
        if self.min_pool_size < 2:
            raise PoolConfigurationError(
                f"minimum pool size must be >= 2 (paper section 4.2): "
                f"{self.min_pool_size}"
            )
        if self.max_pool_size < self.min_pool_size:
            raise PoolConfigurationError(
                f"max pool size {self.max_pool_size} < min "
                f"{self.min_pool_size}"
            )
        if self.burst_interval <= 0:
            raise PoolConfigurationError(
                f"burst interval must be positive: {self.burst_interval}"
            )
        if self.cpu_decr_threshold >= self.cpu_incr_threshold:
            raise PoolConfigurationError(
                "CPU decrease threshold must be below the increase "
                f"threshold: {self.cpu_decr_threshold} >= "
                f"{self.cpu_incr_threshold}"
            )
        if (
            self.ram_incr_threshold is not None
            and self.ram_decr_threshold is not None
            and self.ram_decr_threshold >= self.ram_incr_threshold
        ):
            raise PoolConfigurationError(
                "RAM decrease threshold must be below the increase threshold"
            )


class Decider:
    """Application-level scaling decisions across elastic pools.

    Subclass and override :meth:`get_desired_pool_size`; attach via
    ``ElasticObject(decider=...)`` or ``pool.set_decider``.  The runtime
    polls the decider every burst interval and adds/removes the difference
    between desired and current size (clamped to [min, max]).
    """

    def get_desired_pool_size(self, pool: "ElasticObjectPool") -> int:
        raise NotImplementedError


class ElasticObject(Elastic):
    """Base class every elastic class extends (paper Figure 3).

    One instance exists per pool member; the configuration set in
    ``__init__`` is read by the runtime when the pool is instantiated.
    Runtime-backed queries (pool size, utilization averages, method call
    stats) work once the member is attached to a pool; before attachment
    they raise :class:`RuntimeError` with a clear message.
    """

    def __init__(self, decider: Decider | None = None) -> None:
        self._ermi_config = ElasticConfig()
        self._ermi_decider = decider
        self._ermi_ctx: Any = None  # MemberContext, set by the pool

    # -- configuration (pre-attachment) -----------------------------------

    def set_min_pool_size(self, size: int) -> None:
        self._ermi_config.min_pool_size = int(size)

    def set_max_pool_size(self, size: int) -> None:
        self._ermi_config.max_pool_size = int(size)

    def set_burst_interval(self, interval_s: float) -> None:
        """Make scaling decisions every ``interval_s`` seconds.

        Note: the paper's signature takes milliseconds; this library uses
        seconds everywhere for consistency.
        """
        self._ermi_config.burst_interval = float(interval_s)

    def set_cpu_incr_threshold(self, threshold: float) -> None:
        self._check_thresholds_allowed()
        self._ermi_config.cpu_incr_threshold = float(threshold)
        self._ermi_config.explicit_thresholds = True

    def set_cpu_decr_threshold(self, threshold: float) -> None:
        self._check_thresholds_allowed()
        self._ermi_config.cpu_decr_threshold = float(threshold)
        self._ermi_config.explicit_thresholds = True

    def set_ram_incr_threshold(self, threshold: float) -> None:
        self._check_thresholds_allowed()
        self._ermi_config.ram_incr_threshold = float(threshold)
        self._ermi_config.explicit_thresholds = True

    def set_ram_decr_threshold(self, threshold: float) -> None:
        self._check_thresholds_allowed()
        self._ermi_config.ram_decr_threshold = float(threshold)
        self._ermi_config.explicit_thresholds = True

    def _check_thresholds_allowed(self) -> None:
        if self.overrides_change_pool_size():
            raise ScalingDisabledError(
                f"{type(self).__name__} overrides change_pool_size(); "
                "CPU/RAM threshold scaling is disabled (single decision "
                "mechanism, paper section 3.3)"
            )

    # -- runtime-backed queries ------------------------------------------------

    def get_avg_cpu_usage(self) -> float:
        """CPU utilization (percent) averaged over the burst interval,
        across the pool."""
        return self._ctx().pool.avg_cpu_usage()

    def get_avg_ram_usage(self) -> float:
        """RAM utilization (percent) averaged over the burst interval."""
        return self._ctx().pool.avg_ram_usage()

    def get_pool_size(self) -> int:
        return self._ctx().pool.size()

    def get_method_call_stats(self) -> dict[str, MethodCallStat]:
        """Per-method call statistics over the last burst interval."""
        return self._ctx().pool.method_call_stats()

    # -- stub bootstrap (invoked remotely by elastic stubs) ---------------------

    def ermi_member_identities(self) -> list[Any]:
        """Identities (remote references) of every pool member, sentinel
        first.  Client stubs call this on first contact with the sentinel
        to learn where to load-balance (paper section 4.3); applications
        never need it."""
        return self._ctx().pool.member_identities()

    # -- fine-grained scaling hook ------------------------------------------------

    def change_pool_size(self) -> int:
        """Polled every burst interval when overridden; return a positive
        or negative member-count delta (votes are averaged across the
        pool).  The base implementation is a sentinel meaning "not
        overridden" and must not be called by applications."""
        raise NotImplementedError(
            "change_pool_size() was not overridden; the runtime only polls "
            "classes that override it"
        )

    @classmethod
    def overrides_change_pool_size(cls) -> bool:
        return cls.change_pool_size is not ElasticObject.change_pool_size

    # -- internals -----------------------------------------------------------------

    def _ctx(self) -> Any:
        if self._ermi_ctx is None:
            raise RuntimeError(
                f"{type(self).__name__} is not attached to an elastic pool; "
                "instantiate it through ElasticRuntime.new_pool(...)"
            )
        return self._ermi_ctx
