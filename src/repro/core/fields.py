"""Shared state: the preprocessor transformation, done with descriptors.

The ElasticRMI preprocessor rewrites reads/writes of instance and static
fields into ``get``/``put`` calls on the external key-value store, and
``synchronized`` methods into a lock/unlock pair on a per-class lock
(paper Figure 6: field ``x`` of class ``C1`` becomes key ``C1$x``; the
class lock is named ``"C1"``).  Python lets us do the same transformation
at class-definition time:

- :func:`elastic_field` declares a field whose storage is the pool's
  shared store.  All members of the pool see one consistent copy, exactly
  like the post-preprocessing Java code.
- :func:`synchronized` wraps a method in the per-class distributed lock,
  guaranteeing mutual exclusion across the whole pool (and noting, as the
  paper does, that this provides mutual exclusion — not ACID).

Both degrade gracefully when the object is *detached* (not yet part of a
pool): fields live in a per-instance dict and the lock is process-local,
so elastic classes remain plain usable objects in unit tests.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, TypeVar

from repro.errors import KeyNotFoundError

_LOCAL_FIELDS = "_ermi_local_fields"

# Process-local fallback locks for detached objects, keyed by class name —
# same granularity as the distributed lock they stand in for.
_fallback_locks: dict[str, threading.RLock] = {}
_fallback_guard = threading.Lock()


def _fallback_lock(class_name: str) -> threading.RLock:
    with _fallback_guard:
        if class_name not in _fallback_locks:
            _fallback_locks[class_name] = threading.RLock()
        return _fallback_locks[class_name]


class elastic_field:
    """Descriptor storing a field in the pool's shared key-value store.

    The store key is ``ClassName$field`` — one copy per *class*, shared by
    every member of the pool, mirroring the paper's treatment of instance
    and static fields alike (Figure 6).  ``default`` is returned for reads
    before the first write.

    Usage::

        class Counter(ElasticObject):
            total = elastic_field(default=0)
    """

    def __init__(self, default: Any = None, key: str | None = None) -> None:
        self.default = default
        self._explicit_key = key
        self.name = "<unbound>"
        self.owner_name = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name
        self.owner_name = owner.__name__

    @property
    def store_key(self) -> str:
        if self._explicit_key is not None:
            return self._explicit_key
        return f"{self.owner_name}${self.name}"

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        ctx = getattr(obj, "_ermi_ctx", None)
        if ctx is None:
            local = obj.__dict__.get(_LOCAL_FIELDS, {})
            return local.get(self.name, self.default)
        # Reads go through the runtime's watch cache when the member has
        # one: steady-state field reads are then push-invalidated local
        # hits instead of a store round-trip per access.
        cache = getattr(ctx, "cache", None)
        if cache is not None:
            return cache.get(self.store_key, default=self.default)
        try:
            return ctx.store.get(self.store_key)
        except KeyNotFoundError:
            return self.default

    def __set__(self, obj: Any, value: Any) -> None:
        ctx = getattr(obj, "_ermi_ctx", None)
        if ctx is None:
            obj.__dict__.setdefault(_LOCAL_FIELDS, {})[self.name] = value
            return
        cache = getattr(ctx, "cache", None)
        if cache is not None:
            cache.put(self.store_key, value)  # write-through
        else:
            ctx.store.put(self.store_key, value)

    def update(self, obj: Any, fn: Callable[[Any], Any]) -> Any:
        """Atomic read-modify-write of the field (single store round trip).

        The plain ``obj.f = fn(obj.f)`` spelling is two store operations
        and therefore racy across members; this is the safe alternative
        for counters and other accumulators.
        """
        ctx = getattr(obj, "_ermi_ctx", None)
        if ctx is None:
            local = obj.__dict__.setdefault(_LOCAL_FIELDS, {})
            new = fn(local.get(self.name, self.default))
            local[self.name] = new
            return new
        cache = getattr(ctx, "cache", None)
        if cache is not None:
            # The cache delegates the RMW to the store (atomicity lives
            # there) and invalidates its local entry.
            return cache.update(self.store_key, fn, default=self.default)
        return ctx.store.update(self.store_key, fn, default=self.default)


F = TypeVar("F", bound=Callable[..., Any])


def synchronized(method: F) -> F:
    """Mutual exclusion across the pool via the per-class distributed lock.

    The lock is named after the class (``"C1"`` in Figure 6) and is
    reentrant for the holder, so synchronized methods can call each other.
    Mirrors the paper exactly: mutual exclusion for the method body with
    respect to other synchronized methods of the class — no transactional
    guarantees.
    """

    @functools.wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        class_name = type(self).__name__
        ctx = getattr(self, "_ermi_ctx", None)
        if ctx is None:
            with _fallback_lock(class_name):
                return method(self, *args, **kwargs)
        owner = ctx.lock_owner_id()
        ctx.locks.lock(class_name, owner)
        try:
            return method(self, *args, **kwargs)
        finally:
            ctx.locks.unlock(class_name, owner)

    wrapper._ermi_synchronized = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]


def is_synchronized(method: Callable[..., Any]) -> bool:
    return getattr(method, "_ermi_synchronized", False)
