"""Elastic object pools: instantiation, lifecycle, drain, and membership.

An elastic class is instantiated into a *pool* of objects, one per Mesos
slice, each behind its own skeleton on its own endpoint ("JVM").  The pool
behaves as a single remote object; this module implements its lifecycle
(paper sections 2.4, 2.5, 4.2):

- instantiation with ``min >= 2`` members, tolerating partial grants
  (``l < k`` slices available → ``l`` members);
- growth: request slice → provisioning delay → activate member (the
  provisioning interval of Figure 8 is measured here);
- graceful shrink: pick member → redirect new calls away (skeleton drain
  state) → wait for pending invocations → release the slice back to Mesos;
- sentinel: the lowest-uid active member, elected by royal hierarchy,
  broadcasting pool state over the group channel;
- member failure: lost slices and dead endpoints are detected and the
  sentinel re-elected.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.node import Slice, SliceState
from repro.core.api import ElasticConfig, ElasticObject, MethodCallStat
from repro.core.monitor import ManualUtilization, MemberMonitor, UtilizationSource
from repro.errors import PoolShutdownError, RemoteError, StoreError
from repro.groupcomm.channel import Channel
from repro.rmi.remote import RemoteRef, Skeleton
from repro.routing import ShardRouter

if TYPE_CHECKING:
    from repro.core.runtime import RuntimeServices


class MemberState(Enum):
    STARTING = "starting"     # slice granted, container/JVM booting
    ACTIVE = "active"         # serving invocations
    DRAINING = "draining"     # redirecting, waiting for pending calls
    TERMINATED = "terminated"  # slice released


@dataclass
class PoolMember:
    """One object of the pool: slice + endpoint + skeleton + instance."""

    uid: int
    slice: Slice
    state: MemberState
    instance: ElasticObject | None = None
    skeleton: Skeleton | None = None
    endpoint_id: str | None = None
    utilization: UtilizationSource = field(default_factory=ManualUtilization)
    monitor: MemberMonitor | None = None
    requested_at: float = 0.0
    active_at: float | None = None
    terminated_at: float | None = None

    def ref(self) -> RemoteRef:
        if self.skeleton is None:
            raise RuntimeError(f"member {self.uid} has no skeleton yet")
        return self.skeleton.ref()

    def address(self) -> str:
        return f"member-{self.uid}"


@dataclass
class ProvisioningRecord:
    """One Figure 8 data point: request-to-first-service interval."""

    pool: str
    uid: int
    requested_at: float
    active_at: float
    direction: str = "up"  # "up" or "down" (drain duration)

    @property
    def latency(self) -> float:
        return self.active_at - self.requested_at


@dataclass
class FailureRecord:
    """One detected member failure (for the chaos recovery report)."""

    at: float
    pool: str
    uid: int
    kind: str  # "endpoint-dead", "slice-lost", "drain-crashed"


@dataclass
class ScalingEvent:
    """A scaling decision applied to the pool (for metrics/ablation)."""

    at: float
    pool: str
    decision: int       # requested delta (post-clamp)
    granted: int        # members actually added/started draining
    size_before: int
    size_after: int
    reason: str = ""


@dataclass(frozen=True)
class ShardInfo:
    """Where a member pool sits inside a sharded logical pool."""

    parent: str   # logical pool name ("OrderRouter")
    index: int    # this shard's index in [0, count)
    count: int    # total shards of the parent

    def map_entry_key(self) -> str:
        """KV-store key of this shard's live shard-map entry (the
        sentinel publishes here on its broadcast cadence)."""
        return f"{self.parent}$shardmap/{self.index}"


class MemberContext:
    """What an attached instance can reach: its pool and shared state."""

    def __init__(self, pool: "ElasticObjectPool", member: PoolMember) -> None:
        self.pool = pool
        self.member = member
        self.store = pool.services.store
        self.locks = pool.services.locks
        # The runtime's shared watch cache (None for hand-built
        # services): elastic fields read through it when present.
        self.cache = getattr(pool.services, "cache", None)

    def lock_owner_id(self) -> str:
        return f"{self.pool.name}:member-{self.member.uid}"

    def stub_for(self, ref: RemoteRef):
        """A unicast stub for a remote reference received as an argument
        — the RMI callback pattern: clients pass a reference to an
        object they exported, and the member invokes back through it."""
        from repro.rmi.remote import Stub

        return Stub(
            self.pool.services.transport,
            ref,
            caller=f"{self.pool.name}:member-{self.member.uid}",
        )


class ElasticObjectPool:
    """A pool of elastic objects that clients see as one remote object."""

    def __init__(
        self,
        name: str,
        cls: type[ElasticObject],
        factory: Callable[[], ElasticObject],
        config: ElasticConfig,
        services: "RuntimeServices",
        shard_of: ShardInfo | None = None,
    ) -> None:
        config.validate()
        self.name = name
        self.cls = cls
        self.factory = factory
        self.config = config
        self.services = services
        # Set when this pool is one shard of a ShardedElasticPool: the
        # sentinel then publishes this shard's map entry alongside its
        # pool-state broadcast, and traces carry the shard index.
        self.shard_of = shard_of
        self.channel = Channel(f"pool:{name}")
        self.members: dict[int, PoolMember] = {}
        self._uid_counter = itertools.count(1)
        self._lock = threading.RLock()
        self.closed = False
        # Evaluation bookkeeping.
        self.provisioning_records: list[ProvisioningRecord] = []
        self.scaling_events: list[ScalingEvent] = []
        self.failure_records: list[FailureRecord] = []
        self._last_window_stats: dict[str, MethodCallStat] = {}
        self._window_cpu_avg = 0.0
        self._window_ram_avg = 0.0
        self._last_rebalance_plan: dict[int, Any] = {}
        # Latest pool state each member received from the sentinel.
        self.last_broadcast_state: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        """Trace one pool lifecycle event (no-op without an Observability).

        Events carry member *uids* (per-pool, deterministic) and the pool
        name — never endpoint ids or slice ids, which come from
        process-global counters and would break trace reproducibility."""
        obs = self.services.obs
        if obs is not None:
            obs.tracer.emit("pool", kind, pool=self.name, **fields)

    def _note_size(self) -> None:
        """Record the post-change pool size (trace event + gauge)."""
        obs = self.services.obs
        if obs is None:
            return
        size = self.size()
        now = self.services.scheduler.clock.now()
        obs.tracer.emit("pool", "pool-size", pool=self.name, size=size)
        obs.registry.gauge(f"pool.size.{self.name}").set(size, at=now)

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Number of members currently serving (the paper's pool size)."""
        with self._lock:
            return sum(
                1 for m in self.members.values() if m.state is MemberState.ACTIVE
            )

    def provisioned_size(self) -> int:
        """Members paid for: serving plus still booting."""
        with self._lock:
            return sum(
                1
                for m in self.members.values()
                if m.state in (MemberState.ACTIVE, MemberState.STARTING)
            )

    def active_members(self) -> list[PoolMember]:
        with self._lock:
            return sorted(
                (m for m in self.members.values() if m.state is MemberState.ACTIVE),
                key=lambda m: m.uid,
            )

    def sentinel(self) -> PoolMember | None:
        """Lowest-uid active member (royal hierarchy, section 4.3)."""
        active = self.active_members()
        return active[0] if active else None

    def member_identities(self) -> list[RemoteRef]:
        """Identities of active members, sentinel first — what the client
        stub fetches on first contact."""
        return [m.ref() for m in self.active_members()]

    def membership_epoch_key(self) -> str:
        """KV-store key of this pool's membership epoch."""
        return f"{self.name}$epoch"

    def _bump_epoch(self) -> None:
        """Advance the membership epoch in the shared store.

        Client stubs compare this epoch against their cached one and
        re-fetch identities only when it moves — keeping membership
        refresh off the invocation data path (no count-based rescans).
        """
        try:
            self.services.store.incr(self.membership_epoch_key())
        except StoreError:
            # Store outage: stubs fall back to failure-driven refresh.
            # Only store failures are masked here — anything else is a
            # programming error and must surface.
            pass

    # ------------------------------------------------------------------
    # instantiation and growth
    # ------------------------------------------------------------------

    def start(self) -> int:
        """Create the initial members (min pool size; fewer if the cluster
        is short on slices).  Returns the number actually started."""
        return self.grow(self.config.min_pool_size, reason="instantiation")

    def grow(self, count: int, reason: str = "scale-up") -> int:
        """Request ``count`` slices and start a member on each grant."""
        if count <= 0:
            return 0
        self._check_open()
        size_before = self.size()
        slices = self.services.master.request_slices(
            self.services.framework_name, count
        )
        now = self.services.scheduler.clock.now()
        load = self.load_factor()
        for sl in slices:
            member = PoolMember(
                uid=next(self._uid_counter),
                slice=sl,
                state=MemberState.STARTING,
                requested_at=now,
            )
            with self._lock:
                self.members[member.uid] = member
            latency = self.services.provisioner.sample_up_latency(load)
            self.services.scheduler.call_after(
                latency, lambda m=member: self._activate(m)
            )
        self.scaling_events.append(
            ScalingEvent(
                at=now,
                pool=self.name,
                decision=count,
                granted=len(slices),
                size_before=size_before,
                size_after=size_before,  # activation is asynchronous
                reason=reason,
            )
        )
        self._emit(
            "pool-grow",
            requested=count, granted=len(slices),
            reason=reason, size_before=size_before,
        )
        return len(slices)

    def _activate(self, member: PoolMember) -> None:
        """Provisioning finished: export the object and join the group."""
        with self._lock:
            if self.closed or member.state is not MemberState.STARTING:
                return
        endpoint = self.services.transport.add_endpoint(member.address())
        instance = self.factory()
        skeleton = Skeleton(
            impl=instance,
            transport=self.services.transport,
            endpoint_id=endpoint.endpoint_id,
            clock=self.services.scheduler.clock,
            object_id=f"{self.name}/{member.uid}",
            uid=member.uid,
            obs=self.services.obs,
        )
        member.endpoint_id = endpoint.endpoint_id
        member.skeleton = skeleton
        member.instance = instance
        member.monitor = MemberMonitor(clock=self.services.scheduler.clock)
        if (
            isinstance(member.utilization, ManualUtilization)
            and self.services.default_utilization is not None
        ):
            source = self.services.default_utilization(member)
            if source is not None:
                member.utilization = source
        instance._ermi_ctx = MemberContext(self, member)
        self.channel.join(
            member.address(),
            on_message=lambda sender, msg, m=member: self._on_group_message(
                m, sender, msg
            ),
        )
        now = self.services.scheduler.clock.now()
        member.active_at = now
        with self._lock:
            member.state = MemberState.ACTIVE
        # Lifecycle hook: applications that replicate in-member state
        # (e.g. Paxos learners) catch up from the group here.
        join_hook = getattr(instance, "on_pool_join", None)
        if join_hook is not None:
            join_hook()
        self.provisioning_records.append(
            ProvisioningRecord(
                pool=self.name,
                uid=member.uid,
                requested_at=member.requested_at,
                active_at=now,
            )
        )
        self._emit(
            "member-active",
            uid=member.uid, requested_at=round(member.requested_at, 9),
        )
        self._note_size()
        # Record the member identity in the shared store, as the paper's
        # runtime stores skeleton uids/identities in HyperDex.  The store
        # copy is a best-effort mirror — identities flow to clients from
        # the sentinel — so losing the owning partition must not block a
        # member from activating.
        try:
            self.services.store.update(
                f"{self.name}$members",
                lambda ids: {**(ids or {}), member.uid: member.ref()},
                default={},
            )
        except StoreError:
            pass
        self._bump_epoch()
        self.services.on_membership_change(self)

    # ------------------------------------------------------------------
    # graceful shrink (paper section 2.5 removal protocol)
    # ------------------------------------------------------------------

    def shrink(self, count: int, reason: str = "scale-down") -> int:
        """Drain and remove up to ``count`` members, never going below the
        minimum pool size and never picking the sentinel while other
        members remain."""
        if count <= 0:
            return 0
        self._check_open()
        active = self.active_members()
        removable = max(0, len(active) - self.config.min_pool_size)
        count = min(count, removable)
        if count == 0:
            return 0
        sentinel = self.sentinel()
        candidates = [m for m in active if m is not sentinel]
        # Remove youngest members first: they hold the least warmed state.
        candidates.sort(key=lambda m: -m.uid)
        victims = candidates[:count]
        size_before = self.size()
        now = self.services.scheduler.clock.now()
        for member in victims:
            self._begin_drain(member)
        self.scaling_events.append(
            ScalingEvent(
                at=now,
                pool=self.name,
                decision=-count,
                granted=-len(victims),
                size_before=size_before,
                size_after=size_before - len(victims),
                reason=reason,
            )
        )
        self._emit(
            "pool-shrink",
            requested=count, victims=[m.uid for m in victims],
            reason=reason, size_before=size_before,
        )
        return len(victims)

    def _begin_drain(self, member: PoolMember) -> None:
        """Step 1: redirect subsequent calls away; schedule finalization."""
        with self._lock:
            if member.state is not MemberState.ACTIVE:
                return
            member.state = MemberState.DRAINING
        if member.skeleton is not None:
            member.skeleton.start_drain()
        # Client batchers may hold calls queued for this member; push
        # them out now so each entry gets its per-call drained/redirect
        # answer and retries elsewhere, instead of idling through the
        # drain window behind the batcher's in-flight backpressure.
        if self.services.flush_client_batches is not None:
            self.services.flush_client_batches()
        drain_started = self.services.scheduler.clock.now()
        self._emit("member-drain", uid=member.uid)
        latency = self.services.provisioner.sample_down_latency(self.load_factor())
        self.services.scheduler.call_after(
            latency,
            lambda: self._finalize_removal(member, drain_started),
        )
        self._bump_epoch()
        self.services.on_membership_change(self)
        self._note_size()

    def _finalize_removal(self, member: PoolMember, drain_started: float) -> None:
        """Step 2: pending invocations have finished (or were given the
        drain window); shut the object down and return the slice."""
        if member.state is not MemberState.DRAINING:
            return
        skeleton = member.skeleton
        if skeleton is not None and not skeleton.is_drained:
            # Live mode: give in-flight calls a bounded grace period.
            skeleton.wait_drained(timeout=5.0)
        self._terminate(member)
        now = self.services.scheduler.clock.now()
        self.provisioning_records.append(
            ProvisioningRecord(
                pool=self.name,
                uid=member.uid,
                requested_at=drain_started,
                active_at=now,
                direction="down",
            )
        )
        self._emit(
            "member-removed",
            uid=member.uid, drain_started=round(drain_started, 9),
        )

    def _terminate(self, member: PoolMember, release_slice: bool = True) -> None:
        with self._lock:
            if member.state is MemberState.TERMINATED:
                return
            member.state = MemberState.TERMINATED
            member.terminated_at = self.services.scheduler.clock.now()
        if member.skeleton is not None:
            member.skeleton.unexport()
        if member.endpoint_id is not None:
            self.services.transport.kill(member.endpoint_id)
        self.channel.leave(member.address())
        # Reclaim every distributed lock the member still held: a lease
        # whose owner crashed must be released eagerly, not discovered
        # stale by whichever waiter happens to touch the name next.
        self.services.locks.release_owner(f"{self.name}:member-{member.uid}")
        try:
            self.services.store.update(
                f"{self.name}$members",
                lambda ids: {
                    uid: ref
                    for uid, ref in (ids or {}).items()
                    if uid != member.uid
                },
                default={},
            )
        except StoreError:
            # Same best-effort mirror as on activation.
            pass
        self._bump_epoch()
        if release_slice:
            try:
                self.services.master.release_slice(
                    self.services.framework_name, member.slice
                )
            except Exception:
                # Master outage during release: the slice stays accounted
                # to us until recovery (section 4.4 pauses scaling then).
                pass
        self.services.on_membership_change(self)
        self._note_size()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def handle_slice_lost(self, sl: Slice) -> None:
        """A cluster node died under one of our members."""
        with self._lock:
            victim = next(
                (m for m in self.members.values() if m.slice is sl), None
            )
        if victim is not None:
            self._terminate(victim, release_slice=False)

    def reap_failures(self) -> list[PoolMember]:
        """Detect and remove failed members; return the members reaped.

        Covers the three ways a member dies out from under us:

        - **slice lost** — the cluster node hosting the slice failed; the
          slice is gone, so it must not be released back to the master;
        - **endpoint dead** — the "JVM" crashed while the node lives on;
          the slice is still ours and is returned for reuse;
        - **crashed drain** — either of the above while the member was
          DRAINING.  Without this case a drain whose member died would
          never finalize: ``_finalize_removal`` waits on a skeleton that
          will never report drained, the slice is never released, and
          the pool wedges below ``min``.

        Termination releases the member's distributed-lock leases, bumps
        the membership epoch (client stubs refresh), and — because the
        sentinel is simply the lowest-uid *active* member — re-election
        is implicit in the next :meth:`sentinel` call.
        """
        now = self.services.scheduler.clock.now()
        with self._lock:
            candidates = sorted(
                (
                    m
                    for m in self.members.values()
                    if m.state in (MemberState.ACTIVE, MemberState.DRAINING)
                ),
                key=lambda m: m.uid,
            )
        reaped: list[PoolMember] = []
        for member in candidates:
            lost = member.slice.state is SliceState.LOST
            dead = False
            if not lost and member.endpoint_id is not None:
                try:
                    dead = not self.services.transport.endpoint(
                        member.endpoint_id
                    ).alive
                except RemoteError:
                    dead = True
            if not lost and not dead:
                continue
            if member.state is MemberState.DRAINING:
                kind = "drain-crashed"
            elif lost:
                kind = "slice-lost"
            else:
                kind = "endpoint-dead"
            # A lost slice no longer exists at the master; releasing it
            # would double-free (the master already reclaimed the node).
            self._terminate(member, release_slice=not lost)
            self.failure_records.append(
                FailureRecord(at=now, pool=self.name, uid=member.uid, kind=kind)
            )
            self._emit("member-reaped", uid=member.uid, cause=kind)
            reaped.append(member)
        return reaped

    def detect_dead_members(self) -> list[PoolMember]:
        """Legacy name for :meth:`reap_failures` (kept for callers that
        predate the unified failure path)."""
        return self.reap_failures()

    # ------------------------------------------------------------------
    # monitoring windows
    # ------------------------------------------------------------------

    def sample_utilization(self) -> None:
        """Record one utilization sample per active member."""
        for member in self.active_members():
            if member.monitor is not None:
                member.monitor.record(
                    member.utilization.cpu_percent(),
                    member.utilization.ram_percent(),
                )

    def avg_cpu_usage(self) -> float:
        """CPU percent averaged across members over the burst interval.

        Returns the live mean of the current window while samples are
        accumulating; once :meth:`roll_window` closes a window, the value
        of that completed window is reported (the semantics of Figure 3's
        ``getAvgCPUUsage``).
        """
        live = self._live_window_mean("cpu")
        return live if live is not None else self._window_cpu_avg

    def avg_ram_usage(self) -> float:
        live = self._live_window_mean("ram")
        return live if live is not None else self._window_ram_avg

    def _live_window_mean(self, kind: str) -> float | None:
        values = []
        for member in self.active_members():
            if member.monitor is None or not member.monitor.samples:
                continue
            values.append(
                member.monitor.window_cpu()
                if kind == "cpu"
                else member.monitor.window_ram()
            )
        if not values:
            return None
        return sum(values) / len(values)

    def load_factor(self) -> float:
        """Normalized load in [0, ~1.5] driving provisioning latency.

        Combines member utilization with pool scale: a larger pool means
        more in-flight invocations to consider for redirection and a
        busier sentinel, which is why the paper observes provisioning
        intervals growing with workload (section 5.6).
        """
        utilization = self.avg_cpu_usage() / 100.0
        scale = self.size() / max(1, self.config.max_pool_size)
        return utilization * (0.35 + 0.65 * scale)

    def roll_window(self) -> None:
        """Close the burst-interval window: cache utilization averages,
        aggregate per-method stats across members, and reset monitors."""
        live_cpu = self._live_window_mean("cpu")
        live_ram = self._live_window_mean("ram")
        if live_cpu is not None:
            self._window_cpu_avg = live_cpu
        if live_ram is not None:
            self._window_ram_avg = live_ram
        aggregated: dict[str, MethodCallStat] = {}
        interval = self.config.burst_interval
        for member in self.active_members():
            if member.skeleton is None:
                continue
            window = member.skeleton.stats.snapshot_and_reset()
            for method, stats in window.items():
                agg = aggregated.setdefault(method, MethodCallStat())
                prior_latency_weight = agg.calls
                agg.calls += stats.calls
                agg.errors += stats.errors
                if agg.calls > 0:
                    agg.mean_latency = (
                        agg.mean_latency * prior_latency_weight
                        + stats.total_latency
                        / max(stats.calls, 1)
                        * stats.calls
                    ) / agg.calls
        for stat in aggregated.values():
            stat.rate = stat.calls / interval if interval > 0 else 0.0
        self._last_window_stats = aggregated
        for member in self.active_members():
            if member.monitor is not None:
                member.monitor.reset_window()

    def method_call_stats(self) -> dict[str, MethodCallStat]:
        """Stats for the last completed burst window (Figure 3's
        ``getMethodCallStats``)."""
        return dict(self._last_window_stats)

    def pending_by_member(self) -> dict[int, int]:
        return {
            m.uid: (m.skeleton.pending if m.skeleton else 0)
            for m in self.active_members()
        }

    # ------------------------------------------------------------------
    # group messages (sentinel broadcasts)
    # ------------------------------------------------------------------

    def _on_group_message(
        self, member: PoolMember, sender: str, message: Any
    ) -> None:
        kind = message.get("kind") if isinstance(message, dict) else None
        if kind == "pool-state":
            self.last_broadcast_state = message
        elif kind == "rebalance":
            directive = message["plan"].get(member.uid)
            if member.skeleton is not None:
                member.skeleton.redirect_policy = directive
        else:
            # Application-level group messages (e.g. Paxos rounds) go to
            # the member instance when it declares a handler.
            handler = getattr(member.instance, "on_group_message", None)
            if handler is not None:
                handler(sender, message)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Terminate every member and release all slices."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            members = list(self.members.values())
        for member in members:
            if member.state in (
                MemberState.ACTIVE,
                MemberState.DRAINING,
                MemberState.STARTING,
            ):
                self._terminate(member)

    def _check_open(self) -> None:
        if self.closed:
            raise PoolShutdownError(f"pool {self.name!r} is shut down")


class ShardedElasticPool:
    """One logical elastic object partitioned into N member pools.

    The step from "one elastic pool" to "millions of users" (ROADMAP
    item 1): instead of a single flat member list behind round-robin,
    the logical pool is split into ``count`` *shards*, each a full
    :class:`ElasticObjectPool` — its own member list, its own sentinel,
    its own epoch key (``{name}/shard{i}$epoch``), and its own scaling
    decisions under the paper's ``changePoolSize()``/Decider contract.
    A hot shard grows while cold ones shrink; nothing is coordinated
    across shards beyond sharing the cluster master's slice budget.

    Key→shard routing lives in a :class:`~repro.routing.ShardRouter`
    (consistent hashing over the shard names).  The shard *set* is
    fixed at instantiation, so the route of every affinity key is
    stable under any amount of per-shard membership churn — growing,
    shrinking, or reaping members of shard *j* can never move a key
    owned by shard *i*.

    The shard map is published in the shared store at two levels:

    - ``{name}$shards`` — the static topology (shard count + pool
      names), written once at instantiation; a client in another
      process reads this to build its router and per-shard stubs;
    - ``{name}$shardmap/{i}`` — each shard's live entry (sentinel uid,
      size, epoch), refreshed by that shard's sentinel on its broadcast
      cadence (:meth:`SentinelAgent.tick`).
    """

    def __init__(
        self, name: str, shards: list[ElasticObjectPool]
    ) -> None:
        if not shards:
            raise ValueError(f"sharded pool {name!r} needs >= 1 shard")
        self.name = name
        self.shards = list(shards)
        self.router = ShardRouter([p.name for p in self.shards])

    # -- routing ---------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (total and deterministic)."""
        return self.router.shard_for(str(key))

    def pool_for(self, key: str) -> ElasticObjectPool:
        return self.shards[self.shard_for(key)]

    # -- aggregate queries ----------------------------------------------

    def size(self) -> int:
        """Active members across every shard."""
        return sum(p.size() for p in self.shards)

    def sizes(self) -> list[int]:
        """Per-shard active sizes, in shard order."""
        return [p.size() for p in self.shards]

    def provisioned_size(self) -> int:
        return sum(p.provisioned_size() for p in self.shards)

    @property
    def closed(self) -> bool:
        return all(p.closed for p in self.shards)

    # -- shard map -------------------------------------------------------

    def shard_map_key(self) -> str:
        """KV-store key of the static shard topology."""
        return f"{self.name}$shards"

    def shard_map(self) -> dict[str, Any]:
        return {
            "pool": self.name,
            "count": len(self.shards),
            "pools": [p.name for p in self.shards],
        }

    def publish_shard_map(self) -> None:
        """Write the static topology to the shared store (best effort,
        like the member-identity mirror: clients can always fall back
        to the per-shard registry bindings)."""
        try:
            self.shards[0].services.store.put(
                self.shard_map_key(), self.shard_map()
            )
        except StoreError:
            pass

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        for pool in self.shards:
            pool.shutdown()
