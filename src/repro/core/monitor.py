"""Workload monitoring: utilization sources and burst-interval windows.

The runtime monitors every pool member's resource utilization and method
call statistics, averaged over the burst interval (paper sections 2.5,
3.2).  Where the Java implementation reads JVM/OS counters, this library
reads a pluggable :class:`UtilizationSource`:

- :class:`QueueUtilization` — live mode default: utilization derived from
  the skeleton's in-flight/pending work versus its concurrency capacity;
- :class:`ManualUtilization` — set directly; used by the simulation
  experiments (offered load / capacity queueing model) and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.rmi.remote import Skeleton
from repro.sim.clock import Clock


class UtilizationSource(Protocol):
    """Where a member's CPU/RAM percentages come from."""

    def cpu_percent(self) -> float: ...

    def ram_percent(self) -> float: ...


class ManualUtilization:
    """Utilization set explicitly (simulation experiments, tests)."""

    def __init__(self, cpu: float = 0.0, ram: float = 0.0) -> None:
        self.cpu = cpu
        self.ram = ram

    def set(self, cpu: float, ram: float | None = None) -> None:
        self.cpu = cpu
        if ram is not None:
            self.ram = ram

    def cpu_percent(self) -> float:
        return self.cpu

    def ram_percent(self) -> float:
        return self.ram


class QueueUtilization:
    """Live-mode source: utilization from the skeleton's in-flight calls.

    A member handling ``pending`` concurrent calls against a dispatch
    capacity of ``capacity`` workers is modeled as ``pending/capacity``
    busy; RAM tracks CPU at a configurable ratio (JVM heap pressure
    broadly follows request concurrency for the server apps evaluated).
    """

    def __init__(
        self, skeleton: Skeleton, capacity: int = 4, ram_ratio: float = 0.7
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self._skeleton = skeleton
        self._capacity = capacity
        self._ram_ratio = ram_ratio

    def cpu_percent(self) -> float:
        return min(100.0, 100.0 * self._skeleton.pending / self._capacity)

    def ram_percent(self) -> float:
        return self.cpu_percent() * self._ram_ratio


@dataclass
class _Sample:
    at: float
    cpu: float
    ram: float


@dataclass
class MemberMonitor:
    """Utilization samples for one member, windowed per burst interval."""

    clock: Clock
    samples: list[_Sample] = field(default_factory=list)

    def record(self, cpu: float, ram: float) -> None:
        self.samples.append(_Sample(self.clock.now(), cpu, ram))

    def window_cpu(self) -> float:
        """Mean CPU over the samples in the current window (0 if none)."""
        if not self.samples:
            return 0.0
        return sum(s.cpu for s in self.samples) / len(self.samples)

    def window_ram(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.ram for s in self.samples) / len(self.samples)

    def reset_window(self) -> None:
        self.samples.clear()
