"""The ElasticRMI runtime (paper section 4).

Wires together the substrates — cluster manager, key-value store, lock
manager, transport, registry, group channels — and runs the control loop:

- instantiates elastic pools (one member per Mesos slice, plus the shared
  HyperStore on its own slice);
- every *burst interval*: closes the monitoring window, asks the pool's
  scaling policy for a delta, clamps it to [min, max], and grows/shrinks
  the pool (Mesos outages pause scaling, per section 4.4);
- on a finer cadence: samples member utilization and runs the sentinel's
  broadcast/rebalance duties;
- keeps the registry binding for each pool pointed at the current
  sentinel, so client stubs always have a live bootstrap address.

Construction helpers give the two operating modes:

- :meth:`ElasticRuntime.local` — live: wall clock, timer threads, a
  threaded transport with real blocking calls (the runnable examples);
- :meth:`ElasticRuntime.simulated` — deterministic: virtual clock on a
  :class:`~repro.sim.kernel.Kernel`, direct transport (the paper's
  experiments re-run in virtual time).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.master import MesosMaster
from repro.cluster.node import Slice
from repro.cluster.provisioner import (
    ContainerProvisioner,
    InstantProvisioner,
    Provisioner,
)
from repro.core.api import Decider, ElasticObject
from repro.core.balancer import BalancingMode, ElasticStub, ShardedElasticStub
from repro.core.monitor import QueueUtilization, UtilizationSource
from repro.core.pool import (
    ElasticObjectPool,
    PoolMember,
    ShardedElasticPool,
    ShardInfo,
)
from repro.core.scaling import ScalingPolicy, select_policy
from repro.core.sentinel import SentinelAgent
from repro.errors import MasterUnavailableError, PoolConfigurationError
from repro.faults.policy import RetryPolicy
from repro.kvstore.cache import WatchCache
from repro.kvstore.locks import LockManager
from repro.kvstore.store import HyperStore
from repro.rmi.batching import RequestBatcher
from repro.rmi.registry import Registry
from repro.rmi.transport import DirectTransport, ThreadedTransport, Transport
from repro.routing import shard_names
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler, ThreadScheduler


def transport_from_env(
    choice: "Transport | str | None" = None,
) -> Transport:
    """Resolve the live transport: an instance passes through, a name
    (or ``ERMI_TRANSPORT`` when ``choice`` is None) selects one.

    - ``threaded`` (default) — :class:`ThreadedTransport`, one blocked
      OS thread per in-flight call;
    - ``asyncio`` (alias ``aio``) — :class:`~repro.rmi.aio.AsyncioTransport`,
      loop-native, thousands of in-flight calls per process.

    The simulated runtime ignores this entirely: determinism lives on
    :class:`DirectTransport` regardless of the env.
    """
    if choice is None:
        choice = os.environ.get("ERMI_TRANSPORT", "threaded")
    if not isinstance(choice, str):
        return choice
    name = choice.strip().lower()
    if name in ("", "threaded"):
        return ThreadedTransport()
    if name in ("asyncio", "aio"):
        from repro.rmi.aio import AsyncioTransport

        return AsyncioTransport()
    raise PoolConfigurationError(
        f"unknown transport {choice!r}: expected 'threaded' or 'asyncio'"
    )


@dataclass
class RuntimeServices:
    """The substrate view a pool needs; kept narrow on purpose."""

    master: MesosMaster
    scheduler: Scheduler
    transport: Transport
    store: HyperStore
    locks: LockManager
    provisioner: Provisioner
    framework_name: str
    on_membership_change: Callable[[ElasticObjectPool], None]
    default_utilization: Callable[[PoolMember], UtilizationSource | None] | None = None
    # Flush client-side request batchers (drain protocol): a member that
    # starts draining must see the calls already queued for it *now*, so
    # they get their per-entry drained/redirect answers and retry
    # elsewhere instead of sitting out the drain window.  None when no
    # runtime-made stub batches.
    flush_client_batches: Callable[[], None] | None = None
    # The runtime's shared WatchCache over ``store``, or None.  Members
    # and sentinels route coordination reads (elastic fields, epoch
    # mirrors) through it so steady-state reads are push-invalidated
    # local hits instead of store round-trips.
    cache: Any = None
    # The runtime's Observability (repro.obs), or None — pools check this
    # once per event site, so a runtime without one pays a single branch.
    obs: Any = None


@dataclass
class PoolRecord:
    """Runtime-internal state for one managed pool."""

    pool: ElasticObjectPool
    policy: ScalingPolicy
    sentinel_agent: SentinelAgent
    paused_ticks: int = 0
    tick_count: int = 0
    on_tick: list[Callable[[ElasticObjectPool], None]] = field(
        default_factory=list
    )


class ElasticRuntime:
    """Entry point: create one per deployment, then ``new_pool(...)``."""

    def __init__(
        self,
        master: MesosMaster,
        scheduler: Scheduler,
        transport: Transport,
        *,
        store: HyperStore | None = None,
        locks: LockManager | None = None,
        registry: Registry | None = None,
        provisioner: Provisioner | None = None,
        rng: RngStreams | None = None,
        framework_name: str = "elasticrmi",
        samples_per_burst: int = 6,
        store_monitor_interval: float = 60.0,
        store_ops_per_node_limit: int | None = 500_000,
        failure_check_interval: float | None = None,
        observability: Any = None,
    ) -> None:
        self.master = master
        self.scheduler = scheduler
        self.transport = transport
        self.rng = rng or RngStreams(0)
        self.store = store or HyperStore(nodes=1)
        self.locks = locks or LockManager(clock=scheduler.clock)
        # One shared read-through cache over the store: epoch reads,
        # shard-map fallbacks, and elastic fields all go through it.
        # Watch-invalidated (the store is in-process here), with the
        # lease TTL as the fallback when a watch stream degrades; driven
        # by the scheduler's clock so lease expiry runs on virtual time
        # under simulation.
        self.store_cache = WatchCache(
            self.store,
            clock=scheduler.clock.now,
            obs=observability,
        )
        # Observability fan-out: one repro.obs.Observability (or None)
        # shared by every layer.  Wiring happens here, once, so no layer
        # needs to know whether tracing is on.
        self.obs = observability
        if observability is not None:
            tracer = observability.tracer
            set_obs = getattr(transport, "set_obs", None)
            if set_obs is not None:
                # Full wiring: tracer plus transport-owned metrics
                # (dispatch saturation gauges, loop-lag histograms).
                set_obs(observability)
            else:
                set_tracer = getattr(transport, "set_tracer", None)
                if set_tracer is not None:
                    set_tracer(tracer)
            master.set_tracer(tracer)
            self.locks.set_tracer(tracer)
            store_obs = getattr(self.store, "set_obs", None)
            if store_obs is not None:
                store_obs(observability)
        # Last known sentinel uid per pool, to trace elections exactly
        # when leadership actually moves.
        self._last_sentinel: dict[str, int | None] = {}
        self.registry = registry or Registry()
        self.provisioner = provisioner or ContainerProvisioner(
            self.rng.stream("provisioner")
        )
        self.framework_name = framework_name
        self.samples_per_burst = max(1, samples_per_burst)
        # Failure-detection cadence.  ``None`` (the default) keeps the
        # legacy behaviour — failures are noticed once per burst interval
        # by the control tick.  Setting it runs a dedicated repair loop
        # on this finer period *and* arms membership-change-triggered
        # repair, so a crash is healed without waiting out the burst.
        if failure_check_interval is not None and failure_check_interval <= 0:
            raise ValueError(
                f"failure_check_interval must be positive: "
                f"{failure_check_interval}"
            )
        self.failure_check_interval = failure_check_interval
        # Stubs handed out by .stub(): weakly held so abandoned stubs
        # die normally, strongly reachable ones get their pending batch
        # entries flushed on every membership change (drain protocol).
        self._client_stubs: "weakref.WeakSet[ElasticStub]" = weakref.WeakSet()
        self._pools: dict[str, PoolRecord] = {}
        self._sharded: dict[str, ShardedElasticPool] = {}
        self._lock = threading.RLock()
        self._closed = False
        master.register_framework(
            framework_name, on_slice_lost=self._on_slice_lost
        )
        # The paper instantiates the shared store on one additional Mesos
        # slice; account for it so cluster utilization is honest.
        self._store_slices: list[Slice] = master.request_slices(
            framework_name, 1
        )
        # Store performance monitoring: "ElasticRMI ... continues to
        # monitor the performance of the HyperDex over the lifetime of
        # the elastic object [and] may add additional nodes ... as
        # necessary" (section 4.2).
        self._store_monitor_interval = store_monitor_interval
        self._store_ops_limit = store_ops_per_node_limit
        self._store_ops_seen = self.store.total_ops()
        self.store_scale_events: list[tuple[float, str]] = []
        if store_ops_per_node_limit is not None:
            self.scheduler.call_after(
                store_monitor_interval, self._monitor_store
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def local(
        cls,
        nodes: int = 8,
        slices_per_node: int = 4,
        seed: int = 0,
        provisioner: Provisioner | None = None,
        transport: "Transport | str | None" = None,
        **kwargs: Any,
    ) -> "ElasticRuntime":
        """Live runtime: wall clock, timer threads, live transport.

        ``transport`` picks the invocation substrate: a Transport
        instance, a name (``"threaded"``/``"asyncio"``), or None to
        read ``ERMI_TRANSPORT`` (default threaded).  Provisioning is
        instantaneous by default so examples and tests are snappy; pass
        a provisioner to model container-start delays.
        """
        scheduler = ThreadScheduler()
        transport = transport_from_env(transport)
        master = MesosMaster.homogeneous(nodes, slices_per_node)
        return cls(
            master,
            scheduler,
            transport,
            provisioner=provisioner or InstantProvisioner(),
            rng=RngStreams(seed),
            **kwargs,
        )

    @classmethod
    def simulated(
        cls,
        kernel: Kernel,
        nodes: int = 16,
        slices_per_node: int = 4,
        seed: int = 0,
        provisioner: Provisioner | None = None,
        rng: RngStreams | None = None,
        **kwargs: Any,
    ) -> "ElasticRuntime":
        """Deterministic runtime on a simulation kernel."""
        transport = DirectTransport()
        master = MesosMaster.homogeneous(nodes, slices_per_node)
        rng = rng or RngStreams(seed)
        return cls(
            master,
            kernel,  # Kernel satisfies the Scheduler protocol
            transport,
            provisioner=provisioner
            or ContainerProvisioner(rng.stream("provisioner")),
            rng=rng,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # pool management
    # ------------------------------------------------------------------

    def new_pool(
        self,
        cls_: type[ElasticObject],
        *args: Any,
        name: str | None = None,
        min_size: int | None = None,
        max_size: int | None = None,
        decider: Decider | None = None,
        utilization_factory: Callable[
            [PoolMember], UtilizationSource | None
        ]
        | None = None,
        shard_of: ShardInfo | None = None,
        **kwargs: Any,
    ) -> ElasticObjectPool:
        """Instantiate an elastic class into a managed pool.

        ``args``/``kwargs`` are passed to every member's constructor.  The
        configuration comes from the class's ``__init__`` setters, with
        ``min_size``/``max_size`` overrides for deployment-time tuning.

        ``shard_of`` marks this pool as one shard of a sharded logical
        pool; :meth:`new_sharded_pool` sets it — applications don't.
        """
        if not issubclass(cls_, ElasticObject):
            raise PoolConfigurationError(
                f"{cls_.__name__} does not extend ElasticObject"
            )
        pool_name = name or cls_.__name__
        with self._lock:
            if pool_name in self._pools:
                raise PoolConfigurationError(
                    f"pool name already in use: {pool_name}"
                )

        def factory() -> ElasticObject:
            return cls_(*args, **kwargs)

        prototype = factory()
        config = prototype._ermi_config
        if min_size is not None:
            config.min_pool_size = min_size
        if max_size is not None:
            config.max_pool_size = max_size
        config.validate()
        effective_decider = decider or prototype._ermi_decider

        services = RuntimeServices(
            master=self.master,
            scheduler=self.scheduler,
            transport=self.transport,
            store=self.store,
            locks=self.locks,
            provisioner=self.provisioner,
            framework_name=self.framework_name,
            on_membership_change=self._on_membership_change,
            default_utilization=utilization_factory
            or self._default_utilization,
            flush_client_batches=self._flush_client_batches,
            obs=self.obs,
            cache=self.store_cache,
        )
        pool = ElasticObjectPool(
            name=pool_name,
            cls=cls_,
            factory=factory,
            config=config,
            services=services,
            shard_of=shard_of,
        )
        policy = select_policy(cls_, config, effective_decider)
        record = PoolRecord(
            pool=pool, policy=policy, sentinel_agent=SentinelAgent(pool)
        )
        with self._lock:
            self._pools[pool_name] = record
        pool.start()
        self._schedule_sampling(record)
        self._schedule_tick(record)
        self._schedule_repair(record)
        return pool

    def pool(self, name: str) -> ElasticObjectPool:
        with self._lock:
            if name not in self._pools:
                raise KeyError(f"unknown pool: {name}")
            return self._pools[name].pool

    def record(self, name: str) -> PoolRecord:
        with self._lock:
            if name not in self._pools:
                raise KeyError(f"unknown pool: {name}")
            return self._pools[name]

    def pools(self) -> list[ElasticObjectPool]:
        with self._lock:
            return [r.pool for r in self._pools.values()]

    # ------------------------------------------------------------------
    # sharded pools
    # ------------------------------------------------------------------

    def new_sharded_pool(
        self,
        cls_: type[ElasticObject],
        *args: Any,
        name: str | None = None,
        shards: int = 4,
        min_size: int | None = None,
        max_size: int | None = None,
        decider: Decider | None = None,
        utilization_factory: Callable[
            [PoolMember], UtilizationSource | None
        ]
        | None = None,
        **kwargs: Any,
    ) -> ShardedElasticPool:
        """Instantiate an elastic class into ``shards`` independent pools.

        Each shard is a full managed pool named ``{name}/shard{i}`` —
        its own sentinel, epoch key, monitoring window, and scaling
        ticks under ``decider`` — so a hot shard grows while cold ones
        shrink.  ``min_size``/``max_size`` bound each shard
        individually.  The static shard map is published to the store
        at ``{name}$shards``.
        """
        if not issubclass(cls_, ElasticObject):
            raise PoolConfigurationError(
                f"{cls_.__name__} does not extend ElasticObject"
            )
        if shards < 1:
            raise PoolConfigurationError(
                f"sharded pool needs >= 1 shard, got {shards}"
            )
        pool_name = name or cls_.__name__
        with self._lock:
            if pool_name in self._sharded:
                raise PoolConfigurationError(
                    f"sharded pool name already in use: {pool_name}"
                )
        shard_pools = [
            self.new_pool(
                cls_,
                *args,
                name=shard,
                min_size=min_size,
                max_size=max_size,
                decider=decider,
                utilization_factory=utilization_factory,
                shard_of=ShardInfo(pool_name, index, shards),
                **kwargs,
            )
            for index, shard in enumerate(shard_names(pool_name, shards))
        ]
        sharded = ShardedElasticPool(pool_name, shard_pools)
        with self._lock:
            self._sharded[pool_name] = sharded
        sharded.publish_shard_map()
        return sharded

    def sharded_pool(self, name: str) -> ShardedElasticPool:
        with self._lock:
            if name not in self._sharded:
                raise KeyError(f"unknown sharded pool: {name}")
            return self._sharded[name]

    def sharded_stub(
        self,
        name: str,
        mode: BalancingMode = BalancingMode.ROUND_ROBIN,
        caller: str = "client",
        retry_policy: RetryPolicy | None = None,
    ) -> ShardedElasticStub:
        """Key-affinity client stub for a sharded pool.

        One :class:`ElasticStub` per shard (each with its own membership
        cache and, when ``ERMI_BATCH_MAX`` enables coalescing, its own
        batcher — batches form per shard endpoint, never across shards)
        plus the shard router.  ``invoke(..., affinity_key=K)`` pins
        ``K``'s calls to its shard; keyless calls spread round-robin
        over shards.  The shard topology comes from this runtime's
        record of the pool, or — for a pool instantiated elsewhere —
        from the ``{name}$shards`` map in the shared store.
        """
        with self._lock:
            sharded = self._sharded.get(name)
        if sharded is not None:
            names = [p.name for p in sharded.shards]
        else:
            # The static shard map never changes after publication, so
            # the cached read makes repeat stub construction free.
            entry = self.store_cache.get(f"{name}$shards", default=None)
            if not entry:
                raise KeyError(f"unknown sharded pool: {name}")
            names = list(entry["pools"])
        stubs = [
            self.stub(
                shard, mode=mode, caller=caller, retry_policy=retry_policy
            )
            for shard in names
        ]
        return ShardedElasticStub(name, stubs)

    def stub(
        self,
        name: str,
        mode: BalancingMode = BalancingMode.ROUND_ROBIN,
        caller: str = "client",
        retry_policy: RetryPolicy | None = None,
        batcher: RequestBatcher | None = None,
        epoch_caching: bool = True,
    ) -> ElasticStub:
        """Client stub for a pool: one remote object, load balanced.

        The stub caches member identities against the pool's membership
        epoch in the shared store, so its common path is lock-free and
        identities are only re-fetched when the pool actually changed.
        With ``epoch_caching`` (the default) the epoch itself is read
        through the runtime's watch cache: membership changes are pushed
        into the stub's process, and the steady-state invocation path
        performs **zero** store reads.  ``epoch_caching=False`` restores
        the one-``get``-per-call poll (the pre-watch behaviour, kept for
        benchmarking the difference).

        Retries are bounded by ``retry_policy`` (defaults apply when
        omitted): the runtime wires the stub to its own clock so the
        policy's time budget runs on virtual time under simulation and
        wall time live; backoff actually sleeps only in live mode.

        Pass ``batcher`` to coalesce this stub's calls explicitly; with
        no argument a batcher is attached only when ``ERMI_BATCH_MAX``
        enables one.  Batched stubs are tracked so the drain protocol
        can flush their queued entries.
        """
        epoch_key = f"{name}$epoch"
        live = isinstance(self.scheduler, ThreadScheduler)
        if epoch_caching:
            cache = self.store_cache
            epoch_source = lambda: cache.get(epoch_key, default=0)  # noqa: E731
        else:
            epoch_source = lambda: self.store.get(epoch_key, default=0)  # noqa: E731
        stub = ElasticStub(
            transport=self.transport,
            sentinel_resolver=lambda: self.registry.lookup(name),
            mode=mode,
            caller=caller,
            rng=self.rng.stream(f"stub:{name}:{caller}"),
            epoch_source=epoch_source,
            retry_policy=retry_policy,
            clock=self.scheduler.clock,
            sleep=time.sleep if live else None,
            obs=self.obs,
            batcher=batcher,
        )
        if stub.batcher is not None:
            # Track it so the drain protocol can flush its queued batch
            # entries (pool._begin_drain → services.flush_client_batches).
            self._client_stubs.add(stub)
        return stub

    def _flush_client_batches(self) -> None:
        """Flush every live stub's pending batch entries (drain hook)."""
        for stub in list(self._client_stubs):
            stub.flush_pending()

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------

    def _schedule_tick(self, record: PoolRecord) -> None:
        if self._closed or record.pool.closed:
            return
        self.scheduler.call_after(
            record.pool.config.burst_interval, lambda: self._tick(record)
        )

    def _tick(self, record: PoolRecord) -> None:
        pool = record.pool
        if self._closed or pool.closed:
            return
        record.tick_count += 1
        self._repair(record)
        pool.roll_window()
        try:
            delta = record.policy.decide(pool)
        except Exception:
            delta = 0  # a broken policy must not stop monitoring
        applied = self._apply_delta(record, delta)
        if self.obs is not None:
            self.obs.tracer.emit(
                "runtime", "scale-decision",
                pool=pool.name, policy=record.policy.name,
                delta=delta, applied=applied, size=pool.size(),
            )
        record.sentinel_agent.tick()
        for hook in list(record.on_tick):
            hook(pool)
        self._schedule_tick(record)
        return applied

    def _apply_delta(self, record: PoolRecord, delta: int) -> int:
        pool = record.pool
        cfg = pool.config
        current = pool.size()
        booting = pool.provisioned_size() - current
        target = max(cfg.min_pool_size, min(cfg.max_pool_size, current + delta))
        effective = target - current
        try:
            if effective > 0:
                # Do not double-request capacity that is still booting.
                want = max(0, effective - booting)
                return pool.grow(want, reason=record.policy.name) if want else 0
            if effective < 0:
                return -pool.shrink(-effective, reason=record.policy.name)
        except MasterUnavailableError:
            # Section 4.4: Mesos failures affect addition/removal of
            # objects until Mesos recovers; monitoring continues.
            record.paused_ticks += 1
        return 0

    def _repair(self, record: PoolRecord) -> int:
        """One failure-recovery pass: reap failed members, then
        re-provision back toward the minimum pool size.

        Growth only covers the gap below ``min`` — scaling *above* min
        stays the policy's job — and never double-requests capacity that
        is already booting.  A master outage pauses re-provisioning
        (section 4.4) but never the reap: dead members must leave the
        membership even when no replacement can be bought yet.
        """
        pool = record.pool
        if self._closed or pool.closed:
            return 0
        pool.reap_failures()
        deficit = pool.config.min_pool_size - pool.provisioned_size()
        if deficit <= 0:
            return 0
        try:
            return pool.grow(deficit, reason="failure-recovery")
        except MasterUnavailableError:
            record.paused_ticks += 1
            return 0

    def _schedule_repair(self, record: PoolRecord) -> None:
        """Run the dedicated repair loop when a cadence is configured."""
        if self.failure_check_interval is None:
            return
        if self._closed or record.pool.closed:
            return

        def check() -> None:
            if self._closed or record.pool.closed:
                return
            self._repair(record)
            self.scheduler.call_after(self.failure_check_interval, check)

        self.scheduler.call_after(self.failure_check_interval, check)

    def _schedule_sampling(self, record: PoolRecord) -> None:
        if self._closed or record.pool.closed:
            return
        interval = record.pool.config.burst_interval / self.samples_per_burst

        def sample() -> None:
            if self._closed or record.pool.closed:
                return
            record.pool.sample_utilization()
            self.scheduler.call_after(interval, sample)

        self.scheduler.call_after(interval, sample)

    # ------------------------------------------------------------------
    # store performance monitoring (paper section 4.2)
    # ------------------------------------------------------------------

    def _monitor_store(self) -> None:
        if self._closed:
            return
        total = self.store.total_ops()
        window_ops = total - self._store_ops_seen
        self._store_ops_seen = total
        per_node = window_ops / max(1, self.store.node_count())
        if self._store_ops_limit is not None and per_node > self._store_ops_limit:
            try:
                granted = self.master.request_slices(self.framework_name, 1)
            except MasterUnavailableError:
                granted = []
            if granted:
                self._store_slices.extend(granted)
                node = self.store.add_node()
                self.store_scale_events.append(
                    (self.scheduler.clock.now(), node)
                )
        self.scheduler.call_after(
            self._store_monitor_interval, self._monitor_store
        )

    def watch_cluster_utilization(
        self,
        high: float,
        low: float,
        on_high: Callable[[float], None],
        on_low: Callable[[float], None],
    ) -> None:
        """Administrator notifications when cluster slice utilization
        crosses the configured watermarks — "enabling the proactive
        addition of computing resources before the cluster runs out of
        slices" (section 4.2)."""
        self.master.watch_utilization(high, low, on_high, on_low)

    # ------------------------------------------------------------------
    # callbacks
    # ------------------------------------------------------------------

    def _on_membership_change(self, pool: ElasticObjectPool) -> None:
        sentinel = pool.sentinel()
        if self.obs is not None:
            # Royal-hierarchy election: leadership moved iff the lowest
            # active uid changed since we last looked.
            uid = None if sentinel is None else sentinel.uid
            if uid != self._last_sentinel.get(pool.name):
                self._last_sentinel[pool.name] = uid
                if uid is not None:
                    self.obs.tracer.emit(
                        "runtime", "sentinel-elected",
                        pool=pool.name, uid=uid,
                    )
        if sentinel is not None:
            self.registry.rebind(pool.name, sentinel.ref())
        else:
            try:
                self.registry.unbind(pool.name)
            except Exception:
                pass
        # With a repair cadence armed, a membership change that leaves
        # the pool short of ``min`` triggers repair immediately instead
        # of waiting out the interval.  Deferred via the scheduler: this
        # callback fires from inside _terminate/_activate and growing the
        # pool mid-termination would re-enter the pool's lifecycle.
        if (
            self.failure_check_interval is not None
            and not self._closed
            and not pool.closed
            and pool.provisioned_size() < pool.config.min_pool_size
        ):
            with self._lock:
                record = self._pools.get(pool.name)
            if record is not None:
                self.scheduler.call_after(0.0, lambda: self._repair(record))

    def _on_slice_lost(self, sl: Slice) -> None:
        with self._lock:
            records = list(self._pools.values())
        for record in records:
            record.pool.handle_slice_lost(sl)

    def _default_utilization(
        self, member: PoolMember
    ) -> UtilizationSource | None:
        # Any live (concurrent) transport gets queue-depth utilization;
        # simulation installs its own sources.
        if getattr(self.transport, "concurrent", False) and member.skeleton:
            return QueueUtilization(member.skeleton)
        return None

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop control loops, terminate pools, release every slice."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            records = list(self._pools.values())
        for record in records:
            record.pool.shutdown()
        for sl in self._store_slices:
            try:
                self.master.release_slice(self.framework_name, sl)
            except Exception:
                pass
        self.store_cache.close()
        if isinstance(self.scheduler, ThreadScheduler):
            self.scheduler.shutdown()
        stop_transport = getattr(self.transport, "shutdown", None)
        if stop_transport is not None:
            stop_transport()
