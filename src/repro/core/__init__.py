"""The ElasticRMI core: elastic classes, pools, scaling, load balancing.

This package is the paper's contribution (sections 2-4).  An application
class becomes *elastic* by extending :class:`ElasticObject`; instantiating
it through the :class:`ElasticRuntime` produces an
:class:`ElasticObjectPool` whose members run on distinct cluster slices
but appear to clients as a single remote object.  Scaling decisions are
made every *burst interval* by one of four policies (implicit CPU,
coarse-grained CPU/RAM thresholds, fine-grained ``change_pool_size``
voting, or an application-level :class:`Decider`).
"""

from repro.core.api import (
    Decider,
    Elastic,
    ElasticConfig,
    ElasticObject,
    MethodCallStat,
)
from repro.core.balancer import BalancingMode, ElasticStub, FirstFitRebalancer
from repro.core.fields import elastic_field, synchronized
from repro.core.pool import ElasticObjectPool, MemberState, PoolMember
from repro.core.runtime import ElasticRuntime
from repro.core.scaling import (
    CoarseGrainedPolicy,
    DeciderPolicy,
    FineGrainedPolicy,
    ImplicitPolicy,
    ScalingPolicy,
    select_policy,
)

__all__ = [
    "BalancingMode",
    "CoarseGrainedPolicy",
    "Decider",
    "DeciderPolicy",
    "Elastic",
    "ElasticConfig",
    "ElasticObject",
    "ElasticObjectPool",
    "ElasticRuntime",
    "ElasticStub",
    "FineGrainedPolicy",
    "FirstFitRebalancer",
    "ImplicitPolicy",
    "MemberState",
    "MethodCallStat",
    "PoolMember",
    "ScalingPolicy",
    "elastic_field",
    "select_policy",
    "synchronized",
]
