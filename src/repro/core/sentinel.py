"""The sentinel: pool leader duties beyond serving invocations.

The skeleton with the lowest uid is the pool's *sentinel* (paper section
4.3).  Besides forwarding invocations to its own object like any member,
it periodically broadcasts the state of the pool — number of objects,
their identities, and their pending-invocation counts — to all skeletons
over the group channel, and when it notices a skeleton overloaded
relative to the others it instructs it (again via the channel) to
redirect a portion of its invocations, sized by first-fit bin packing.

Sentinel *failure* needs no explicit protocol here: the sentinel is
defined as the lowest-uid active member, so terminating it makes
:meth:`ElasticObjectPool.sentinel` elect the next-lowest uid — the royal
hierarchy election of section 4.4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.balancer import FirstFitRebalancer, RebalanceDecision
from repro.errors import StoreError

if TYPE_CHECKING:
    from repro.core.pool import ElasticObjectPool


class SentinelAgent:
    """Runs the sentinel's periodic duties for one pool."""

    def __init__(
        self,
        pool: "ElasticObjectPool",
        rebalancer: FirstFitRebalancer | None = None,
    ) -> None:
        self.pool = pool
        self.rebalancer = rebalancer or FirstFitRebalancer()
        self.broadcasts = 0
        self.last_decision: RebalanceDecision | None = None
        # Last values actually sent/written, for coalescing: identical
        # shard-map puts and state broadcasts are skipped so a quiet pool
        # costs the store and channel nothing per tick.  ``broadcasts``
        # keeps counting tick cycles (its historical meaning); the
        # skipped_* counters expose how many sends coalescing saved.
        self._last_map_entry: dict | None = None
        self._last_state: dict | None = None
        self._last_plan_empty = True
        self.skipped_puts = 0
        self.skipped_broadcasts = 0

    def tick(self) -> RebalanceDecision | None:
        """Broadcast pool state and install redirects where needed.

        Called by the runtime on its monitoring cadence; a no-op when the
        pool currently has no active sentinel (e.g. mid-recovery).
        """
        # Reap before electing/broadcasting: a dead member must neither
        # be elected sentinel nor appear in the identities the broadcast
        # (and through it, client stubs) would otherwise keep alive.
        self.pool.reap_failures()
        sentinel = self.pool.sentinel()
        if sentinel is None:
            return None
        pending = self.pool.pending_by_member()
        refs = {m.uid: m.ref() for m in self.pool.active_members()}
        state = {
            "kind": "pool-state",
            "pool": self.pool.name,
            "size": len(refs),
            "members": list(refs.values()),
            "pending": pending,
            "sentinel": sentinel.uid,
        }
        shard = self.pool.shard_of
        if shard is not None:
            state["shard"] = shard.index
            # Refresh this shard's live entry in the parent's shard map —
            # but only when it actually changed: a quiet shard's tick
            # must not re-put an identical entry every cadence.  Best
            # effort, like the epoch mirror: the map is a routing hint,
            # and a partitioned store must never stall the tick.
            try:
                services = self.pool.services
                cache = getattr(services, "cache", None)
                epoch_key = self.pool.membership_epoch_key()
                epoch = (
                    cache.get(epoch_key, default=0)
                    if cache is not None
                    else services.store.get(epoch_key, default=0)
                )
                entry = {
                    "pool": self.pool.name,
                    "sentinel": sentinel.uid,
                    "size": len(refs),
                    "epoch": epoch,
                }
                if entry != self._last_map_entry:
                    put_many = getattr(services.store, "put_many", None)
                    if put_many is not None:
                        put_many({shard.map_entry_key(): entry})
                    else:
                        services.store.put(shard.map_entry_key(), entry)
                    self._last_map_entry = entry
                else:
                    self.skipped_puts += 1
            except StoreError:
                pass
        if state != self._last_state:
            self.pool.channel.broadcast(sentinel.address(), state)
            self._last_state = state
        else:
            self.skipped_broadcasts += 1
        self.broadcasts += 1
        decision = self.rebalancer.plan(pending, refs)
        plan_empty = all(d is None for d in decision.plan.values())
        # An all-None plan still must go out once after a real plan, so
        # members clear their redirect policies; after that, repeating
        # "nothing to rebalance" every tick is pure noise.
        if not (plan_empty and self._last_plan_empty):
            self.pool.channel.broadcast(
                sentinel.address(), {"kind": "rebalance", "plan": decision.plan}
            )
        else:
            self.skipped_broadcasts += 1
        self._last_plan_empty = plan_empty
        self.last_decision = decision
        obs = self.pool.services.obs
        if obs is not None:
            obs.tracer.emit(
                "sentinel", "broadcast",
                pool=self.pool.name, sentinel=sentinel.uid, size=len(refs),
            )
            if decision.plan:
                obs.tracer.emit(
                    "sentinel", "rebalance",
                    pool=self.pool.name,
                    overloaded=sorted(decision.plan.keys()),
                )
        return decision
