"""A CloudWatch + AutoScaling model (paper section 5.4).

Amazon CloudWatch collects utilization metrics from the nodes; alarm
conditions on those metrics drive an Auto Scaling group.  The behavioural
essentials the comparison depends on, all modeled here:

- metrics are evaluated on a fixed *period* (default 300 s, the classic
  CloudWatch detailed-monitoring alarm period used in the paper's
  "5 mins" example), and an alarm fires only after ``evaluation_periods``
  consecutive breaches;
- scaling actions add/remove whole VM instances; a new instance takes
  *minutes* to boot before it serves traffic (the reason the paper omits
  CloudWatch from Figure 8's provisioning plot);
- after a scaling action the group honours a *cooldown* before acting
  again, so reaction to abrupt workload changes is slow;
- conditions combine CPU OR memory for scale-out, and require both to be
  low for scale-in (matching the ElasticRMI-CPUMem configuration so the
  two differ only in provisioning dynamics, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.provisioner import Provisioner


@dataclass(frozen=True)
class CloudWatchConfig:
    """Alarm + auto-scaling group parameters."""

    min_capacity: int = 2
    max_capacity: int = 50
    cpu_high: float = 85.0
    cpu_low: float = 50.0
    ram_high: float = 70.0
    ram_low: float = 40.0
    period_s: float = 300.0
    evaluation_periods: int = 1
    cooldown_s: float = 300.0
    step: int = 1  # instances added/removed per action

    def __post_init__(self) -> None:
        if self.min_capacity < 1 or self.max_capacity < self.min_capacity:
            raise ValueError("invalid capacity bounds")
        if self.cpu_low >= self.cpu_high or self.ram_low >= self.ram_high:
            raise ValueError("low thresholds must be below high thresholds")
        if self.period_s <= 0 or self.cooldown_s < 0:
            raise ValueError("invalid timing parameters")
        if self.evaluation_periods < 1 or self.step < 1:
            raise ValueError("evaluation_periods and step must be >= 1")


@dataclass
class _PendingInstance:
    ready_at: float
    requested_at: float


class CloudWatchAutoScaler:
    """Stepped model: the harness calls :meth:`observe` on its control
    cadence; the scaler evaluates alarms on its own period grid."""

    name = "cloudwatch"

    def __init__(self, config: CloudWatchConfig, provisioner: Provisioner):
        self.config = config
        self.provisioner = provisioner
        self._serving = config.min_capacity
        self._pending: list[_PendingInstance] = []
        self._last_eval = 0.0
        self._cooldown_until = 0.0
        self._high_breaches = 0
        self._low_breaches = 0
        self._provisioning: list[tuple[float, float]] = []

    # -- harness interface -----------------------------------------------------

    def capacity(self) -> int:
        """Instances currently *serving* (booted)."""
        return self._serving

    def provisioned(self) -> int:
        """Instances paid for, including booting ones."""
        return self._serving + len(self._pending)

    def observe(self, t: float, cpu_percent: float, ram_percent: float) -> None:
        """Feed one utilization observation at time ``t`` (seconds)."""
        self._mature_pending(t)
        if t - self._last_eval < self.config.period_s:
            return
        self._last_eval = t
        self._evaluate_alarms(t, cpu_percent, ram_percent)

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        """(request time, boot latency) for each instance launched."""
        return list(self._provisioning)

    # -- internals ---------------------------------------------------------------

    def _mature_pending(self, t: float) -> None:
        ready = [p for p in self._pending if p.ready_at <= t]
        if ready:
            self._pending = [p for p in self._pending if p.ready_at > t]
            self._serving += len(ready)

    def _evaluate_alarms(self, t: float, cpu: float, ram: float) -> None:
        cfg = self.config
        high = cpu > cfg.cpu_high or ram > cfg.ram_high
        low = cpu < cfg.cpu_low and ram < cfg.ram_low
        self._high_breaches = self._high_breaches + 1 if high else 0
        self._low_breaches = self._low_breaches + 1 if low else 0
        if t < self._cooldown_until:
            return
        if self._high_breaches >= cfg.evaluation_periods:
            self._scale_out(t)
            self._high_breaches = 0
            self._cooldown_until = t + cfg.cooldown_s
        elif self._low_breaches >= cfg.evaluation_periods:
            self._scale_in(t)
            self._low_breaches = 0
            self._cooldown_until = t + cfg.cooldown_s

    def _scale_out(self, t: float) -> None:
        cfg = self.config
        room = cfg.max_capacity - self.provisioned()
        launch = min(cfg.step, max(0, room))
        for _ in range(launch):
            boot = self.provisioner.sample_up_latency(0.0)
            self._pending.append(
                _PendingInstance(ready_at=t + boot, requested_at=t)
            )
            self._provisioning.append((t, boot))

    def _scale_in(self, t: float) -> None:
        cfg = self.config
        removable = self.provisioned() - cfg.min_capacity
        remove = min(cfg.step, max(0, removable))
        for _ in range(remove):
            # Terminate booting instances first (they serve nobody).
            if self._pending:
                self._pending.pop()
            else:
                self._serving -= 1
