"""The overprovisioning oracle (paper section 5.4).

"Knowing future workload patterns and provisioning enough resources to
meet its demands": the peak workload (point A or B) is known a priori,
the node count needed at the peak is determined offline, and that fixed
set of nodes is provisioned for the whole run.  Provisioning latency is
zero because nothing is ever provisioned at runtime; agility is dominated
by Excess everywhere except at the peak, where it touches zero.
"""

from __future__ import annotations


class OverprovisioningDeployment:
    """Fixed capacity sized for the peak."""

    name = "overprovisioning"

    def __init__(self, peak_capacity: int) -> None:
        if peak_capacity < 1:
            raise ValueError(f"capacity must be >= 1: {peak_capacity}")
        self.peak_capacity = peak_capacity

    def capacity(self) -> int:
        return self.peak_capacity

    def observe(self, t: float, cpu_percent: float, ram_percent: float) -> None:
        """The oracle never reacts to observations."""

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        """Provisioning latency is zero for the overprovisioning scenario
        — resources are always ready (Figure 8)."""
        return []
