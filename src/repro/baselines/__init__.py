"""Comparison deployments (paper section 5.4).

The evaluation compares the ElasticRMI implementation of each application
against:

- **Overprovisioning** — the "oracle": the peak workload is known a
  priori, and a fixed set of nodes large enough for the peak is always
  provisioned.  Provisioning latency is zero by construction; excess
  capacity is maximal away from the peak.
- **Amazon CloudWatch + AutoScaling** — a monitoring service collects
  CPU/memory utilization and threshold conditions add/remove *VM
  instances*, whose provisioning takes minutes and which are subject to a
  scaling cooldown.
- **ElasticRMI-CPUMem** — the ElasticRMI runtime restricted to the same
  CPU/memory conditions CloudWatch uses (no application-level
  properties).  Built by configuring the real runtime with a
  coarse-grained class; see :mod:`repro.experiments.deployments`.
"""

from repro.baselines.overprovision import OverprovisioningDeployment
from repro.baselines.cloudwatch import CloudWatchAutoScaler, CloudWatchConfig

__all__ = [
    "CloudWatchAutoScaler",
    "CloudWatchConfig",
    "OverprovisioningDeployment",
]
