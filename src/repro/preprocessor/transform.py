"""Source-to-source transformation: the Figure 6 rewrite, as text.

Takes Python source written in the paper's *pre-preprocessing* style —
an ``ElasticObject`` subclass with bare class-level fields and
``# synchronized`` marker comments — and emits the post-preprocessing
form: fields become :func:`elastic_field` declarations (store key
``Class$field``), marked methods gain the ``@synchronized`` decorator,
and the needed imports are inserted.

Example (the paper's C1)::

    class C1(ElasticObject):        class C1(ElasticObject):
        x = 0                  ->       x = elastic_field(default=0)
        z = 0                           z = elastic_field(default=0)

        # synchronized                  @synchronized
        def bar(self): ...              def bar(self): ...

Only class bodies of ``ElasticObject`` subclasses are touched; constants
(UPPER_CASE names), dunders, and existing ``elastic_field`` declarations
pass through unchanged.
"""

from __future__ import annotations

import ast


class _ElasticClassTransformer(ast.NodeTransformer):
    """Rewrites elastic class bodies; tracks whether anything changed."""

    def __init__(self) -> None:
        self.transformed_fields = 0
        self.transformed_methods = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.ClassDef:
        self.generic_visit(node)
        if not _extends_elastic_object(node):
            return node
        new_body: list[ast.stmt] = []
        for stmt in node.body:
            new_body.append(self._rewrite_statement(stmt))
        node.body = new_body
        return node

    def _rewrite_statement(self, stmt: ast.stmt) -> ast.stmt:
        # Bare class-level field: `x = <literal>` -> elastic_field(...)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and not target.id.startswith("_")
                and not target.id.isupper()
                and not _is_elastic_field_call(stmt.value)
            ):
                self.transformed_fields += 1
                replacement = ast.Assign(
                    targets=[target],
                    value=ast.Call(
                        func=ast.Name(id="elastic_field", ctx=ast.Load()),
                        args=[],
                        keywords=[ast.keyword(arg="default", value=stmt.value)],
                    ),
                )
                return ast.copy_location(replacement, stmt)
        # Annotated field: `x: int = 0` -> same treatment.
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
            and not stmt.target.id.startswith("_")
            and not stmt.target.id.isupper()
            and not _is_elastic_field_call(stmt.value)
        ):
            self.transformed_fields += 1
            replacement = ast.Assign(
                targets=[ast.Name(id=stmt.target.id, ctx=ast.Store())],
                value=ast.Call(
                    func=ast.Name(id="elastic_field", ctx=ast.Load()),
                    args=[],
                    keywords=[ast.keyword(arg="default", value=stmt.value)],
                ),
            )
            return ast.copy_location(replacement, stmt)
        return stmt


def _extends_elastic_object(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
        if name in ("ElasticObject", "ThroughputScaledService"):
            return True
    return False


def _is_elastic_field_call(value: ast.expr) -> bool:
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "elastic_field"
    )


def _apply_synchronized_markers(source: str) -> tuple[str, int]:
    """Replace ``# synchronized`` marker comments (on their own line,
    immediately before a def) with the decorator."""
    lines = source.split("\n")
    out: list[str] = []
    count = 0
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped == "# synchronized":
            nxt = lines[i + 1].lstrip() if i + 1 < len(lines) else ""
            if nxt.startswith(("def ", "async def ")):
                indent = line[: len(line) - len(line.lstrip())]
                out.append(f"{indent}@synchronized")
                count += 1
                continue
        out.append(line)
    return "\n".join(out), count


_IMPORT_LINE = "from repro.core.fields import elastic_field, synchronized"


def transform_source(source: str) -> str:
    """Apply the preprocessor rewrite to ``source`` and return the
    transformed module text.

    Raises :class:`SyntaxError` on unparsable input.  Idempotent:
    transforming already-transformed source is a no-op (modulo
    formatting).  Like any AST round-trip, comments other than the
    ``# synchronized`` markers are not preserved; docstrings are.
    """
    marked, sync_count = _apply_synchronized_markers(source)
    tree = ast.parse(marked)
    transformer = _ElasticClassTransformer()
    tree = transformer.visit(tree)
    ast.fix_missing_locations(tree)
    result = ast.unparse(tree)
    needs_import = (
        transformer.transformed_fields > 0 or sync_count > 0
    ) and _IMPORT_LINE not in result
    if needs_import:
        lines = result.split("\n")
        insert_at = 0
        for i, line in enumerate(lines):
            if line.startswith(("import ", "from ")):
                insert_at = i + 1
        lines.insert(insert_at, _IMPORT_LINE)
        result = "\n".join(lines)
    return result
