"""Static analysis of elastic classes.

``analyze(cls)`` inspects an :class:`ElasticObject` subclass the way the
paper's preprocessor inspects an elastic Java class before emitting
stubs and skeletons, and reports:

- the **remote surface**: public methods a stub can invoke;
- the **shared fields**: :func:`elastic_field` descriptors and their
  store keys;
- **synchronized methods** and the per-class lock they serialize on;
- the **scaling mechanism** the runtime will select;
- **findings** — errors and warnings, e.g. mutable class attributes that
  look like state but silently bypass the shared store (each member
  would get its own copy, the exact bug the preprocessor's rewrite
  exists to prevent).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.core.api import ElasticObject
from repro.core.fields import elastic_field, is_synchronized
from repro.core.scaling import select_policy


class AnalysisError(Exception):
    """The class cannot be deployed as an elastic pool."""


@dataclass(frozen=True)
class Finding:
    """One analysis diagnostic."""

    level: str   # "error" | "warning" | "info"
    code: str    # short machine-readable id
    message: str


@dataclass
class ClassReport:
    """Everything the preprocessor learned about one elastic class."""

    class_name: str
    remote_methods: list[str] = field(default_factory=list)
    shared_fields: dict[str, str] = field(default_factory=dict)  # name -> key
    synchronized_methods: list[str] = field(default_factory=list)
    scaling_mechanism: str = "implicit"
    lock_name: str = ""
    findings: list[Finding] = field(default_factory=list)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "error"]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.level == "warning"]

    def ok(self) -> bool:
        return not self.errors()

    def summary(self) -> str:
        lines = [
            f"elastic class {self.class_name}",
            f"  scaling: {self.scaling_mechanism}"
            + (f" (lock {self.lock_name!r})" if self.synchronized_methods else ""),
            f"  remote methods: {', '.join(self.remote_methods) or '(none)'}",
        ]
        if self.shared_fields:
            fields_desc = ", ".join(
                f"{name} -> {key}" for name, key in self.shared_fields.items()
            )
            lines.append(f"  shared fields: {fields_desc}")
        if self.synchronized_methods:
            lines.append(
                f"  synchronized: {', '.join(self.synchronized_methods)}"
            )
        for finding in self.findings:
            lines.append(f"  [{finding.level}] {finding.code}: {finding.message}")
        return "\n".join(lines)


def _framework_methods(cls: type) -> frozenset[str]:
    """Names inherited from framework bases (ElasticObject, the
    throughput-scaling mixin, ...) — part of the ElasticRMI API, not the
    application's remote surface, even when the application overrides
    them (e.g. ``scaling_guard``)."""
    names: set[str] = set()
    for base in cls.__mro__[1:]:
        module = getattr(base, "__module__", "")
        if module.startswith("repro.core") or module == "repro.apps.common":
            names.update(n for n in vars(base) if not n.startswith("_"))
    return frozenset(names)

#: Immutable builtin types that are safe as class-level constants.
_SAFE_CONSTANT_TYPES = (int, float, str, bytes, bool, frozenset, tuple, type(None))


def analyze(cls: type, strict: bool = False) -> ClassReport:
    """Inspect an elastic class and return its :class:`ClassReport`.

    With ``strict=True``, any error-level finding raises
    :class:`AnalysisError` (the preprocessor refusing to emit code).
    """
    report = ClassReport(class_name=cls.__name__, lock_name=cls.__name__)
    if not (isinstance(cls, type) and issubclass(cls, ElasticObject)):
        report.findings.append(
            Finding(
                "error",
                "not-elastic",
                f"{cls.__name__} does not extend ElasticObject",
            )
        )
        if strict:
            raise AnalysisError(report.findings[-1].message)
        return report

    _collect_surface(cls, report)
    _check_configuration(cls, report)
    _check_class_attributes(cls, report)

    if strict and not report.ok():
        raise AnalysisError(
            "; ".join(f.message for f in report.errors())
        )
    return report


def _collect_surface(cls: type, report: ClassReport) -> None:
    declared = getattr(cls, "__elastic_interface__", None)
    framework = _framework_methods(cls)
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        descriptor = inspect.getattr_static(cls, name)
        if isinstance(descriptor, elastic_field):
            report.shared_fields[name] = descriptor.store_key
            continue
        if not callable(member):
            continue
        if name in framework:
            continue
        if inspect.isfunction(descriptor) or inspect.ismethod(member):
            if is_synchronized(member):
                report.synchronized_methods.append(name)
            if declared is None or name in declared:
                report.remote_methods.append(name)
    if declared is not None:
        missing = sorted(set(declared) - set(report.remote_methods))
        for name in missing:
            report.findings.append(
                Finding(
                    "error",
                    "interface-method-missing",
                    f"elastic interface declares {name!r} but the class "
                    "does not define it",
                )
            )
    if not report.remote_methods:
        report.findings.append(
            Finding(
                "warning",
                "no-remote-methods",
                "class declares no remotely invocable methods",
            )
        )


def _check_configuration(cls: type, report: ClassReport) -> None:
    try:
        prototype = cls()
    except TypeError:
        report.findings.append(
            Finding(
                "info",
                "constructor-args",
                "constructor requires arguments; configuration checked "
                "at deployment instead",
            )
        )
        config = None
    except Exception as exc:  # constructor itself is broken
        report.findings.append(
            Finding(
                "error",
                "constructor-raises",
                f"constructor raised {type(exc).__name__}: {exc}",
            )
        )
        config = None
    else:
        config = prototype._ermi_config
    if config is not None:
        try:
            config.validate()
        except Exception as exc:
            report.findings.append(
                Finding("error", "bad-configuration", str(exc))
            )
        if cls.overrides_change_pool_size() and config.explicit_thresholds:
            # Unreachable through the setters (they raise), but a class
            # can assign the config directly; catch it here too.
            report.findings.append(
                Finding(
                    "error",
                    "dual-decision-mechanism",
                    "class both overrides change_pool_size() and sets "
                    "CPU/RAM thresholds; ElasticRMI allows a single "
                    "decision mechanism",
                )
            )
    report.scaling_mechanism = select_policy(
        cls, config if config is not None else _default_config(), None
    ).name


def _default_config():
    from repro.core.api import ElasticConfig

    return ElasticConfig()


def _check_class_attributes(cls: type, report: ClassReport) -> None:
    """Mutable class attributes look like shared state but are not —
    every member gets its own process-local copy, which is precisely the
    inconsistency the store rewrite prevents (Figure 6)."""
    for name, value in vars(cls).items():
        if name.startswith("_") or callable(value):
            continue
        if isinstance(value, (elastic_field, property, staticmethod, classmethod)):
            continue
        if isinstance(value, _SAFE_CONSTANT_TYPES):
            if name.isupper():
                continue  # conventional constant
            report.findings.append(
                Finding(
                    "info",
                    "class-constant",
                    f"class attribute {name!r} is treated as a constant; "
                    "use elastic_field() if members must share updates "
                    "to it",
                )
            )
        else:
            report.findings.append(
                Finding(
                    "warning",
                    "mutable-class-state",
                    f"mutable class attribute {name!r} "
                    f"({type(value).__name__}) is NOT shared through the "
                    "store; each pool member sees its own copy — declare "
                    "it with elastic_field() if it is state",
                )
            )
