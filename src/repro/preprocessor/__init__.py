"""The ElasticRMI preprocessor (paper sections 2.3, 3.1, 4.1).

The paper's implementation ships an ``rmic``-like preprocessor that
(1) generates stubs and skeletons, (2) rewrites reads/writes of instance
and static fields into ``get``/``put`` calls on the shared store, and
(3) rewrites ``synchronized`` methods into lock/unlock pairs, converting
ElasticRMI programs into plain Java compilable by ``javac``.

In Python, stubs/skeletons are generated at runtime and the Figure 6
field transformation is done by descriptors — but the preprocessor still
has two jobs worth doing ahead of time, and this package does both:

- :func:`analyze` — static validation of an elastic class: configuration
  sanity, the single-decision-mechanism rule, shared-state hygiene
  (mutable class attributes that silently bypass the store), and an
  inventory of the remote surface.  The report is what the paper's
  preprocessor would print before emitting code.
- :func:`transform_source` — source-to-source transformation of a plain
  class in the paper's Java style (bare class-level fields, a
  ``# synchronized`` marker comment) into ElasticRMI Python (fields
  become :func:`elastic_field`, marked methods gain ``@synchronized``) —
  the exact Figure 6 rewrite, as text.
"""

from repro.preprocessor.analyzer import (
    AnalysisError,
    ClassReport,
    Finding,
    analyze,
)
from repro.preprocessor.transform import transform_source

__all__ = [
    "AnalysisError",
    "ClassReport",
    "Finding",
    "analyze",
    "transform_source",
]
