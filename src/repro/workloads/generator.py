"""Open-loop arrival generation from a workload pattern.

Live-mode examples and application benchmarks need discrete arrivals, not
just a rate function.  :class:`ArrivalGenerator` produces deterministic
Poisson arrival times that follow a (possibly time-varying) pattern by
thinning, plus a simple batch interface ("how many operations arrive in
this window?") that the simulation experiments use.
"""

from __future__ import annotations

import math
import random

from repro.workloads.patterns import WorkloadPattern


class ArrivalGenerator:
    """Arrivals following ``pattern``, deterministic for a given rng."""

    def __init__(self, pattern: WorkloadPattern, rng: random.Random) -> None:
        self.pattern = pattern
        self._rng = rng

    def peak_rate(self, resolution_s: float = 60.0) -> float:
        """Upper bound of the pattern's rate, scanned at ``resolution_s``."""
        steps = int(self.pattern.duration_s / resolution_s) + 1
        return max(
            self.pattern.rate(i * resolution_s) for i in range(steps)
        )

    def arrivals_between(self, start: float, end: float) -> int:
        """Number of arrivals in [start, end): Poisson with the integral
        of the rate (trapezoidal approximation)."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        if end == start:
            return 0
        mean = (self.pattern.rate(start) + self.pattern.rate(end)) / 2.0
        lam = mean * (end - start)
        return self._poisson(lam)

    def arrival_times(self, start: float, end: float) -> list[float]:
        """Exact arrival instants in [start, end) via thinning."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        peak = self.peak_rate()
        if peak <= 0:
            return []
        times = []
        t = start
        while True:
            t += self._rng.expovariate(peak)
            if t >= end:
                break
            if self._rng.random() <= self.pattern.rate(t) / peak:
                times.append(t)
        return times

    def _poisson(self, lam: float) -> int:
        """Poisson sample; normal approximation above 1e3 for speed."""
        if lam <= 0:
            return 0
        if lam > 1000.0:
            return max(0, int(round(self._rng.gauss(lam, math.sqrt(lam)))))
        # Knuth's algorithm.
        limit = math.exp(-lam)
        count, product = 0, self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count
