"""Open-loop arrival generation from a workload pattern.

Live-mode examples and application benchmarks need discrete arrivals, not
just a rate function.  :class:`ArrivalGenerator` produces deterministic
Poisson arrival times that follow a (possibly time-varying) pattern by
thinning, plus a simple batch interface ("how many operations arrive in
this window?") that the simulation experiments use.
"""

from __future__ import annotations

import math
import random

from repro.workloads.patterns import WorkloadPattern, integrate_rate


class ArrivalGenerator:
    """Arrivals following ``pattern``, deterministic for a given rng."""

    def __init__(self, pattern: WorkloadPattern, rng: random.Random) -> None:
        self.pattern = pattern
        self._rng = rng

    def peak_rate(self, resolution_s: float = 60.0) -> float:
        """Upper bound of the pattern's rate, scanned at ``resolution_s``."""
        steps = int(self.pattern.duration_s / resolution_s) + 1
        return max(
            self.pattern.rate(i * resolution_s) for i in range(steps)
        )

    def arrivals_between(
        self, start: float, end: float, max_step_s: float = 1.0
    ) -> int:
        """Number of arrivals in [start, end): Poisson with the pattern's
        rate integral, accumulated at sub-step resolution (``max_step_s``)
        so that a burst strictly inside the window is counted.  A
        two-endpoint trapezoid sampled only at ``start`` and ``end``
        would miss it entirely."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        if end == start:
            return 0
        lam = integrate_rate(self.pattern, start, end, max_step_s=max_step_s)
        return self._poisson(lam)

    def arrival_times(
        self, start: float, end: float, peak: float | None = None
    ) -> list[float]:
        """Exact arrival instants in [start, end) via thinning.

        ``peak`` may supply a precomputed upper bound on the rate (callers
        generating window-by-window pass it to avoid rescanning the
        pattern; it must dominate the rate over [start, end))."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        if peak is None:
            peak = self.peak_rate()
        if peak <= 0:
            return []
        times = []
        t = start
        while True:
            t += self._rng.expovariate(peak)
            if t >= end:
                break
            if self._rng.random() <= self.pattern.rate(t) / peak:
                times.append(t)
        return times

    def _poisson(self, lam: float) -> int:
        """Poisson sample; normal approximation above 500 for speed.

        The crossover must stay below ~745: beyond that ``exp(-lam)``
        underflows to 0.0 and Knuth's product loop terminates on float
        underflow (at ~745 multiplications) instead of the true mean,
        silently undercounting arrivals for large windows.
        """
        if lam <= 0:
            return 0
        if lam > 500.0:
            return max(0, int(round(self._rng.gauss(lam, math.sqrt(lam)))))
        # Knuth's algorithm.
        limit = math.exp(-lam)
        count, product = 0, self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count
