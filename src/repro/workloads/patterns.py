"""The two workload patterns of Figures 7a and 7b.

Patterns map elapsed time (seconds) to an offered rate (operations per
second).  The abrupt pattern is piecewise linear with both gradual ramps
and step discontinuities; the cyclic pattern repeats three identical
cycles.  Magnitudes are normalized: a pattern is built from a *shape* in
[0, 1] scaled by the application's point A (or B) rate.
"""

from __future__ import annotations

import math
from typing import Protocol

#: Point A per application (paper section 5.3).
POINT_A: dict[str, float] = {
    "marketcetera": 50_000.0,  # orders/s
    "dcs": 75_000.0,           # updates/s
    "paxos": 24_000.0,         # consensus rounds/s
    "hedwig": 30_000.0,        # messages/s
}


def point_b(app: str) -> float:
    """Point B is set 20% above point A (paper section 5.3)."""
    return POINT_A[app] * 1.2


class WorkloadPattern(Protocol):
    """A deterministic offered-load trace."""

    duration_s: float

    def rate(self, t: float) -> float:
        """Offered operations per second at elapsed time ``t`` seconds."""
        ...


class PiecewiseLinearPattern:
    """Linear interpolation through (minute, fraction) control points,
    scaled by ``magnitude``.  Repeated x-values produce step changes."""

    def __init__(
        self, points: list[tuple[float, float]], magnitude: float
    ) -> None:
        if len(points) < 2:
            raise ValueError("need at least two control points")
        minutes = [p[0] for p in points]
        if minutes != sorted(minutes):
            raise ValueError("control points must be time-ordered")
        if any(not 0.0 <= p[1] for p in points):
            raise ValueError("fractions must be non-negative")
        if magnitude <= 0:
            raise ValueError(f"magnitude must be positive: {magnitude}")
        self.points = [(m * 60.0, f) for m, f in points]
        self.magnitude = magnitude
        self.duration_s = self.points[-1][0]

    def rate(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1] * self.magnitude
        if t >= points[-1][0]:
            return points[-1][1] * self.magnitude
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= t <= x1:
                if x1 == x0:  # step discontinuity: take the later value
                    continue
                frac = y0 + (y1 - y0) * (t - x0) / (x1 - x0)
                return frac * self.magnitude
        return points[-1][1] * self.magnitude


#: Shape of the abrupt pattern (Figure 7a), as (minute, fraction-of-A)
#: control points.  It contains every scenario the paper lists: a gradual
#: non-cyclic increase (0-150 min), a rapid increase to the peak A
#: (200-205 min), a rapid decrease (250-255 min), a second spike
#: (300-305 min), and a gradual decrease to the end of the trace.
ABRUPT_SHAPE: list[tuple[float, float]] = [
    (0, 0.10),
    (60, 0.20),
    (120, 0.40),
    (150, 0.55),    # gradual increase
    (200, 0.55),
    (205, 1.00),    # abrupt increase to point A
    (250, 1.00),
    (255, 0.25),    # abrupt decrease
    (300, 0.25),
    (305, 0.80),    # second abrupt increase
    (340, 0.80),
    (345, 0.35),    # abrupt decrease
    (450, 0.10),    # gradual decrease to the baseline
]


class AbruptPattern(PiecewiseLinearPattern):
    """Figure 7a: the 450-minute abruptly changing workload."""

    def __init__(self, point_a: float) -> None:
        super().__init__(ABRUPT_SHAPE, magnitude=point_a)


class CyclicPattern:
    """Figure 7b: three identical cycles over 500 minutes, peaking at
    point B.  Each cycle is a raised cosine between ``base_fraction`` and
    1.0 of the magnitude."""

    def __init__(
        self,
        point_b: float,
        cycles: int = 3,
        duration_min: float = 500.0,
        base_fraction: float = 0.30,
    ) -> None:
        if point_b <= 0:
            raise ValueError(f"magnitude must be positive: {point_b}")
        if not 0.0 <= base_fraction < 1.0:
            raise ValueError(f"base fraction must be in [0, 1): {base_fraction}")
        if cycles < 1:
            raise ValueError(f"need at least one cycle: {cycles}")
        self.magnitude = point_b
        self.cycles = cycles
        self.duration_s = duration_min * 60.0
        self.base_fraction = base_fraction

    def rate(self, t: float) -> float:
        t = min(max(t, 0.0), self.duration_s)
        phase = 2.0 * math.pi * self.cycles * t / self.duration_s
        swing = (1.0 - math.cos(phase)) / 2.0  # 0 at cycle start, 1 at peak
        fraction = self.base_fraction + (1.0 - self.base_fraction) * swing
        return fraction * self.magnitude


def abrupt_for(app: str) -> AbruptPattern:
    """The abrupt pattern at the application's point A magnitude."""
    return AbruptPattern(POINT_A[app])


def cyclic_for(app: str) -> CyclicPattern:
    """The cyclic pattern at the application's point B magnitude."""
    return CyclicPattern(point_b(app))
