"""The two workload patterns of Figures 7a and 7b.

Patterns map elapsed time (seconds) to an offered rate (operations per
second).  The abrupt pattern is piecewise linear with both gradual ramps
and step discontinuities; the cyclic pattern repeats three identical
cycles.  Magnitudes are normalized: a pattern is built from a *shape* in
[0, 1] scaled by the application's point A (or B) rate.
"""

from __future__ import annotations

import math
from typing import Protocol

#: Point A per application (paper section 5.3).
POINT_A: dict[str, float] = {
    "marketcetera": 50_000.0,  # orders/s
    "dcs": 75_000.0,           # updates/s
    "paxos": 24_000.0,         # consensus rounds/s
    "hedwig": 30_000.0,        # messages/s
}


def point_b(app: str) -> float:
    """Point B is set 20% above point A (paper section 5.3)."""
    return POINT_A[app] * 1.2


class WorkloadPattern(Protocol):
    """A deterministic offered-load trace."""

    duration_s: float

    def rate(self, t: float) -> float:
        """Offered operations per second at elapsed time ``t`` seconds."""
        ...


class PiecewiseLinearPattern:
    """Linear interpolation through (minute, fraction) control points,
    scaled by ``magnitude``.  Repeated x-values produce step changes."""

    def __init__(
        self, points: list[tuple[float, float]], magnitude: float
    ) -> None:
        if len(points) < 2:
            raise ValueError("need at least two control points")
        minutes = [p[0] for p in points]
        if minutes != sorted(minutes):
            raise ValueError("control points must be time-ordered")
        if any(not 0.0 <= p[1] for p in points):
            raise ValueError("fractions must be non-negative")
        if magnitude <= 0:
            raise ValueError(f"magnitude must be positive: {magnitude}")
        self.points = [(m * 60.0, f) for m, f in points]
        self.magnitude = magnitude
        self.duration_s = self.points[-1][0]

    def rate(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1] * self.magnitude
        if t >= points[-1][0]:
            return points[-1][1] * self.magnitude
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= t <= x1:
                if x1 == x0:  # step discontinuity: take the later value
                    continue
                frac = y0 + (y1 - y0) * (t - x0) / (x1 - x0)
                return frac * self.magnitude
        return points[-1][1] * self.magnitude


#: Shape of the abrupt pattern (Figure 7a), as (minute, fraction-of-A)
#: control points.  It contains every scenario the paper lists: a gradual
#: non-cyclic increase (0-150 min), a rapid increase to the peak A
#: (200-205 min), a rapid decrease (250-255 min), a second spike
#: (300-305 min), and a gradual decrease to the end of the trace.
ABRUPT_SHAPE: list[tuple[float, float]] = [
    (0, 0.10),
    (60, 0.20),
    (120, 0.40),
    (150, 0.55),    # gradual increase
    (200, 0.55),
    (205, 1.00),    # abrupt increase to point A
    (250, 1.00),
    (255, 0.25),    # abrupt decrease
    (300, 0.25),
    (305, 0.80),    # second abrupt increase
    (340, 0.80),
    (345, 0.35),    # abrupt decrease
    (450, 0.10),    # gradual decrease to the baseline
]


class AbruptPattern(PiecewiseLinearPattern):
    """Figure 7a: the 450-minute abruptly changing workload."""

    def __init__(self, point_a: float) -> None:
        super().__init__(ABRUPT_SHAPE, magnitude=point_a)


class CyclicPattern:
    """Figure 7b: three identical cycles over 500 minutes, peaking at
    point B.  Each cycle is a raised cosine between ``base_fraction`` and
    1.0 of the magnitude."""

    def __init__(
        self,
        point_b: float,
        cycles: int = 3,
        duration_min: float = 500.0,
        base_fraction: float = 0.30,
    ) -> None:
        if point_b <= 0:
            raise ValueError(f"magnitude must be positive: {point_b}")
        if not 0.0 <= base_fraction < 1.0:
            raise ValueError(f"base fraction must be in [0, 1): {base_fraction}")
        if cycles < 1:
            raise ValueError(f"need at least one cycle: {cycles}")
        self.magnitude = point_b
        self.cycles = cycles
        self.duration_s = duration_min * 60.0
        self.base_fraction = base_fraction

    def rate(self, t: float) -> float:
        t = min(max(t, 0.0), self.duration_s)
        phase = 2.0 * math.pi * self.cycles * t / self.duration_s
        swing = (1.0 - math.cos(phase)) / 2.0  # 0 at cycle start, 1 at peak
        fraction = self.base_fraction + (1.0 - self.base_fraction) * swing
        return fraction * self.magnitude


class ConstantPattern:
    """A flat offered rate for ``duration_s`` seconds."""

    def __init__(self, rate: float, duration_s: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be non-negative: {rate}")
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        self._rate = float(rate)
        self.duration_s = float(duration_s)

    def rate(self, t: float) -> float:
        return self._rate


class FlashCrowdPattern(PiecewiseLinearPattern):
    """A steady base rate with one sharp spike strictly inside the trace.

    The spike ramps from ``base_rate`` to ``spike_rate`` over ``ramp_s``
    seconds, holds for ``spike_duration_s``, and ramps back down.  This is
    the canonical pattern that a two-endpoint trapezoidal integral gets
    wrong: sampled only at a window's edges, the spike is invisible.
    """

    def __init__(
        self,
        base_rate: float,
        spike_rate: float,
        spike_start_s: float,
        spike_duration_s: float,
        duration_s: float,
        ramp_s: float = 2.0,
    ) -> None:
        if spike_rate <= base_rate:
            raise ValueError("spike rate must exceed the base rate")
        if ramp_s <= 0:
            raise ValueError(f"ramp must be positive: {ramp_s}")
        if spike_start_s - ramp_s < 0:
            raise ValueError("spike ramp starts before the trace")
        if spike_start_s + spike_duration_s + ramp_s > duration_s:
            raise ValueError("spike must end strictly inside the trace")
        base = base_rate / spike_rate
        to_min = 1.0 / 60.0
        points = [
            (0.0, base),
            ((spike_start_s - ramp_s) * to_min, base),
            (spike_start_s * to_min, 1.0),
            ((spike_start_s + spike_duration_s) * to_min, 1.0),
            ((spike_start_s + spike_duration_s + ramp_s) * to_min, base),
            (duration_s * to_min, base),
        ]
        super().__init__(points, magnitude=spike_rate)


class ScaledPattern:
    """``factor`` × another pattern's rate, over the same duration."""

    def __init__(self, inner: WorkloadPattern, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor}")
        self.inner = inner
        self.factor = float(factor)
        self.duration_s = inner.duration_s

    def rate(self, t: float) -> float:
        return self.inner.rate(t) * self.factor


class CompressedPattern:
    """Another pattern played back ``compress`` × faster (same rates,
    shorter duration).  Live scenario runs use this to replay a long
    virtual-time trace in a few wall-clock seconds."""

    def __init__(self, inner: WorkloadPattern, compress: float) -> None:
        if compress <= 0:
            raise ValueError(f"compression must be positive: {compress}")
        self.inner = inner
        self.compress = float(compress)
        self.duration_s = inner.duration_s / compress

    def rate(self, t: float) -> float:
        return self.inner.rate(t * self.compress)


def integrate_rate(
    pattern: WorkloadPattern,
    start: float,
    end: float,
    max_step_s: float = 1.0,
    max_steps: int = 4096,
) -> float:
    """Trapezoidal integral of ``pattern.rate`` over [start, end] at a
    bounded sub-step resolution.

    Steps are at most ``max_step_s`` wide so a burst strictly inside the
    window contributes; ``max_steps`` bounds the work for very wide
    windows (the step widens past ``max_step_s`` rather than looping
    without bound).
    """
    if end < start:
        raise ValueError(f"end {end} before start {start}")
    span = end - start
    if span == 0:
        return 0.0
    steps = min(max_steps, max(1, math.ceil(span / max_step_s)))
    step = span / steps
    total = (pattern.rate(start) + pattern.rate(end)) / 2.0
    for i in range(1, steps):
        total += pattern.rate(start + i * step)
    return total * step


def abrupt_for(app: str) -> AbruptPattern:
    """The abrupt pattern at the application's point A magnitude."""
    return AbruptPattern(POINT_A[app])


def cyclic_for(app: str) -> CyclicPattern:
    """The cyclic pattern at the application's point B magnitude."""
    return CyclicPattern(point_b(app))
