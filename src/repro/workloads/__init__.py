"""Workload patterns and generators (paper section 5.3, Figures 7a-7b).

Two patterns drive every evaluation experiment:

- the **abrupt** pattern (Figure 7a) — gradual non-cyclic increase,
  gradual decrease, rapid increases and a rapid decrease over a 450-minute
  trace, exercising every abrupt-change scenario the authors observed;
- the **cyclic** pattern (Figure 7b) — three identical cycles over 500
  minutes.

The *shape* is shared by all four applications; the *magnitude* differs:
point A (the abrupt pattern's peak) is 50,000 orders/s for Marketcetera,
75,000 updates/s for DCS, 24,000 rounds/s for Paxos and 30,000 msgs/s for
Hedwig, and point B (the cyclic peak) is 20% above A.
"""

from repro.workloads.patterns import (
    POINT_A,
    AbruptPattern,
    CompressedPattern,
    ConstantPattern,
    CyclicPattern,
    FlashCrowdPattern,
    PiecewiseLinearPattern,
    ScaledPattern,
    WorkloadPattern,
    abrupt_for,
    cyclic_for,
    integrate_rate,
    point_b,
)
from repro.workloads.generator import ArrivalGenerator
from repro.workloads.replay import ReplayDriver

__all__ = [
    "AbruptPattern",
    "ArrivalGenerator",
    "ReplayDriver",
    "CompressedPattern",
    "ConstantPattern",
    "CyclicPattern",
    "FlashCrowdPattern",
    "POINT_A",
    "PiecewiseLinearPattern",
    "ScaledPattern",
    "WorkloadPattern",
    "abrupt_for",
    "cyclic_for",
    "integrate_rate",
    "point_b",
]
