"""Trace replay: drive real invocations through a pool from a pattern.

The elasticity experiments model load analytically; :class:`ReplayDriver`
does the opposite — it turns a workload pattern into *actual remote
method invocations* against a pool, scaled down to something a test or
demo can execute, so the entire stack (stub balancing, skeletons, method
statistics, fine-grained votes, provisioning) runs off genuinely
measured traffic.

Scaling knobs map the paper's hours/kilohertz traces onto seconds/hertz:

- ``time_scale`` — trace seconds per simulated second (600 = a 450 min
  trace replayed over 45 s of virtual time);
- ``rate_scale`` — invocations issued per trace operation (1e-4 = one
  call per 10,000 ops).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Kernel
from repro.workloads.patterns import WorkloadPattern


class ReplayDriver:
    """Issues ``make_call(i)`` invocations following a pattern."""

    def __init__(
        self,
        kernel: Kernel,
        pattern: WorkloadPattern,
        make_call: Callable[[int], Any],
        time_scale: float = 600.0,
        rate_scale: float = 1e-4,
        step_s: float = 1.0,
    ) -> None:
        if time_scale <= 0 or rate_scale <= 0 or step_s <= 0:
            raise ValueError("scales and step must be positive")
        self.kernel = kernel
        self.pattern = pattern
        self.make_call = make_call
        self.time_scale = time_scale
        self.rate_scale = rate_scale
        self.step_s = step_s
        self.calls_issued = 0
        self.errors = 0
        self._carry = 0.0
        self._started = False
        self._start_at = 0.0

    @property
    def duration_s(self) -> float:
        """Replay duration in simulated seconds."""
        return self.pattern.duration_s / self.time_scale

    def start(self) -> None:
        """Begin issuing calls on the kernel (one-shot)."""
        if self._started:
            raise RuntimeError("replay already started")
        self._started = True
        self._start_at = self.kernel.clock.now()
        self.kernel.call_after(self.step_s, self._step)

    def _step(self) -> None:
        elapsed = self.kernel.clock.now() - self._start_at
        trace_t = elapsed * self.time_scale
        if trace_t > self.pattern.duration_s:
            return
        # Calls owed this step; fractional remainders carry over so thin
        # traffic is not rounded away.
        owed = (
            self.pattern.rate(trace_t)
            * self.rate_scale
            * self.step_s
            * self.time_scale
            + self._carry
        )
        count = int(owed)
        self._carry = owed - count
        for _ in range(count):
            try:
                self.make_call(self.calls_issued)
            except Exception:
                self.errors += 1
            self.calls_issued += 1
        self.kernel.call_after(self.step_s, self._step)
