"""QoS accounting: throughput and latency per observation window.

Performance/QoS in the paper is application-specific — "typically a
combination of throughput and latency" (section 5.1).  The tracker
accumulates completed operations and exposes windowed rates, mean/p99
latency, and a QoS predicate used to validate that ``Req_min`` estimates
actually meet the target during live runs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass


@dataclass(frozen=True)
class QoSTarget:
    """What 'meeting QoS' means for one application."""

    min_throughput: float        # ops/s the deployment must sustain
    max_mean_latency: float      # seconds
    max_p99_latency: float | None = None


class QoSTracker:
    """Sliding accumulation of operation completions."""

    def __init__(self) -> None:
        self._count = 0
        self._window_start: float | None = None
        self._window_end: float | None = None
        self._latencies: list[float] = []  # kept sorted for percentiles

    def record(self, at: float, latency: float) -> None:
        """Record one completed operation at time ``at``."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if self._window_start is None:
            self._window_start = at
        self._window_end = at
        self._count += 1
        bisect.insort(self._latencies, latency)

    @property
    def operations(self) -> int:
        return self._count

    def throughput(self) -> float:
        """Operations per second over the observed span."""
        if self._count == 0 or self._window_start is None:
            return 0.0
        span = (self._window_end or 0.0) - self._window_start
        if span <= 0:
            return float(self._count)
        return self._count / span

    def mean_latency(self) -> float:
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def percentile_latency(self, pct: float) -> float:
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100]: {pct}")
        if not self._latencies:
            return 0.0
        index = min(
            len(self._latencies) - 1,
            max(0, int(round(pct / 100.0 * len(self._latencies))) - 1),
        )
        return self._latencies[index]

    def meets(self, target: QoSTarget) -> bool:
        if self.throughput() < target.min_throughput:
            return False
        if self.mean_latency() > target.max_mean_latency:
            return False
        if (
            target.max_p99_latency is not None
            and self.percentile_latency(99) > target.max_p99_latency
        ):
            return False
        return True

    def reset(self) -> None:
        self._count = 0
        self._window_start = None
        self._window_end = None
        self._latencies.clear()
