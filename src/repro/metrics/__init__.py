"""Elasticity metrics (SPEC OSG report, paper section 5.1).

- :class:`AgilityTracker` — the SPEC *agility* metric: per-interval
  ``Excess`` and ``Shortage`` of provisioned capacity against the minimum
  capacity required to meet QoS, averaged over the measurement period.
- :mod:`repro.metrics.provisioning` — *provisioning interval*: time from
  initiating a resource request to the resource serving its first
  request (Figure 8).
- :class:`QoSTracker` — throughput/latency accounting used to derive
  ``Req_min`` in live measurements.
"""

from repro.metrics.agility import AgilitySample, AgilityTracker
from repro.metrics.provisioning import ProvisioningSeries
from repro.metrics.qos import QoSTarget, QoSTracker

__all__ = [
    "AgilitySample",
    "AgilityTracker",
    "ProvisioningSeries",
    "QoSTarget",
    "QoSTracker",
]
