"""The SPEC agility metric (paper section 5.1).

Over a measurement period divided into N sub-intervals::

    Agility = (1/N) * (sum_i Excess(i) + sum_i Shortage(i))

where, for sub-interval i,

- ``Req_min(i)`` is the minimum capacity needed to meet the application's
  QoS at the interval's workload level,
- ``Cap_prov(i)`` is the capacity actually provisioned,
- ``Excess(i) = max(0, Cap_prov(i) - Req_min(i))``,
- ``Shortage(i) = max(0, Req_min(i) - Cap_prov(i))``.

An ideal system scores zero: neither waste nor starvation.  The paper
plots the *per-interval* value (``Excess(i) + Shortage(i)``) over time
(Figure 7c-j) and reports the average; this tracker supports both views,
plus the weighted variant the SPEC report debates (unequal weights for
Shortage vs Excess).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AgilitySample:
    """One sub-interval's observation."""

    at: float          # sample time (seconds)
    cap_prov: float    # capacity provisioned (members / nodes)
    req_min: float     # minimum capacity to meet QoS

    @property
    def excess(self) -> float:
        return max(0.0, self.cap_prov - self.req_min)

    @property
    def shortage(self) -> float:
        return max(0.0, self.req_min - self.cap_prov)

    @property
    def agility(self) -> float:
        """Per-interval agility contribution (what Figure 7 plots)."""
        return self.excess + self.shortage


class AgilityTracker:
    """Accumulates samples and computes the SPEC aggregate."""

    def __init__(
        self, excess_weight: float = 1.0, shortage_weight: float = 1.0
    ) -> None:
        """Equal weights by default — the SPEC report notes the debate
        over unequal weighting but offers no agreed alternative."""
        if excess_weight < 0 or shortage_weight < 0:
            raise ValueError("weights must be non-negative")
        self.excess_weight = excess_weight
        self.shortage_weight = shortage_weight
        self.samples: list[AgilitySample] = []

    def record(self, at: float, cap_prov: float, req_min: float) -> AgilitySample:
        """Add one sub-interval observation."""
        if req_min < 0 or cap_prov < 0:
            raise ValueError(
                f"capacities cannot be negative: cap={cap_prov}, req={req_min}"
            )
        sample = AgilitySample(at=at, cap_prov=cap_prov, req_min=req_min)
        self.samples.append(sample)
        return sample

    # -- aggregates -----------------------------------------------------------

    def average_agility(self) -> float:
        """The SPEC aggregate: (1/N)(sum Excess + sum Shortage)."""
        if not self.samples:
            return 0.0
        total = sum(
            self.excess_weight * s.excess + self.shortage_weight * s.shortage
            for s in self.samples
        )
        return total / len(self.samples)

    def average_excess(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.excess for s in self.samples) / len(self.samples)

    def average_shortage(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.shortage for s in self.samples) / len(self.samples)

    def max_agility(self) -> float:
        return max((s.agility for s in self.samples), default=0.0)

    def zero_fraction(self) -> float:
        """Fraction of intervals with agility exactly 0 — the paper calls
        out how often ElasticRMI's agility returns to the ideal."""
        if not self.samples:
            return 0.0
        zeros = sum(1 for s in self.samples if s.agility == 0.0)
        return zeros / len(self.samples)

    def series(self) -> list[tuple[float, float]]:
        """(time, per-interval agility) pairs — the Figure 7 curves."""
        return [(s.at, s.agility) for s in self.samples]
