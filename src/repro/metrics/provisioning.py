"""Provisioning-interval accounting (paper section 5.6, Figure 8).

Provisioning interval: the time between initiating the request to bring
up a new resource and that resource serving its first request.  The pool
already records a :class:`~repro.core.pool.ProvisioningRecord` per member
start/drain; this module summarizes those records into the series and
statistics Figure 8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pool import ProvisioningRecord


@dataclass
class ProvisioningSeries:
    """Summarized provisioning latencies for one deployment run."""

    records: list[ProvisioningRecord]

    def up_events(self) -> list[ProvisioningRecord]:
        return [r for r in self.records if r.direction == "up"]

    def down_events(self) -> list[ProvisioningRecord]:
        return [r for r in self.records if r.direction == "down"]

    def series(self) -> list[tuple[float, float]]:
        """(request time, latency seconds) for every scale-up — the
        Figure 8 scatter/line."""
        return [(r.requested_at, r.latency) for r in self.up_events()]

    def max_latency(self) -> float:
        return max((r.latency for r in self.up_events()), default=0.0)

    def mean_latency(self) -> float:
        ups = self.up_events()
        if not ups:
            return 0.0
        return sum(r.latency for r in ups) / len(ups)

    def bucketed(self, bucket_s: float) -> list[tuple[float, float]]:
        """(bucket start, mean latency) per time bucket, for plotting a
        smoothed curve over a long run."""
        if bucket_s <= 0:
            raise ValueError(f"bucket must be positive: {bucket_s}")
        buckets: dict[int, list[float]] = {}
        for record in self.up_events():
            buckets.setdefault(int(record.requested_at // bucket_s), []).append(
                record.latency
            )
        return [
            (index * bucket_s, sum(vals) / len(vals))
            for index, vals in sorted(buckets.items())
        ]
