"""Shared routing primitives: stable hashing, the consistent-hash ring,
and the shard router.

Promoted out of ``repro.kvstore`` (which re-exports :class:`HashRing`
for compatibility) because PR 6 makes the ring a *routing* substrate,
not just a storage one: sharded elastic pools hash affinity keys over
their shard set with exactly the machinery the store uses to place
keys on partitions.  One implementation, two layers — a kvstore-backed
field and the invocation that reads it hash the same way, which is
what keeps field round-trips shard-local.

Two long-standing ring defects are fixed here:

- **removal cost** — ``remove_node`` rebuilt the whole sorted point
  list, O(vnodes·N) scans per removal.  The ring now remembers each
  node's points when they are placed and deletes exactly those entries
  by bisection, never touching (or allocating) the rest of the ring;
- **tie-breaking** — ``owner`` probed with a ``"￿"`` sentinel
  string, which silently mis-ordered against node names containing
  code points above U+FFFF (astral-plane names sorted *after* the
  sentinel).  Lookup now bisects with ``(hash, "")`` — the infimum of
  every possible point at that hash — so the successor choice depends
  only on tuple order: equal point hashes break deterministically
  toward the lexicographically smallest node name.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools


def stable_hash(value: str) -> int:
    """A process-independent 64-bit hash of ``value``.

    Routing decisions must agree across processes, restarts, and test
    runs; the builtin ``hash()`` is salted per process (PYTHONHASHSEED)
    and therefore must never decide placement.
    """
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


class HashRing:
    """Classic consistent hashing with virtual nodes.

    Virtual nodes (``vnodes`` points per physical node) smooth the
    distribution; when a node joins only the keys falling into its arcs
    move, which is what lets a runtime grow a store — or a sharded
    pool — without a full reshuffle.
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._ring: list[tuple[int, str]] = []  # sorted (hash, node)
        # Each node's own points, remembered at placement so removal
        # deletes exactly these entries instead of rebuilding the ring.
        self._points: dict[str, list[tuple[int, str]]] = {}

    @property
    def nodes(self) -> set[str]:
        return set(self._points)

    def add_node(self, node: str) -> None:
        """Place a node on the ring (``vnodes`` points)."""
        if node in self._points:
            raise ValueError(f"node already on ring: {node}")
        points = [
            (stable_hash(f"{node}#{i}"), node) for i in range(self.vnodes)
        ]
        self._points[node] = points
        for point in points:
            bisect.insort(self._ring, point)

    def remove_node(self, node: str) -> None:
        """Remove a node; its arcs fall to clockwise successors.

        Incremental: deletes the node's own ``vnodes`` points by
        bisection rather than filtering the whole ring.
        """
        points = self._points.pop(node, None)
        if points is None:
            raise ValueError(f"node not on ring: {node}")
        for point in points:
            idx = bisect.bisect_left(self._ring, point)
            # The point was inserted at add time, so it is present; two
            # vnode indices of one node may collide on the same hash, in
            # which case each deletion takes one of the equal entries.
            del self._ring[idx]

    def owner(self, key: str) -> str:
        """Node owning ``key``: first ring point clockwise of its hash.

        Ties (a key hashing exactly onto one or more points) resolve to
        the lexicographically smallest node name at that hash — pure
        tuple order, no sentinel string involved.
        """
        if not self._ring:
            raise RuntimeError("empty hash ring")
        h = stable_hash(key)
        # First point with hash >= h: ("" sorts below every node name).
        idx = bisect.bisect_left(self._ring, (h, ""))
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def __len__(self) -> int:
        return len(self._points)


class ShardRouter:
    """Key-affinity routing over a fixed shard set.

    A sharded elastic pool has a *static* shard count (each shard is
    independently elastic; membership churn happens inside shards, not
    to the shard set), so the key→shard map is stable by construction:
    growing or shrinking one shard never moves any key's route.  The
    ring — rather than ``hash % n`` — keeps the door open for dynamic
    shard counts later: adding a shard would move only the keys landing
    on its arcs.

    ``spread()`` supports keyless calls: a plain rotation over shard
    indices, so affinity-free traffic still fans out evenly.
    """

    def __init__(self, shard_names: list[str], vnodes: int = 64) -> None:
        if not shard_names:
            raise ValueError("shard router needs at least one shard")
        self.shard_names = list(shard_names)
        self._index = {name: i for i, name in enumerate(self.shard_names)}
        if len(self._index) != len(self.shard_names):
            raise ValueError(f"duplicate shard names: {shard_names}")
        self._ring = HashRing(vnodes=vnodes)
        for name in self.shard_names:
            self._ring.add_node(name)
        self._rr = itertools.count()

    @classmethod
    def for_pool(
        cls, pool_name: str, shards: int, vnodes: int = 64
    ) -> "ShardRouter":
        """The canonical router for ``pool_name`` split ``shards`` ways."""
        return cls(shard_names(pool_name, shards), vnodes=vnodes)

    @property
    def shards(self) -> int:
        return len(self.shard_names)

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key``; deterministic and total."""
        return self._index[self._ring.owner(str(key))]

    def shard_name_for(self, key: str) -> str:
        return self._ring.owner(str(key))

    def spread(self) -> int:
        """Next shard index for a call with no affinity key."""
        return next(self._rr) % len(self.shard_names)


def shard_name(pool_name: str, index: int) -> str:
    """The canonical name of one shard of ``pool_name``."""
    return f"{pool_name}/shard{index}"


def shard_names(pool_name: str, shards: int) -> list[str]:
    if shards < 1:
        raise ValueError(f"pool needs at least one shard: {shards}")
    return [shard_name(pool_name, i) for i in range(shards)]
