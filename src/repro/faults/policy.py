"""The unified retry policy: timeout, capped exponential backoff, jitter.

Before this module existed, every retry loop in the code base invented
its own bounds: the elastic stub walked the member list for a fixed
number of passes with no overall deadline, so a pool where every member
was *slow* (not dead) retried without limit.  :class:`RetryPolicy` is the
single source of truth for how long a failure may be masked before it
propagates (paper section 4.3: the stub retries "on other objects
including the sentinel", and only total pool failure reaches the
application — this policy decides when "total" has been established).

A policy is immutable configuration; :meth:`RetryPolicy.start` produces
one mutable :class:`RetryState` per logical invocation.  The state is
bounded three ways, and exhausting *any* bound ends the invocation:

- **attempts** — total sends (the primary bound under virtual time,
  where the clock does not advance inside a synchronous retry loop);
- **rounds** — membership-refresh cycles (walk the cached members, then
  re-fetch identities from the sentinel and walk again);
- **budget** — elapsed seconds against the supplied clock (the primary
  bound live, where slow members really burn wall time).

Backoff between rounds is capped exponential with optional jitter drawn
from a caller-supplied RNG, so simulations using seeded
:class:`~repro.sim.rng.RngStreams` stay bit-for-bit reproducible.
Sleeping is delegated to a caller-supplied callable: live runtimes pass
``time.sleep``; simulated runtimes pass nothing and the backoff is a
pure bookkeeping step (virtual time cannot be advanced from inside a
synchronous invocation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    ApplicationError,
    ConnectError,
    MemberDrainedError,
    RemoteError,
)
from repro.sim.clock import Clock


def is_retryable(error: BaseException) -> bool:
    """May the stub mask this failure with a retry?

    The taxonomy every retry loop (sync, async, batched) must agree on:
    transport-level failures (:class:`ConnectError`, timeouts, other
    :class:`RemoteError`) and drain refusals are retryable — the call
    never ran, or ran somewhere that told us to go elsewhere.  An
    :class:`ApplicationError` means the remote method *did* run and
    raised; retrying would double-execute, so it is never retryable.
    This classification is per **logical call**: a batched entry whose
    wire message was dropped is retryable even though sibling entries in
    the same message failed with it.
    """
    if isinstance(error, ApplicationError):
        return False
    return isinstance(error, (RemoteError, MemberDrainedError))


def should_discard_member(error: BaseException) -> bool:
    """Should the failing member be dropped from cached membership?

    Dead (:class:`ConnectError`) and draining
    (:class:`MemberDrainedError`) members are discarded before the
    retry; a merely *slow* member (plain :class:`RemoteError` timeout)
    stays cached — slowness is transient, death is not.
    """
    return isinstance(error, (ConnectError, MemberDrainedError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and backoff shape for one class of retried operations.

    The defaults reproduce the elastic stub's historical behaviour (two
    passes over the membership) while adding the bounds it lacked: a
    total-attempt cap and a time budget, so an all-slow pool surfaces a
    :class:`~repro.errors.ConnectError` instead of retrying forever.
    """

    max_attempts: int = 16          # total sends per logical invocation
    max_rounds: int = 2             # membership-refresh cycles
    budget: float | None = 30.0     # overall seconds; None = attempts/rounds only
    base_backoff: float = 0.05      # seconds before the second round
    max_backoff: float = 2.0        # backoff growth cap
    multiplier: float = 2.0         # exponential growth factor
    jitter: float = 0.5             # fraction of the delay randomized (+/- half)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1: {self.max_rounds}")
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"budget must be positive: {self.budget}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def describe(self) -> str:
        budget = "no time budget" if self.budget is None else f"{self.budget}s budget"
        return (
            f"{self.max_attempts} attempts / {self.max_rounds} rounds / {budget}"
        )

    def backoff_for(self, round_number: int) -> float:
        """Nominal (un-jittered) delay before ``round_number`` (2-based:
        there is no delay before the first round)."""
        if round_number <= 1:
            return 0.0
        delay = self.base_backoff * self.multiplier ** (round_number - 2)
        return min(delay, self.max_backoff)

    def start(
        self,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> "RetryState":
        """Begin one logical invocation under this policy.

        ``clock`` enforces the time budget (omitted → attempts/rounds
        only); ``rng`` supplies jitter (omitted → deterministic nominal
        backoff); ``sleep`` performs the backoff delay (omitted → the
        delay is recorded but not waited, the simulation-safe default).
        """
        return RetryState(self, clock=clock, rng=rng, sleep=sleep)


class RetryState:
    """Mutable per-invocation progress against a :class:`RetryPolicy`."""

    def __init__(
        self,
        policy: RetryPolicy,
        clock: Clock | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.policy = policy
        self.attempts = 0
        self.rounds = 1
        self.total_backoff = 0.0
        self._clock = clock
        self._rng = rng
        self._sleep = sleep
        self._started = None if clock is None else clock.now()

    # -- budget queries --------------------------------------------------------

    def elapsed(self) -> float:
        if self._clock is None or self._started is None:
            return 0.0
        return self._clock.now() - self._started

    def over_budget(self) -> bool:
        budget = self.policy.budget
        return budget is not None and self._clock is not None and (
            self.elapsed() >= budget
        )

    def allow_attempt(self) -> bool:
        """May one more send happen?  False once any bound is exhausted."""
        return self.attempts < self.policy.max_attempts and not self.over_budget()

    def note_attempt(self) -> None:
        self.attempts += 1

    # -- round transitions -----------------------------------------------------

    def next_round(self) -> bool:
        """Move to the next membership-refresh round, backing off first.

        Returns False (without sleeping) when any bound — rounds,
        attempts, or time budget — is already exhausted.
        """
        if self.rounds >= self.policy.max_rounds:
            return False
        if not self.allow_attempt():
            return False
        self.rounds += 1
        delay = self.policy.backoff_for(self.rounds)
        if delay > 0 and self._rng is not None and self.policy.jitter > 0:
            # Symmetric jitter: delay * (1 +/- jitter/2).
            spread = self.policy.jitter * (self._rng.random() - 0.5)
            delay = max(0.0, delay * (1.0 + spread))
        self.total_backoff += delay
        if delay > 0 and self._sleep is not None:
            self._sleep(delay)
        return True

    # -- exhaustion reporting --------------------------------------------------

    def exhausted_reason(self) -> str:
        """Which bound ended the invocation — named so the surfaced
        ConnectError tells the operator exactly what budget ran out."""
        if self.over_budget():
            return (
                f"time budget exhausted after {self.elapsed():.3f}s "
                f"(policy: {self.policy.describe()})"
            )
        if self.attempts >= self.policy.max_attempts:
            return (
                f"attempt budget exhausted after {self.attempts} attempts "
                f"(policy: {self.policy.describe()})"
            )
        return (
            f"retries exhausted after {self.rounds} rounds / "
            f"{self.attempts} attempts (policy: {self.policy.describe()})"
        )
