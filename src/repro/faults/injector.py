"""Deterministic fault injection for an elastic runtime.

One :class:`FaultInjector` drives every fault primitive the substrates
expose — ``Transport.kill`` (JVM crash), ``MesosMaster.fail_node`` /
``fail`` (machine crash, master outage), ``HyperStore.fail_node``
(partition loss) — plus the message-level faults the transport's fault
hook enables: probabilistic drops, delays, and injected invocation
timeouts for *slow* (not dead) endpoints.

Two usage styles compose freely:

- **scripted** — :meth:`schedule` queues a fault at an absolute instant
  on the runtime's scheduler (virtual or wall time), which is how the
  reproducible chaos scenario drives the system;
- **rate-based** — :meth:`set_drop_rate` / :meth:`slow_endpoint` install
  standing behaviour consulted per message.

Every random choice (victim selection, per-message drop draws) comes
from the injector's own :class:`random.Random`, which callers seed via
:class:`~repro.sim.rng.RngStreams` — the same (seed, script) pair always
injects the same faults at the same instants, so a chaos run's event
trace is bit-for-bit reproducible.

The event trace records *logical* identities only (member uids, node
names, endpoint names) — never process-global ids like ``ep-17`` or
``slice-42``, whose counters depend on what else ran in the process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConnectError, RemoteError
from repro.rmi.transport import Request

if TYPE_CHECKING:
    from repro.core.runtime import ElasticRuntime


@dataclass
class FaultEvent:
    """One entry of the reproducible fault/event trace."""

    at: float
    kind: str
    detail: str

    def as_tuple(self) -> tuple[float, str, str]:
        return (round(self.at, 6), self.kind, self.detail)


@dataclass
class InjectorStats:
    """Aggregate message-fault counters (kept out of the scripted trace
    so rate-based noise does not drown the scripted milestones)."""

    dropped: int = 0
    delayed: int = 0
    timed_out: int = 0
    delay_total: float = 0.0
    by_endpoint: dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Injects faults into one runtime, recording a deterministic trace."""

    def __init__(
        self,
        runtime: "ElasticRuntime",
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
        trace: list[FaultEvent] | None = None,
    ) -> None:
        self.runtime = runtime
        self.rng = rng or random.Random(0)
        self.trace: list[FaultEvent] = trace if trace is not None else []
        self.stats = InjectorStats()
        # Live mode passes time.sleep so injected delays really stall the
        # caller; under the simulation kernel delays are accounted only
        # (virtual time cannot advance inside a synchronous delivery).
        self._sleep = sleep
        self._drop_rates: dict[str | None, float] = {}
        self._delays: dict[str | None, float] = {}
        self._slow: dict[str, float] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # transport hook (message drops / delays / slow endpoints)
    # ------------------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Attach the message-fault hook to the runtime's transport."""
        self.runtime.transport.install_fault_hook(self._hook)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.runtime.transport.install_fault_hook(None)
            self._installed = False

    def set_drop_rate(self, rate: float, endpoint_id: str | None = None) -> None:
        """Drop a fraction of messages (to one endpoint, or all with None)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1]: {rate}")
        self._drop_rates[endpoint_id] = rate

    def set_delay(self, seconds: float, endpoint_id: str | None = None) -> None:
        """Delay every message (to one endpoint, or all with None)."""
        if seconds < 0:
            raise ValueError(f"negative delay: {seconds}")
        self._delays[endpoint_id] = seconds

    def slow_endpoint(self, endpoint_id: str, timeout_after: float = 1.0) -> None:
        """Make an endpoint *slow but alive*: every invocation of it
        surfaces as an invocation timeout (:class:`RemoteError`), the
        failure mode a bounded retry budget exists for."""
        self._slow[endpoint_id] = timeout_after

    def clear_message_faults(self) -> None:
        self._drop_rates.clear()
        self._delays.clear()
        self._slow.clear()

    def _hook(self, endpoint_id: str, request: Request) -> None:
        name = self._endpoint_name(endpoint_id)
        rate = self._drop_rates.get(endpoint_id, self._drop_rates.get(None, 0.0))
        if rate > 0.0 and self.rng.random() < rate:
            self.stats.dropped += 1
            self.stats.by_endpoint[name] = self.stats.by_endpoint.get(name, 0) + 1
            raise ConnectError(
                f"injected: message {request.method!r} to {name} dropped"
            )
        delay = self._delays.get(endpoint_id, self._delays.get(None, 0.0))
        if delay > 0.0:
            self.stats.delayed += 1
            self.stats.delay_total += delay
            if self._sleep is not None:
                self._sleep(delay)
        timeout = self._slow.get(endpoint_id)
        if timeout is not None:
            self.stats.timed_out += 1
            raise RemoteError(
                f"injected: invocation of {request.method!r} on slow "
                f"endpoint {name} timed out after {timeout}s"
            )

    # ------------------------------------------------------------------
    # scripted faults
    # ------------------------------------------------------------------

    def schedule(self, at: float, fault: Callable[[], object]) -> None:
        """Run ``fault`` at absolute time ``at`` on the runtime's scheduler."""
        now = self.runtime.scheduler.clock.now()
        self.runtime.scheduler.call_after(max(0.0, at - now), fault)

    def crash_members(
        self,
        pool_name: str,
        count: int = 1,
        include_sentinel: bool = False,
    ) -> list[int]:
        """Kill the endpoints (JVM crash) of ``count`` pool members,
        chosen deterministically from the injector's RNG.  Returns the
        victims' uids."""
        pool = self.runtime.pool(pool_name)
        candidates = pool.active_members()
        if not include_sentinel and len(candidates) > 1:
            sentinel = pool.sentinel()
            candidates = [m for m in candidates if m is not sentinel]
        count = min(count, len(candidates))
        victims = sorted(
            self.rng.sample(sorted(candidates, key=lambda m: m.uid), count),
            key=lambda m: m.uid,
        )
        for member in victims:
            if member.endpoint_id is not None:
                self.runtime.transport.kill(member.endpoint_id)
        uids = [m.uid for m in victims]
        self._record("member-crash", f"pool={pool_name} uids={uids}")
        return uids

    def fail_cluster_node(self, node_id: str | None = None) -> str:
        """Crash one cluster machine (its in-use slices are LOST)."""
        if node_id is None:
            alive = sorted(n.node_id for n in self.runtime.master.nodes if n.alive)
            if not alive:
                raise ValueError("no alive cluster node to fail")
            node_id = self.rng.choice(alive)
        self.runtime.master.fail_node(node_id)
        self._record("cluster-node-fail", f"node={node_id}")
        return node_id

    def recover_cluster_node(self, node_id: str) -> None:
        self.runtime.master.recover_node(node_id)
        self._record("cluster-node-recover", f"node={node_id}")

    def master_outage(self, duration: float) -> None:
        """Take the master down now and recover it after ``duration``."""
        self.runtime.master.fail()
        self._record("master-fail", f"duration={duration}")
        self.runtime.scheduler.call_after(duration, self._recover_master)

    def _recover_master(self) -> None:
        self.runtime.master.recover()
        self._record("master-recover", "")

    def fail_store_node(
        self,
        node: str | None = None,
        avoid_keys: tuple[str, ...] = (),
    ) -> str:
        """Fail one KV-store partition.

        ``avoid_keys`` excludes the owners of listed keys from the victim
        pool — the scripted scenario uses it to fail a partition that
        does *not* own the pool's control keys, so the loss is masked
        (per the paper, operations on a failed partition's own keys
        propagate :class:`StoreUnavailableError` by design).
        """
        store = self.runtime.store
        avoid = {store.owner_node(key) for key in avoid_keys}
        failed = set(store.failed_nodes())
        candidates = sorted(
            name
            for name in store.node_names()
            if name not in avoid and name not in failed
        )
        if not candidates:
            raise ValueError("no store node satisfies the avoid/alive filter")
        victim = node if node is not None else self.rng.choice(candidates)
        store.fail_node(victim)
        self._record("store-node-fail", f"node={victim}")
        return victim

    def recover_store_node(self, node: str) -> None:
        self.runtime.store.recover_node(node)
        self._record("store-node-recover", f"node={node}")

    # ------------------------------------------------------------------
    # trace
    # ------------------------------------------------------------------

    def record(self, kind: str, detail: str) -> None:
        """Add a caller-supplied milestone to the trace (the scenario
        records recovery milestones next to the injected faults)."""
        self._record(kind, detail)

    def _record(self, kind: str, detail: str) -> None:
        self.trace.append(
            FaultEvent(self.runtime.scheduler.clock.now(), kind, detail)
        )
        # Mirror every injected fault into the runtime's observability
        # trace, so one timeline shows faults next to their consequences.
        obs = getattr(self.runtime, "obs", None)
        if obs is not None:
            obs.tracer.emit("faults", kind, detail=detail)

    def _endpoint_name(self, endpoint_id: str) -> str:
        try:
            return self.runtime.transport.endpoint(endpoint_id).name
        except Exception:
            return endpoint_id
