"""The scripted chaos scenario: crash the pool under load, measure recovery.

One reproducible experiment (``python -m repro chaos``) that exercises
the whole failure path end to end:

- a simulated runtime hosts one elastic pool (``min=4``) on a 6-node
  cluster with a 3-node :class:`~repro.kvstore.store.HyperStore`, with
  the runtime's failure-detection loop armed on a 0.5 s cadence;
- a client pings the pool every 0.25 s through an epoch-cached
  :class:`~repro.core.balancer.ElasticStub` under the default
  :class:`~repro.faults.policy.RetryPolicy`;
- at ``fault_at`` (default t=5 s) the injector crashes two non-sentinel
  members (JVM kill) *and* fails one store partition chosen to not own
  the pool's control keys (losing a partition that owns data keys is
  *not* masked, by design — see DESIGN.md);
- the failed store node recovers at t=30 s.

Success means: **zero client-visible errors** (every failure masked by
stub retry), the pool detected the crashes, re-elected its sentinel, and
re-provisioned back to ``min``; and the fault/event trace is identical
across two runs with the same seed.

The recovery latency reported is the paper-relevant number: the interval
from fault injection to the first instant the pool again serves at its
minimum size (detection + re-provisioning, Figure 8's interval applied
to the failure path rather than scale-up).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.provisioner import ContainerProvisioner
from repro.core.api import ElasticObject
from repro.core.runtime import ElasticRuntime
from repro.faults.injector import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.kvstore.store import HyperStore
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams

SCHEMA = "repro.chaos/v1"

POOL_NAME = "chaos"
POOL_MIN = 4
POOL_MAX = 8
CONTROL_KEYS = (f"{POOL_NAME}$epoch", f"{POOL_NAME}$members")


class ChaosWorkload(ElasticObject):
    """The elastic class under test: a pure echo, so every client-side
    observation is attributable to the failure path, not the workload."""

    def __init__(self) -> None:
        super().__init__()
        self.set_min_pool_size(POOL_MIN)
        self.set_max_pool_size(POOL_MAX)

    def ping(self, value: int) -> int:
        return value


@dataclass
class ChaosReport:
    """Everything the chaos run measured, JSON-serializable."""

    schema: str
    seed: int
    duration: float
    fault_at: float
    pool: dict[str, Any]
    client: dict[str, Any]
    recovery: dict[str, Any]
    trace: list[tuple[float, str, str]]
    failures: list[dict[str, Any]] = field(default_factory=list)
    sizes: list[tuple[float, int]] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return self.recovery["recovered_at"] is not None

    @property
    def ok(self) -> bool:
        """The acceptance gate: no client-visible error, no wrong result,
        and the pool back at its minimum size."""
        return (
            self.client["errors"] == 0
            and self.client["wrong_results"] == 0
            and self.recovered
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "duration": self.duration,
            "fault_at": self.fault_at,
            "ok": self.ok,
            "pool": self.pool,
            "client": self.client,
            "recovery": self.recovery,
            "failures": self.failures,
            "trace": [list(entry) for entry in self.trace],
            "sizes": [list(entry) for entry in self.sizes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        rec = self.recovery
        latency = (
            "never"
            if rec["recovery_latency"] is None
            else f"{rec['recovery_latency']:.2f}s"
        )
        return (
            f"chaos seed={self.seed}: {self.client['calls']} calls, "
            f"{self.client['errors']} errors, "
            f"{len(self.failures)} members reaped, "
            f"recovery latency {latency}, "
            f"final size {self.pool['final_size']}/{self.pool['min']} "
            f"({'OK' if self.ok else 'FAILED'})"
        )


def run_chaos_scenario(
    seed: int = 0,
    duration: float = 60.0,
    fault_at: float = 5.0,
    client_interval: float = 0.25,
    sample_interval: float = 0.5,
    retry_policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Run the scripted scenario once; deterministic in ``seed``."""
    if duration <= fault_at:
        raise ValueError(
            f"duration {duration} must exceed fault_at {fault_at}"
        )
    kernel = Kernel()
    rng = RngStreams(seed)
    runtime = ElasticRuntime.simulated(
        kernel,
        nodes=6,
        slices_per_node=4,
        provisioner=ContainerProvisioner(
            rng.stream("provisioner"),
            base_s=1.0,
            slope_s=3.0,
            jitter_s=0.5,
            cap_s=6.0,
        ),
        rng=rng,
        store=HyperStore(nodes=3),
        failure_check_interval=0.5,
    )
    pool = runtime.new_pool(ChaosWorkload, name=POOL_NAME)
    injector = FaultInjector(runtime, rng=rng.stream("injector")).install()
    stub = runtime.stub(
        POOL_NAME, caller="chaos-client", retry_policy=retry_policy
    )

    client = {"calls": 0, "errors": 0, "wrong_results": 0}
    client_errors: list[tuple[float, str]] = []

    def ping() -> None:
        client["calls"] += 1
        seqno = client["calls"]
        try:
            if stub.ping(seqno) != seqno:
                client["wrong_results"] += 1
        except Exception as exc:  # any escape IS the failure being measured
            client["errors"] += 1
            client_errors.append(
                (round(kernel.clock.now(), 6), f"{type(exc).__name__}: {exc}")
            )
        if kernel.clock.now() + client_interval <= duration:
            kernel.call_after(client_interval, ping)

    kernel.call_at(2.0, ping)

    sizes: list[tuple[float, int]] = []

    def sample() -> None:
        sizes.append((round(kernel.clock.now(), 6), pool.size()))
        if kernel.clock.now() + sample_interval <= duration:
            kernel.call_after(sample_interval, sample)

    kernel.call_at(0.0, sample)

    # The script: at ``fault_at`` two member JVMs die and one store
    # partition is lost; the partition comes back at t=30 s.
    injector.schedule(
        fault_at, lambda: injector.crash_members(POOL_NAME, count=2)
    )
    store_victim: dict[str, str] = {}

    def fail_store() -> None:
        store_victim["node"] = injector.fail_store_node(
            avoid_keys=CONTROL_KEYS
        )

    injector.schedule(fault_at, fail_store)
    store_recover_at = 30.0
    if store_recover_at < duration:

        def recover_store() -> None:
            node = store_victim.get("node")
            if node is not None:
                injector.recover_store_node(node)

        injector.schedule(store_recover_at, recover_store)

    kernel.run_until(duration)

    # Recovery milestones from the size samples: the first post-fault
    # sample below min marks detection (the reap), the first sample at or
    # above min after that marks full recovery.
    degraded_at = next(
        (t for t, s in sizes if t >= fault_at and s < POOL_MIN), None
    )
    recovered_at = None
    if degraded_at is not None:
        recovered_at = next(
            (t for t, s in sizes if t > degraded_at and s >= POOL_MIN), None
        )
    final_size = pool.size()
    report = ChaosReport(
        schema=SCHEMA,
        seed=seed,
        duration=duration,
        fault_at=fault_at,
        pool={
            "name": POOL_NAME,
            "min": POOL_MIN,
            "max": POOL_MAX,
            "final_size": final_size,
        },
        client={
            **client,
            "first_errors": client_errors[:10],
        },
        recovery={
            "degraded_at": degraded_at,
            "recovered_at": recovered_at,
            "recovery_latency": (
                None if recovered_at is None else round(recovered_at - fault_at, 6)
            ),
            "store_node_failed": store_victim.get("node"),
        },
        trace=[event.as_tuple() for event in injector.trace],
        failures=[
            {"at": round(r.at, 6), "uid": r.uid, "kind": r.kind}
            for r in pool.failure_records
        ],
        sizes=sizes,
    )
    injector.uninstall()
    runtime.shutdown()
    return report
