"""Failure-path machinery: retry policy and fault injection.

The elasticity contract (paper sections 2.4, 2.5, 4.2) only holds if the
pool survives what the cluster does to it: lost slices, dead endpoints,
store partition loss, and sentinel re-election must be masked from
clients.  This package holds the two halves of that story:

- :mod:`repro.faults.policy` — the single :class:`RetryPolicy` (timeout +
  capped exponential backoff + jitter, budget-bounded) that governs every
  client-side retry loop;
- :mod:`repro.faults.injector` — a deterministic, seeded fault injector
  that crashes members, fails cluster/store nodes, drops and delays
  messages, and slows endpoints — at configurable rates or at scripted
  instants.

The scripted chaos scenario (``python -m repro chaos``) lives in
:mod:`repro.faults.scenario`; it is imported lazily by the CLI rather
than here so that :mod:`repro.core` modules can depend on the policy and
injector without an import cycle.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import RetryPolicy, RetryState

__all__ = ["FaultInjector", "RetryPolicy", "RetryState"]
