"""Exception hierarchy for the ElasticRMI reproduction.

The paper (section 4.4) preserves Java RMI's failure model: failures of
clients, the key-value store, or runtime processes are *not* masked and
propagate to the application as exceptions.  This module defines the
exception taxonomy used across all subsystems so that applications can
catch failures at the granularity they care about.
"""

from __future__ import annotations


class ElasticRMIError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# RMI-layer errors (mirror java.rmi.RemoteException and friends)
# ---------------------------------------------------------------------------


class RemoteError(ElasticRMIError):
    """A remote method invocation failed.

    Carries the remote cause, if any, so clients can distinguish transport
    failures from application exceptions raised on the server.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class ConnectError(RemoteError):
    """The target endpoint could not be reached (dead skeleton / JVM)."""


class CpuWorkerLostError(ConnectError):
    """A cpu-pool worker process died while executing the call.

    Subclasses :class:`ConnectError` on purpose: worker death is a
    process-level transport failure, not an application error, so it
    must reach the client's retry loop (charged one attempt, then
    :class:`~repro.faults.RetryPolicy` takes over against the respawned
    worker) instead of being folded into an error Response by the
    skeleton's generic exception handler.
    """


class MarshalError(RemoteError):
    """A value could not be serialized for transmission."""


class UnmarshalError(RemoteError):
    """A received payload could not be deserialized."""


class NoSuchObjectError(RemoteError):
    """The invoked remote object is no longer exported."""


class NotBoundError(ElasticRMIError):
    """Registry lookup for a name that is not bound."""


class AlreadyBoundError(ElasticRMIError):
    """Registry bind for a name that is already bound."""


class ApplicationError(RemoteError):
    """The remote method itself raised; ``cause`` is the application error."""


# ---------------------------------------------------------------------------
# Cluster-manager (Mesos substrate) errors
# ---------------------------------------------------------------------------


class ClusterError(ElasticRMIError):
    """Base class for cluster-manager failures."""


class InsufficientResourcesError(ClusterError):
    """The cluster could not satisfy a resource request.

    Note: pool *instantiation* tolerates partial grants (the paper creates
    ``l < k`` objects when only ``l`` slices are available); this error is
    for requests that cannot be satisfied at all.
    """


class MasterUnavailableError(ClusterError):
    """The Mesos master is down; scaling is paused until it recovers."""


class SliceError(ClusterError):
    """Operation on an unknown, released, or foreign slice."""


# ---------------------------------------------------------------------------
# Key-value store (HyperDex substrate) errors
# ---------------------------------------------------------------------------


class StoreError(ElasticRMIError):
    """Base class for key-value store failures (propagated, never masked)."""


class StoreUnavailableError(StoreError):
    """The store (or the partition owning the key) is unreachable."""


class KeyNotFoundError(StoreError):
    """Strict read of a key that does not exist."""


class CASMismatchError(StoreError):
    """Compare-and-swap failed because the expected value did not match."""


class LockError(StoreError):
    """Base class for distributed-lock failures."""


class LockTimeoutError(LockError):
    """A lock could not be acquired within the caller's deadline."""


class LockNotHeldError(LockError):
    """Unlock/renew by a caller that does not hold the lock."""


# ---------------------------------------------------------------------------
# Elastic-pool errors
# ---------------------------------------------------------------------------


class PoolError(ElasticRMIError):
    """Base class for elastic object pool failures."""


class PoolConfigurationError(PoolError):
    """Invalid pool configuration (e.g. min size < 2, min > max)."""


class PoolShutdownError(PoolError):
    """Operation on a pool that has been shut down."""


class MemberDrainedError(PoolError):
    """Invocation arrived at a member that is draining; caller must retry
    against another member (stubs handle this transparently)."""


class ScalingDisabledError(PoolError):
    """CPU/memory threshold configuration attempted while a fine-grained
    policy is active (the paper allows a single decision mechanism)."""
