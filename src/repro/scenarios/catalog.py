"""The scenario matrix: seeded, replayable million-user load scenarios.

Each scenario is a declarative :class:`ScenarioSpec`: per-tenant workload
pattern, service model, pool/shard configuration, key distribution, and
fault schedule, plus the seed that makes the run byte-replayable.  The
``users`` field states the modeled population; ``ops_per_user_s`` turns
it into an offered rate, and ``model_factor`` collapses that rate into a
tractable simulated stream (one simulated arrival stands for a block of
users; service time is stretched by the same factor, so utilization,
capacity demand, and pool trajectories are those of the full population
— see :mod:`repro.scenarios.engine`).

Adding a scenario is adding one :class:`ScenarioSpec` to
:data:`SCENARIOS` (DESIGN.md "Scenario suite" walks through the fields)
and committing its baseline with ``python -m repro bench --suite
scenario``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable

from repro.workloads.patterns import (
    ConstantPattern,
    CyclicPattern,
    FlashCrowdPattern,
    WorkloadPattern,
)


def zipf_sampler(
    keys: int, s: float = 1.0, prefix: str = "key"
) -> Callable[[random.Random], str]:
    """A Zipf(s) key sampler over ``keys`` ranked keys.

    Rank *r* is drawn with probability proportional to ``1 / r**s`` —
    the classic hot-key skew (a few symbols/topics take most traffic).
    Cumulative weights are precomputed once; sampling is a bisect per
    draw on the caller's rng, so streams stay seed-deterministic.
    """
    if keys < 1:
        raise ValueError(f"need at least one key: {keys}")
    population = [f"{prefix}-{rank:04d}" for rank in range(1, keys + 1)]
    cum_weights = list(
        itertools.accumulate(1.0 / rank**s for rank in range(1, keys + 1))
    )

    def sample(rng: random.Random) -> str:
        return rng.choices(population, cum_weights=cum_weights, k=1)[0]

    return sample


@dataclass(frozen=True)
class PoolSpec:
    """Pool/shard configuration for one tenant.

    With ``shards`` > 1 the tenant runs on a sharded pool and
    ``min_size``/``max_size`` bound each shard individually (the
    runtime's per-shard contract).  Thresholds feed the coarse-grained
    policy: grow when the sampled busy fraction exceeds ``cpu_incr``,
    shrink below ``cpu_decr``, at most ±1 member per ``burst_interval_s``.
    """

    min_size: int = 2
    max_size: int = 8
    shards: int = 1
    burst_interval_s: float = 5.0
    cpu_incr: float = 75.0
    cpu_decr: float = 30.0

    def total_min(self) -> int:
        return self.min_size * self.shards

    def total_max(self) -> int:
        return self.max_size * self.shards


@dataclass(frozen=True)
class KeySpec:
    """Key population and skew for a tenant's operations."""

    keys: int
    zipf_s: float = 1.0
    affinity: bool = False  # route by key to the owning shard


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kill members, clients reconnect.

    ``kill_members`` lowest-uid active members are crashed at ``at_s``.
    Their in-flight operations re-dispatch after ``reconnect_delay_s``
    (jittered over ``reconnect_spread_s``), and ``herd_burst`` fresh
    arrivals — the thundering herd of reconnecting clients — pile in
    over the same window.  ``herd_burst`` is stated at full scale and
    shrinks with the run's model factor.
    """

    at_s: float
    kill_members: int = 1
    reconnect_delay_s: float = 0.05
    reconnect_spread_s: float = 2.0
    herd_burst: int = 0


@dataclass(frozen=True)
class QoSSpec:
    """Per-tenant QoS targets the summary grades against.

    ``max_p99_x_service`` bounds p99 latency as a multiple of the
    tenant's base service time (scale-invariant); ``min_completion``
    bounds the fraction of arrivals completed by the end of the drain.
    """

    max_p99_x_service: float = 50.0
    min_completion: float = 0.95


@dataclass(frozen=True)
class TenantSpec:
    """One application tenant: pattern + service + pool + keys + faults."""

    name: str
    app: str
    pattern: Callable[[], WorkloadPattern]
    service: "ServiceSpec"
    pool: PoolSpec = PoolSpec()
    keys: KeySpec | None = None
    faults: tuple[FaultSpec, ...] = ()
    qos: QoSSpec = QoSSpec()


@dataclass(frozen=True)
class ServiceSpec:
    """Virtual-time service cost (mirrors engine.ServiceModel fields)."""

    base_s: float
    hit_s: float = 0.0
    cache_capacity: int = 0
    target_utilization: float = 0.7
    nominal_s: float | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seeded scenario."""

    name: str
    title: str
    users: int                 # modeled population ("million-user" scale)
    ops_per_user_s: float      # each user's steady per-second op rate
    model_factor: float        # simulated arrivals per modeled arrival
    duration_s: float
    tenants: tuple[TenantSpec, ...]
    seed: int = 0
    drain_s: float = 30.0
    sample_interval_s: float = 5.0
    nodes: int = 16
    slices_per_node: int = 4

    def modeled_rate(self, simulated_rate: float) -> float:
        """Full-population ops/s a simulated rate stands for."""
        return simulated_rate / self.model_factor


def _diurnal() -> ScenarioSpec:
    # Two diurnal cycles: a raised-cosine swing between 25% and 100% of
    # the peak.  The pool should track the cycle — grow toward the peak,
    # shrink through the trough — with agility staying near zero.
    return ScenarioSpec(
        name="diurnal",
        title="Diurnal cycle on the DCS app",
        users=1_500_000,
        ops_per_user_s=0.06,  # 90k updates/s at peak
        model_factor=0.001,   # 90 simulated ops/s at peak
        duration_s=600.0,
        seed=1009,
        tenants=(
            TenantSpec(
                name="dcs",
                app="dcs",
                pattern=lambda: CyclicPattern(
                    90.0, cycles=2, duration_min=10.0, base_fraction=0.25
                ),
                service=ServiceSpec(base_s=0.05),
                pool=PoolSpec(min_size=2, max_size=12),
            ),
        ),
    )


def _flash_crowd() -> ScenarioSpec:
    # A 5× spike strictly inside the trace: offered rate jumps from 30
    # to 150 ops/s in two seconds and holds for a minute.  Growth is
    # ±1 member per burst interval, so the provisioning lag shows up as
    # a p999 spike before capacity catches up.
    return ScenarioSpec(
        name="flash-crowd",
        title="Flash crowd on the Marketcetera app",
        users=3_000_000,
        ops_per_user_s=0.05,  # 150k orders/s at the spike
        model_factor=0.001,
        duration_s=330.0,
        seed=1013,
        tenants=(
            TenantSpec(
                name="marketcetera",
                app="marketcetera",
                pattern=lambda: FlashCrowdPattern(
                    base_rate=30.0,
                    spike_rate=150.0,
                    spike_start_s=120.0,
                    spike_duration_s=60.0,
                    duration_s=330.0,
                    ramp_s=2.0,
                ),
                service=ServiceSpec(base_s=0.04),
                pool=PoolSpec(min_size=2, max_size=12),
                qos=QoSSpec(max_p99_x_service=400.0, min_completion=0.99),
            ),
        ),
    )


def _thundering_herd() -> ScenarioSpec:
    # Steady load, then half the pool is crashed at t=120: in-flight
    # operations reconnect and a herd of fresh retries arrives within
    # ~2 s, while repair re-provisions capacity on a 1 s detection
    # cadence.  The tail shows the reconnect storm; completion ratio
    # shows nothing was lost.
    return ScenarioSpec(
        name="thundering-herd",
        title="Thundering-herd reconnect on the Hedwig app",
        users=2_000_000,
        ops_per_user_s=0.04,  # 80k messages/s
        model_factor=0.001,
        duration_s=300.0,
        drain_s=40.0,
        seed=1019,
        tenants=(
            TenantSpec(
                name="hedwig",
                app="hedwig",
                pattern=lambda: ConstantPattern(80.0, 300.0),
                service=ServiceSpec(base_s=0.03),
                pool=PoolSpec(min_size=2, max_size=10),
                faults=(
                    FaultSpec(
                        at_s=120.0,
                        kill_members=2,
                        herd_burst=900_000,
                        reconnect_spread_s=2.0,
                    ),
                ),
                qos=QoSSpec(max_p99_x_service=600.0, min_completion=0.99),
            ),
        ),
    )


def _hot_key() -> ScenarioSpec:
    # Zipf(1.2) over 512 symbols on a 4-shard pool with key-affinity
    # routing and a per-member LRU: the hot shard runs hot (and grows)
    # while cold shards idle at min — per-shard elasticity under skew.
    return ScenarioSpec(
        name="hot-key",
        title="Zipfian hot-key skew on a sharded Hedwig pool",
        users=2_500_000,
        ops_per_user_s=0.144,  # 360k topic ops/s
        model_factor=0.001,
        duration_s=240.0,
        seed=1021,
        tenants=(
            TenantSpec(
                name="hedwig-sharded",
                app="hedwig",
                pattern=lambda: ConstantPattern(360.0, 240.0),
                service=ServiceSpec(
                    base_s=0.06,
                    hit_s=0.004,
                    cache_capacity=96,
                    nominal_s=0.012,
                ),
                pool=PoolSpec(min_size=2, max_size=6, shards=4),
                keys=KeySpec(keys=512, zipf_s=1.2, affinity=True),
            ),
        ),
    )


def _multi_tenant() -> ScenarioSpec:
    # Two apps share one cluster: a flash crowd on Marketcetera lands
    # mid-trace while Hedwig rides its cycle.  Both pools draw slices
    # from the same master, so the spike's scale-out happens alongside
    # a neighbour's steady churn.
    return ScenarioSpec(
        name="multi-tenant",
        title="Mixed multi-app tenancy on one cluster",
        users=2_200_000,
        ops_per_user_s=0.05,
        model_factor=0.001,
        duration_s=420.0,
        seed=1031,
        nodes=12,
        tenants=(
            TenantSpec(
                name="marketcetera",
                app="marketcetera",
                pattern=lambda: FlashCrowdPattern(
                    base_rate=25.0,
                    spike_rate=100.0,
                    spike_start_s=150.0,
                    spike_duration_s=50.0,
                    duration_s=420.0,
                    ramp_s=5.0,
                ),
                service=ServiceSpec(base_s=0.04),
                pool=PoolSpec(min_size=2, max_size=8),
                qos=QoSSpec(max_p99_x_service=400.0, min_completion=0.99),
            ),
            TenantSpec(
                name="hedwig",
                app="hedwig",
                pattern=lambda: CyclicPattern(
                    70.0, cycles=2, duration_min=7.0, base_fraction=0.30
                ),
                service=ServiceSpec(base_s=0.03),
                pool=PoolSpec(min_size=2, max_size=8),
            ),
        ),
    )


_BUILDERS: tuple[Callable[[], ScenarioSpec], ...] = (
    _diurnal,
    _flash_crowd,
    _thundering_herd,
    _hot_key,
    _multi_tenant,
)

#: name → spec, in canonical matrix order.
SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (build() for build in _BUILDERS)
}


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
