"""The open-loop load engine: arrival-rate-driven load in virtual time.

Closed-loop drivers (each caller waits for its previous call) hide
overload: when the system slows down, the offered load politely slows
with it, so tail latency looks flat exactly when a real population of
independent users would be piling up.  This engine is **open-loop**:
arrivals come from an :class:`~repro.workloads.generator.ArrivalGenerator`
at the pattern's rate whether or not earlier operations have finished,
so queueing delay — the thing elasticity exists to bound — is actually
observable.  One simulated arrival stands for a block of real users
(``rate_factor`` scales the modeled population down, ``service_factor``
scales per-operation cost up by the same amount, keeping utilization,
capacity demand, and pool-size trajectories scale-invariant).

Each pool member is modeled as a deterministic FIFO server in virtual
time: an operation dispatched to member *m* completes at
``max(now, m.busy_until) + service`` and its recorded latency is
completion minus *original* arrival — queueing and retries included.
The member set is live: the routing table is re-read from the pool on
every dispatch, so scale-out absorbs load the moment a member activates
and scale-in stops receiving work immediately.  Killing members requeues
their in-flight operations through :meth:`OpenLoopEngine.on_members_lost`
(the reconnect), optionally with a thundering-herd burst of fresh
arrivals as every disconnected client retries at once.

Two drivers share this module: :class:`OpenLoopEngine` runs on the
simulation :class:`~repro.sim.kernel.Kernel` (virtual-time accurate,
byte-replayable), and :class:`LiveLoadDriver` paces the same arrival
streams in wall-clock time against a live runtime stub — the asyncio
transport sustains the in-flight counts an open-loop burst produces.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.sim.kernel import Kernel, ScheduledCall
from repro.workloads.generator import ArrivalGenerator
from repro.workloads.patterns import ScaledPattern, WorkloadPattern

MemberKey = Hashable


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic virtual-time cost of one operation on one member.

    ``base_s`` is the plain (or cache-miss) service time.  With
    ``cache_capacity`` > 0 each member keeps an LRU set of recently
    served keys: a hit costs ``hit_s``, a miss costs ``base_s`` and
    inserts the key — the per-member locality model behind the hot-key
    scenarios.  ``target_utilization`` is the sizing constant used for
    the scenario's ground-truth capacity demand (the paper's req_min):
    one member counts as ``target_utilization / nominal_s`` ops/s, where
    ``nominal_s`` defaults to ``base_s`` (override it when caching makes
    the expected cost differ from the miss cost).
    """

    base_s: float
    hit_s: float = 0.0
    cache_capacity: int = 0
    target_utilization: float = 0.7
    nominal_s: float | None = None

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError(f"base service time must be positive: {self.base_s}")
        if self.cache_capacity > 0 and self.hit_s <= 0:
            raise ValueError(f"hit service time must be positive: {self.hit_s}")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                f"target utilization must be in (0, 1]: {self.target_utilization}"
            )

    def capacity_per_member(self, service_factor: float = 1.0) -> float:
        """Ops/s one member is sized to serve at target utilization."""
        nominal = self.nominal_s if self.nominal_s is not None else self.base_s
        return self.target_utilization / (nominal * service_factor)


@dataclass
class _Op:
    """One in-flight operation (its timer dies with its member)."""

    seq: int
    key: str
    arrival_s: float
    attempts: int = 1
    timer: ScheduledCall | None = None


class _MemberServer:
    """One member's FIFO server state in virtual time."""

    __slots__ = ("busy_until", "outstanding", "cache")

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.outstanding: dict[int, _Op] = {}
        self.cache: OrderedDict[str, None] = OrderedDict()


@dataclass
class EngineStats:
    """Counters + raw latencies accumulated over one engine run."""

    arrivals: int = 0
    completed: int = 0
    redispatched: int = 0      # ops moved off a failed member (reconnects)
    herd_arrivals: int = 0     # extra arrivals injected by a herd burst
    parked: int = 0            # dispatch attempts that found no live member
    cache_hits: int = 0
    cache_misses: int = 0
    latencies: list[float] = field(default_factory=list)

    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0


class OpenLoopEngine:
    """Arrival-rate-driven load against one pool, in virtual time.

    ``members_fn`` returns the live routing table as ``(member_key,
    shard_index)`` pairs; ``member_key`` is opaque (the runner uses
    ``(pool_name, uid)``).  With ``shard_for`` set, each operation's key
    is routed to its owning shard's members (key affinity); otherwise
    dispatch is round-robin over all members.  All randomness — arrival
    thinning, key sampling, reconnect jitter — draws from the single
    ``rng``, so one seeded stream replays the whole tenant.
    """

    def __init__(
        self,
        kernel: Kernel,
        pattern: WorkloadPattern,
        service: ServiceModel,
        rng: random.Random,
        members_fn: Callable[[], list[tuple[MemberKey, int]]],
        shard_for: Callable[[str], int] | None = None,
        key_sampler: Callable[[random.Random], str] | None = None,
        rate_factor: float = 1.0,
        service_factor: float = 1.0,
        window_s: float = 1.0,
        park_retry_s: float = 0.1,
    ) -> None:
        if rate_factor <= 0 or service_factor <= 0:
            raise ValueError("rate and service factors must be positive")
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s}")
        self.kernel = kernel
        self.pattern: WorkloadPattern = (
            ScaledPattern(pattern, rate_factor)
            if rate_factor != 1.0
            else pattern
        )
        self.service = service
        self.service_factor = service_factor
        self.members_fn = members_fn
        self.shard_for = shard_for
        self.key_sampler = key_sampler
        self.window_s = window_s
        self.park_retry_s = park_retry_s
        self.stats = EngineStats()
        self._rng = rng
        self._gen = ArrivalGenerator(self.pattern, rng)
        # Peak scanned once at sub-second resolution: thinning needs a
        # bound that dominates the rate *inside* every window, and the
        # default 60 s scan can step right over a short flash spike.
        self._peak = self._gen.peak_rate(resolution_s=0.5)
        self._servers: dict[MemberKey, _MemberServer] = {}
        self._cursors: dict[int, int] = {}
        self._seq = 0
        self._until = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self, until: float | None = None) -> None:
        """Begin generating arrivals from virtual now until ``until``
        (default: the pattern's duration), window by window so the
        schedule never holds more than one window of future arrivals."""
        if until is None:
            until = self.pattern.duration_s
        self._until = until
        self.kernel.call_at(self.kernel.clock.now(), self._open_window)

    def offered_rate(self, t: float) -> float:
        """The (scaled) offered rate at pattern time ``t``."""
        return self.pattern.rate(t)

    def capacity_per_member(self) -> float:
        return self.service.capacity_per_member(self.service_factor)

    # -- arrival generation ----------------------------------------------

    def _open_window(self) -> None:
        start = self.kernel.clock.now()
        end = min(start + self.window_s, self._until)
        for at in self._gen.arrival_times(start, end, peak=self._peak):
            self.kernel.call_at(at, self._arrive)
        if end < self._until:
            self.kernel.call_at(end, self._open_window)

    def _next_op(self) -> _Op:
        self._seq += 1
        key = self.key_sampler(self._rng) if self.key_sampler else ""
        return _Op(
            seq=self._seq, key=key, arrival_s=self.kernel.clock.now()
        )

    def _arrive(self) -> None:
        self.stats.arrivals += 1
        self._dispatch(self._next_op())

    def _herd_arrive(self) -> None:
        self.stats.arrivals += 1
        self.stats.herd_arrivals += 1
        self._dispatch(self._next_op())

    # -- dispatch and service model --------------------------------------

    def _dispatch(self, op: _Op) -> None:
        members = self.members_fn()
        shard = -1
        if self.shard_for is not None:
            shard = self.shard_for(op.key)
            candidates = [key for key, s in members if s == shard]
            if not candidates:  # shard fully down: any member serves
                candidates = [key for key, _ in members]
        else:
            candidates = [key for key, _ in members]
        if not candidates:
            self.stats.parked += 1
            self.kernel.call_after(
                self.park_retry_s, lambda: self._dispatch(op)
            )
            return
        cursor = self._cursors.get(shard, 0)
        self._cursors[shard] = cursor + 1
        target = candidates[cursor % len(candidates)]
        server = self._servers.setdefault(target, _MemberServer())
        now = self.kernel.clock.now()
        done = max(now, server.busy_until) + self._service_s(server, op.key)
        server.busy_until = done
        server.outstanding[op.seq] = op
        op.timer = self.kernel.call_at(
            done, lambda: self._complete(server, op)
        )

    def _service_s(self, server: _MemberServer, key: str) -> float:
        base = self.service.base_s * self.service_factor
        if self.service.cache_capacity <= 0 or not key:
            return base
        cache = server.cache
        if key in cache:
            cache.move_to_end(key)
            self.stats.cache_hits += 1
            return self.service.hit_s * self.service_factor
        self.stats.cache_misses += 1
        cache[key] = None
        if len(cache) > self.service.cache_capacity:
            cache.popitem(last=False)
        return base

    def _complete(self, server: _MemberServer, op: _Op) -> None:
        server.outstanding.pop(op.seq, None)
        self.stats.completed += 1
        self.stats.latencies.append(
            self.kernel.clock.now() - op.arrival_s
        )

    # -- faults ----------------------------------------------------------

    def on_members_lost(
        self,
        member_keys: list[MemberKey],
        reconnect_delay_s: float = 0.05,
        reconnect_spread_s: float = 1.0,
        herd_burst: int = 0,
    ) -> int:
        """Model the client side of a member crash.

        Every operation in flight on a lost member is cancelled and
        re-dispatched (the reconnect), jittered over
        ``reconnect_spread_s`` after ``reconnect_delay_s``; its latency
        clock keeps running from the original arrival.  ``herd_burst``
        injects that many *fresh* arrivals over the same spread — the
        thundering herd of disconnected clients all retrying at once.
        Returns the number of operations re-dispatched.
        """
        moved: list[_Op] = []
        for key in member_keys:
            server = self._servers.pop(key, None)
            if server is None:
                continue
            for op in server.outstanding.values():
                if op.timer is not None:
                    op.timer.cancel()
                op.attempts += 1
                moved.append(op)
        self.stats.redispatched += len(moved)
        for op in moved:
            delay = reconnect_delay_s + self._rng.uniform(
                0.0, reconnect_spread_s
            )
            self.kernel.call_after(
                delay, lambda op=op: self._dispatch(op)
            )
        for _ in range(herd_burst):
            delay = reconnect_delay_s + self._rng.uniform(
                0.0, reconnect_spread_s
            )
            self.kernel.call_after(delay, self._herd_arrive)
        return len(moved)

    # -- utilization feedback --------------------------------------------

    def busy(self, member_key: MemberKey) -> bool:
        """Is the member's modeled server busy at virtual now?

        Sampled every second into each member's
        :class:`~repro.core.monitor.ManualUtilization` (as 0 or 100),
        the pool's monitoring window averages these into a busy
        *fraction* — classic utilization sampling, which is what the
        coarse-grained policy's CPU thresholds expect.
        """
        server = self._servers.get(member_key)
        if server is None:
            return False
        return server.busy_until > self.kernel.clock.now()

    def utilization_pct(self, member_key: MemberKey) -> float:
        return 100.0 if self.busy(member_key) else 0.0

    def backlog_s(self, member_key: MemberKey) -> float:
        """Seconds of queued work ahead of a new arrival on the member."""
        server = self._servers.get(member_key)
        if server is None:
            return 0.0
        return max(0.0, server.busy_until - self.kernel.clock.now())


class LiveLoadDriver:
    """Wall-clock open-loop driver against a live runtime stub.

    Paces the same seeded arrival stream in real time and fires each
    operation through ``stub.invoke_async`` without waiting for earlier
    completions (open loop); latencies are measured issue-to-callback.
    The asyncio transport's single event loop is what makes the
    resulting in-flight counts sustainable (PR 5).
    """

    def __init__(
        self,
        stub: Any,
        pattern: WorkloadPattern,
        rng: random.Random,
        method: str = "op",
        key_sampler: Callable[[random.Random], str] | None = None,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self.stub = stub
        self.pattern = pattern
        self.method = method
        self.key_sampler = key_sampler
        self.drain_timeout_s = drain_timeout_s
        self.stats = EngineStats()
        self.errors = 0
        self._rng = rng

    def run(self, duration_s: float | None = None) -> EngineStats:
        """Issue the full arrival stream, then wait for stragglers."""
        if duration_s is None:
            duration_s = self.pattern.duration_s
        gen = ArrivalGenerator(self.pattern, self._rng)
        times = gen.arrival_times(
            0.0, duration_s, peak=gen.peak_rate(resolution_s=0.5)
        )
        latencies = self.stats.latencies
        futures = []
        started = time.perf_counter()
        for at in times:
            delay = started + at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            key = (
                self.key_sampler(self._rng) if self.key_sampler else ""
            )
            issued = time.perf_counter()
            try:
                future = self.stub.invoke_async(self.method, key)
            except Exception:
                self.errors += 1
                continue
            self.stats.arrivals += 1
            future.add_done_callback(
                lambda f, issued=issued: latencies.append(
                    time.perf_counter() - issued
                )
            )
            futures.append(future)
        deadline = time.perf_counter() + self.drain_timeout_s
        for future in futures:
            remaining = max(0.01, deadline - time.perf_counter())
            try:
                future.result(timeout=remaining)
                self.stats.completed += 1
            except Exception:
                self.errors += 1
        return self.stats
