"""The ``scenario`` bench suite: one ``BENCH_scenario_*.json`` per
scenario, regression-gated in CI.

Unlike the wall-clock suites, scenario reports are **deterministic**:
every metric is virtual-time (identical on any machine for a given
seed), so reports carry no environment stamps, replay byte-identically,
and the regression gate compares raw values — no normalization anchor
needed.  A drift outside tolerance means the PR changed the *modeled
system's* behavior at scale (tail latency, throughput, elasticity), not
that the runner got a slower machine.
"""

from __future__ import annotations

import os
from typing import Any

from repro.experiments.benchreport import (
    CompareResult,
    bench_scale,
    build_report,
    compare_reports,
    load_report,
    write_report,
)
from repro.scenarios.catalog import SCENARIOS
from repro.scenarios.runner import ScenarioResult, run_scenario

SUITE = "scenario"


def scenario_report_name(name: str) -> str:
    return f"BENCH_scenario_{name.replace('-', '_')}.json"


def scenario_report_path(out_dir: str, name: str) -> str:
    return os.path.join(out_dir, scenario_report_name(name))


def run_scenario_suite(
    scale: float | None = None,
    out_dir: str | None = None,
    names: list[str] | None = None,
    seed: int | None = None,
) -> list[tuple[str, ScenarioResult, dict[str, Any]]]:
    """Run the matrix (or ``names``); write one report per scenario when
    ``out_dir`` is given.  ``scale`` defaults to ``ERMI_BENCH_SCALE``.
    Returns (name, result, report doc) triples."""
    if scale is None:
        scale = bench_scale()
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    out: list[tuple[str, ScenarioResult, dict[str, Any]]] = []
    for name in names or list(SCENARIOS):
        result = run_scenario(name, seed=seed, scale=scale)
        records, extra = result.bench_records()
        if out_dir is not None:
            doc = write_report(
                scenario_report_path(out_dir, name),
                SUITE,
                records,
                extra=extra,
                deterministic=True,
            )
        else:
            doc = build_report(
                SUITE, records, extra=extra, deterministic=True
            )
        out.append((name, result, doc))
    return out


def _latency_drift(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance: float,
) -> list[str]:
    """Per-record tail-latency regressions (p50/p99 grew > tolerance).

    The generic gate compares throughput only; for scenarios the
    deterministic virtual-time percentiles are the headline metric, so
    upward drift is gated at the same tolerance.  (Downward drift — an
    improvement — passes; refresh the baseline to lock it in.)
    """
    base = {r["name"]: r for r in baseline.get("records", [])}
    cur = {r["name"]: r for r in current.get("records", [])}
    problems = []
    for name, base_record in base.items():
        record = cur.get(name)
        if record is None:
            continue  # compare_reports already reports it as missing
        for field in ("p50_us", "p99_us"):
            base_value = float(base_record[field])
            if base_value <= 0:
                continue
            delta = (float(record[field]) - base_value) / base_value
            if delta > tolerance:
                problems.append(
                    f"{name} {field} {base_value:.1f} -> "
                    f"{float(record[field]):.1f} ({delta:+.1%})  REGRESSION"
                )
    return problems


def check_scenario_reports(
    results: list[tuple[str, ScenarioResult, dict[str, Any]]],
    baseline_dir: str,
    tolerance: float = 0.30,
) -> tuple[bool, list[str]]:
    """Compare each scenario's run against its committed baseline.

    Raw comparison on throughput plus tail-latency drift (see module
    docstring).  A missing baseline file is a failure: every scenario
    in the matrix must be committed.
    """
    ok = True
    lines: list[str] = []
    for name, _result, doc in results:
        path = scenario_report_path(baseline_dir, name)
        lines.append(f"--- scenario {name} vs {path}")
        if not os.path.exists(path):
            lines.append(f"baseline missing: {path}")
            ok = False
            continue
        baseline = load_report(path)
        outcome: CompareResult = compare_reports(
            baseline, doc, tolerance=tolerance, normalize=False
        )
        lines.extend(outcome.lines)
        drift = _latency_drift(baseline, doc, tolerance)
        lines.extend(drift)
        if not outcome.ok or drift:
            ok = False
    return ok, lines
