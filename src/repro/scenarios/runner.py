"""Run one scenario against the elastic runtime and grade the result.

The simulated path is the replay contract: a :class:`ScenarioSpec` plus
a seed fully determines the run.  Everything shares one
:class:`~repro.sim.kernel.Kernel` — the runtime's sampling/scaling/repair
ticks, the provisioner's jittered container starts, the fault schedule,
and each tenant's :class:`~repro.scenarios.engine.OpenLoopEngine` — and
every random draw comes from a named :class:`~repro.sim.rng.RngStreams`
substream, so two runs with the same seed produce byte-identical
``repro.obs/v1`` summaries (the CI ``scenario-replay`` gate) and
byte-identical ``BENCH_scenario_*.json`` reports (all metrics are
virtual-time, hence machine-independent).

Elasticity is closed-loop even though the load is open-loop: each
second the runner samples every member's modeled server (busy/idle)
into its :class:`~repro.core.monitor.ManualUtilization`; the pool's
monitoring window averages those samples into the busy fraction the
coarse-grained policy thresholds against, and scaling decisions feed
back into the engine through its live routing table.  Ground-truth
capacity demand (the paper's req_min) is emitted as ``agility-sample``
trace events on the scenario's sample cadence.

Live mode replays the same arrival stream wall-clock against
``ElasticRuntime.local(transport="asyncio")``, time-compressed so a
long virtual trace fits in a few seconds; it supports single-tenant,
fault-free scenarios and makes no determinism promise.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.provisioner import ContainerProvisioner
from repro.core.api import ElasticObject
from repro.core.monitor import ManualUtilization
from repro.core.pool import ElasticObjectPool, PoolMember
from repro.core.runtime import ElasticRuntime
from repro.experiments.benchreport import BenchRecord, percentile
from repro.faults.injector import FaultInjector
from repro.kvstore.store import HyperStore
from repro.metrics.agility import AgilityTracker
from repro.obs import Observability
from repro.obs.export import summarize_trace
from repro.scenarios.catalog import (
    ScenarioSpec,
    TenantSpec,
    get_scenario,
    zipf_sampler,
)
from repro.scenarios.engine import (
    EngineStats,
    LiveLoadDriver,
    OpenLoopEngine,
    ServiceModel,
)
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.workloads.patterns import CompressedPattern, ScaledPattern

UTILIZATION_TICK_S = 1.0


class ScenarioError(Exception):
    """A scenario cannot run as requested."""


def _service_model(tenant: TenantSpec) -> ServiceModel:
    svc = tenant.service
    return ServiceModel(
        base_s=svc.base_s,
        hit_s=svc.hit_s,
        cache_capacity=svc.cache_capacity,
        target_utilization=svc.target_utilization,
        nominal_s=svc.nominal_s,
    )


def _worker_class(tenant: TenantSpec) -> type[ElasticObject]:
    """An ElasticObject subclass carrying the tenant's pool thresholds."""
    pool = tenant.pool

    class ScenarioWorker(ElasticObject):
        def __init__(self) -> None:
            super().__init__()
            self.set_min_pool_size(pool.min_size)
            self.set_max_pool_size(pool.max_size)
            self.set_burst_interval(pool.burst_interval_s)
            self.set_cpu_incr_threshold(pool.cpu_incr)
            self.set_cpu_decr_threshold(pool.cpu_decr)

        def op(self, key: str) -> str:
            return key

    ScenarioWorker.__name__ = f"ScenarioWorker[{tenant.name}]"
    return ScenarioWorker


@dataclass
class TenantResult:
    """One tenant's outcome."""

    name: str
    app: str
    stats: EngineStats
    agility: AgilityTracker
    final_size: int
    final_sizes: list[int]  # per shard (length 1 for flat pools)
    base_service_s: float   # scaled: the run's actual per-op cost
    qos_max_p99_x: float
    qos_min_completion: float

    def latency_summary(self) -> dict[str, Any]:
        lat = self.stats.latencies
        return {
            "count": len(lat),
            "mean_ms": round(
                (sum(lat) / len(lat) if lat else 0.0) * 1e3, 6
            ),
            "p50_ms": round(percentile(lat, 0.50) * 1e3, 6),
            "p99_ms": round(percentile(lat, 0.99) * 1e3, 6),
            "p999_ms": round(percentile(lat, 0.999) * 1e3, 6),
            "max_ms": round(max(lat, default=0.0) * 1e3, 6),
        }

    def completion_ratio(self) -> float:
        if self.stats.arrivals == 0:
            return 1.0
        return self.stats.completed / self.stats.arrivals

    def qos_met(self) -> bool:
        p99 = percentile(self.stats.latencies, 0.99)
        bound = self.qos_max_p99_x * self.base_service_s
        return (
            p99 <= bound
            and self.completion_ratio() >= self.qos_min_completion
        )


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    spec: ScenarioSpec
    seed: int
    scale: float
    mode: str
    tenants: dict[str, TenantResult]
    events: list[Any]
    dropped: int
    metrics: dict[str, Any]

    # -- aggregates ------------------------------------------------------

    def merged_latencies(self) -> list[float]:
        merged: list[float] = []
        for tenant in self.tenants.values():
            merged.extend(tenant.stats.latencies)
        return merged

    def total(self, field_name: str) -> int:
        return sum(
            getattr(t.stats, field_name) for t in self.tenants.values()
        )

    def qos_met(self) -> bool:
        return all(t.qos_met() for t in self.tenants.values())

    def average_agility(self) -> float:
        values = [
            t.agility.average_agility() for t in self.tenants.values()
        ]
        return sum(values) / len(values) if values else 0.0

    # -- the repro.obs/v1 summary ---------------------------------------

    def summary(self) -> dict[str, Any]:
        doc = summarize_trace(
            self.events,
            seed=self.seed,
            dropped=self.dropped,
            metrics=self.metrics,
        )
        lat = self.merged_latencies()
        arrivals = self.total("arrivals")
        completed = self.total("completed")
        doc["latency"] = {
            "count": len(lat),
            "mean_ms": round(
                (sum(lat) / len(lat) if lat else 0.0) * 1e3, 6
            ),
            "p50_ms": round(percentile(lat, 0.50) * 1e3, 6),
            "p99_ms": round(percentile(lat, 0.99) * 1e3, 6),
            "p999_ms": round(percentile(lat, 0.999) * 1e3, 6),
            "max_ms": round(max(lat, default=0.0) * 1e3, 6),
        }
        doc["qos"] = {
            "offered": arrivals,
            "completed": completed,
            "completion_ratio": round(
                completed / arrivals if arrivals else 1.0, 6
            ),
            "throughput_ops_s": round(
                completed / self.spec.duration_s, 6
            ),
            "met": self.qos_met(),
        }
        doc["scenario"] = {
            "name": self.spec.name,
            "title": self.spec.title,
            "mode": self.mode,
            "scale": self.scale,
            "users": self.spec.users,
            "duration_s": self.spec.duration_s,
            "drain_s": self.spec.drain_s,
            "redispatched": self.total("redispatched"),
            "herd_arrivals": self.total("herd_arrivals"),
            "average_agility": round(self.average_agility(), 6),
            "tenants": {
                name: {
                    "app": t.app,
                    "arrivals": t.stats.arrivals,
                    "completed": t.stats.completed,
                    "completion_ratio": round(t.completion_ratio(), 6),
                    "cache_hit_rate": round(
                        t.stats.cache_hit_rate(), 6
                    ),
                    "latency": t.latency_summary(),
                    "average_agility": round(
                        t.agility.average_agility(), 6
                    ),
                    "qos_met": t.qos_met(),
                    "final_sizes": t.final_sizes,
                }
                for name, t in sorted(self.tenants.items())
            },
        }
        return doc

    def summary_json(self) -> str:
        return json.dumps(self.summary(), indent=2, sort_keys=True)

    def describe(self) -> str:
        lat = self.merged_latencies()
        sizes = {
            name: t.final_sizes for name, t in sorted(self.tenants.items())
        }
        return (
            f"scenario {self.spec.name} seed={self.seed} "
            f"scale={self.scale:g} mode={self.mode}: "
            f"{self.total('arrivals')} arrivals, "
            f"{self.total('completed')} completed, "
            f"p50={percentile(lat, 0.5) * 1e3:.1f}ms "
            f"p99={percentile(lat, 0.99) * 1e3:.1f}ms "
            f"p999={percentile(lat, 0.999) * 1e3:.1f}ms, "
            f"agility={self.average_agility():.2f}, "
            f"qos={'met' if self.qos_met() else 'MISSED'}, "
            f"final sizes {sizes}"
        )

    # -- bench records ---------------------------------------------------

    def bench_records(
        self,
    ) -> tuple[list[BenchRecord], dict[str, Any]]:
        """Virtual-time BenchRecords + extra doc for ``BENCH_scenario_*``.

        ``calls_per_sec`` and the latency percentiles are virtual-time
        quantities: deterministic for a seed and identical on any
        machine, which is why the scenario regression gate compares
        them raw (no normalization anchor needed).
        """
        records = [self._record(None)]
        if len(self.tenants) > 1:
            for name in sorted(self.tenants):
                records.append(self._record(name))
        extra = {
            "seed": self.seed,
            "scale": self.scale,
            "mode": self.mode,
            "users": self.spec.users,
            "qos_met": self.qos_met(),
            "average_agility": round(self.average_agility(), 6),
            "redispatched": self.total("redispatched"),
            "herd_arrivals": self.total("herd_arrivals"),
            "final_sizes": {
                name: t.final_sizes
                for name, t in sorted(self.tenants.items())
            },
        }
        return records, extra

    def _record(self, tenant_name: str | None) -> BenchRecord:
        if tenant_name is None:
            name = f"scenario-{self.spec.name}"
            lat = self.merged_latencies()
            completed = self.total("completed")
            arrivals = self.total("arrivals")
        else:
            tenant = self.tenants[tenant_name]
            name = f"scenario-{self.spec.name}-{tenant_name}"
            lat = tenant.stats.latencies
            completed = tenant.stats.completed
            arrivals = tenant.stats.arrivals
        duration = self.spec.duration_s
        return BenchRecord(
            name=name,
            config={
                "mode": self.mode,
                "scale": self.scale,
                "seed": self.seed,
                "duration_s": duration,
                "arrivals": arrivals,
            },
            calls=completed,
            elapsed_s=round(duration, 6),
            calls_per_sec=round(completed / duration, 6),
            p50_us=round(percentile(lat, 0.50) * 1e6, 3),
            p99_us=round(percentile(lat, 0.99) * 1e6, 3),
            mean_us=round(
                (sum(lat) / len(lat) if lat else 0.0) * 1e6, 3
            ),
        )


# ----------------------------------------------------------------------
# the simulated path
# ----------------------------------------------------------------------


@dataclass
class _TenantRun:
    """Wiring for one tenant inside a running scenario."""

    spec: TenantSpec
    engine: OpenLoopEngine
    agility: AgilityTracker
    pools: list[ElasticObjectPool]   # one per shard (one for flat)
    sharded: Any                     # ShardedElasticPool | None

    def flat_members(self) -> list[tuple[tuple[str, int], PoolMember]]:
        """(member_key, member) for every active member, shard order."""
        out = []
        for pool in self.pools:
            for member in pool.active_members():
                out.append(((pool.name, member.uid), member))
        return out

    def provisioned_size(self) -> int:
        return sum(pool.provisioned_size() for pool in self.pools)

    def total_min(self) -> int:
        return self.spec.pool.total_min()

    def sizes(self) -> list[int]:
        return [pool.size() for pool in self.pools]


def _build_tenant(
    runtime: ElasticRuntime,
    kernel: Kernel,
    streams: RngStreams,
    spec: ScenarioSpec,
    tenant: TenantSpec,
    scale: float,
) -> _TenantRun:
    worker = _worker_class(tenant)
    sharded = None
    if tenant.pool.shards > 1:
        sharded = runtime.new_sharded_pool(
            worker, name=tenant.name, shards=tenant.pool.shards
        )
        pools = list(sharded.shards)
    else:
        pools = [runtime.new_pool(worker, name=tenant.name)]

    def members_fn() -> list[tuple[tuple[str, int], int]]:
        table = []
        for index, pool in enumerate(pools):
            for member in pool.active_members():
                table.append(((pool.name, member.uid), index))
        return table

    shard_for = None
    if sharded is not None and tenant.keys is not None and tenant.keys.affinity:
        shard_for = sharded.shard_for
    key_sampler = None
    if tenant.keys is not None:
        key_sampler = zipf_sampler(tenant.keys.keys, tenant.keys.zipf_s)

    engine = OpenLoopEngine(
        kernel,
        tenant.pattern(),
        _service_model(tenant),
        streams.stream(f"load:{tenant.name}"),
        members_fn,
        shard_for=shard_for,
        key_sampler=key_sampler,
        rate_factor=scale,
        service_factor=1.0 / scale,
    )
    return _TenantRun(
        spec=tenant,
        engine=engine,
        agility=AgilityTracker(),
        pools=pools,
        sharded=sharded,
    )


def _schedule_faults(
    runtime: ElasticRuntime,
    injector: FaultInjector,
    run: _TenantRun,
    spec: ScenarioSpec,
    scale: float,
) -> None:
    for fault in run.spec.faults:
        def fire(fault=fault, run=run) -> None:
            members = run.flat_members()
            victims = members[: fault.kill_members]
            for _, member in victims:
                if member.endpoint_id is not None:
                    runtime.transport.kill(member.endpoint_id)
            herd = int(round(
                fault.herd_burst * spec.model_factor * scale
            ))
            moved = run.engine.on_members_lost(
                [key for key, _ in victims],
                reconnect_delay_s=fault.reconnect_delay_s,
                reconnect_spread_s=fault.reconnect_spread_s,
                herd_burst=herd,
            )
            injector.record(
                "member-crash",
                f"tenant={run.spec.name} "
                f"uids={[m.uid for _, m in victims]} "
                f"reconnects={moved} herd={herd}",
            )

        injector.schedule(fault.at_s, fire)


def _run_sim(
    spec: ScenarioSpec, seed: int, scale: float
) -> ScenarioResult:
    kernel = Kernel()
    streams = RngStreams(seed)
    obs = Observability(clock=kernel.clock)
    runtime = ElasticRuntime.simulated(
        kernel,
        nodes=spec.nodes,
        slices_per_node=spec.slices_per_node,
        provisioner=ContainerProvisioner(
            streams.stream("provisioner"),
            base_s=1.0,
            slope_s=2.0,
            jitter_s=0.25,
            cap_s=4.0,
        ),
        rng=streams,
        store=HyperStore(nodes=3),
        failure_check_interval=1.0,
        observability=obs,
    )
    injector = FaultInjector(
        runtime, rng=streams.stream("injector")
    ).install()
    runs = [
        _build_tenant(runtime, kernel, streams, spec, tenant, scale)
        for tenant in spec.tenants
    ]
    for run in runs:
        run.engine.start(until=spec.duration_s)
        _schedule_faults(runtime, injector, run, spec, scale)

    horizon = spec.duration_s + spec.drain_s

    def utilization_tick() -> None:
        # The modeled servers' busy/idle state feeds the pools'
        # monitoring windows; averaged over the burst interval this is
        # the busy fraction the CPU thresholds compare against.
        for run in runs:
            for key, member in run.flat_members():
                if isinstance(member.utilization, ManualUtilization):
                    member.utilization.set(
                        run.engine.utilization_pct(key)
                    )
        if kernel.clock.now() + UTILIZATION_TICK_S <= horizon:
            kernel.call_after(UTILIZATION_TICK_S, utilization_tick)

    kernel.call_at(0.0, utilization_tick)

    def agility_tick() -> None:
        now = kernel.clock.now()
        for run in runs:
            rate = (
                run.engine.offered_rate(now)
                if now <= spec.duration_s
                else 0.0
            )
            req_min = max(
                run.total_min(),
                math.ceil(rate / run.engine.capacity_per_member()),
            )
            cap_prov = run.provisioned_size()
            run.agility.record(now, cap_prov, req_min)
            obs.tracer.emit(
                "metrics",
                "agility-sample",
                cap_prov=cap_prov,
                req_min=req_min,
                tenant=run.spec.name,
            )
            obs.registry.gauge(
                f"scenario.offered.{run.spec.name}"
            ).set(round(rate, 6), at=now)
        if now + spec.sample_interval_s <= horizon:
            kernel.call_after(spec.sample_interval_s, agility_tick)

    kernel.call_at(0.0, agility_tick)

    kernel.run_until(horizon)

    # Snapshot before shutdown: teardown drains members and would
    # append events that belong to no phase of the scenario.
    events = list(obs.tracer.events())
    dropped = obs.tracer.dropped()
    metrics = obs.registry.snapshot()
    tenants = {
        run.spec.name: TenantResult(
            name=run.spec.name,
            app=run.spec.app,
            stats=run.engine.stats,
            agility=run.agility,
            final_size=sum(run.sizes()),
            final_sizes=run.sizes(),
            base_service_s=run.spec.service.base_s / scale,
            qos_max_p99_x=run.spec.qos.max_p99_x_service,
            qos_min_completion=run.spec.qos.min_completion,
        )
        for run in runs
    }
    injector.uninstall()
    runtime.shutdown()
    return ScenarioResult(
        spec=spec,
        seed=seed,
        scale=scale,
        mode="sim",
        tenants=tenants,
        events=events,
        dropped=dropped,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# the live path
# ----------------------------------------------------------------------


def _run_live(
    spec: ScenarioSpec,
    seed: int,
    scale: float,
    live_duration_s: float,
    transport: str = "asyncio",
) -> ScenarioResult:
    if len(spec.tenants) != 1 or spec.tenants[0].faults:
        raise ScenarioError(
            "live mode supports single-tenant, fault-free scenarios; "
            f"{spec.name!r} is not one"
        )
    tenant = spec.tenants[0]
    if tenant.pool.shards > 1:
        raise ScenarioError("live mode runs on flat pools only")
    compress = spec.duration_s / live_duration_s
    pattern = CompressedPattern(
        ScaledPattern(tenant.pattern(), scale), compress
    )
    service_s = tenant.service.base_s / scale

    class LiveWorker(ElasticObject):
        def __init__(self) -> None:
            super().__init__()
            self.set_min_pool_size(tenant.pool.min_size)
            self.set_max_pool_size(tenant.pool.max_size)
            self.set_burst_interval(tenant.pool.burst_interval_s)
            self.set_cpu_incr_threshold(tenant.pool.cpu_incr)
            self.set_cpu_decr_threshold(tenant.pool.cpu_decr)

        async def op(self, key: str) -> str:
            import asyncio

            await asyncio.sleep(service_s)
            return key

    runtime = ElasticRuntime.local(
        nodes=spec.nodes,
        slices_per_node=spec.slices_per_node,
        seed=seed,
        transport=transport,
    )
    try:
        pool = runtime.new_pool(LiveWorker, name=tenant.name)
        stub = runtime.stub(tenant.name, caller="scenario-live")
        key_sampler = None
        if tenant.keys is not None:
            key_sampler = zipf_sampler(
                tenant.keys.keys, tenant.keys.zipf_s
            )
        driver = LiveLoadDriver(
            stub,
            pattern,
            RngStreams(seed).stream(f"load:{tenant.name}"),
            key_sampler=key_sampler,
        )
        stats = driver.run(live_duration_s)
        final_sizes = [pool.size()]
    finally:
        runtime.shutdown()
    result_spec = ScenarioSpec(
        name=spec.name,
        title=spec.title,
        users=spec.users,
        ops_per_user_s=spec.ops_per_user_s,
        model_factor=spec.model_factor,
        duration_s=live_duration_s,
        tenants=spec.tenants,
        seed=seed,
        drain_s=0.0,
        sample_interval_s=spec.sample_interval_s,
        nodes=spec.nodes,
        slices_per_node=spec.slices_per_node,
    )
    tenants = {
        tenant.name: TenantResult(
            name=tenant.name,
            app=tenant.app,
            stats=stats,
            agility=AgilityTracker(),
            final_size=final_sizes[0],
            final_sizes=final_sizes,
            base_service_s=service_s,
            qos_max_p99_x=tenant.qos.max_p99_x_service,
            qos_min_completion=tenant.qos.min_completion,
        )
    }
    return ScenarioResult(
        spec=result_spec,
        seed=seed,
        scale=scale,
        mode="live",
        tenants=tenants,
        events=[],
        dropped=0,
        metrics={},
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec | str,
    seed: int | None = None,
    scale: float = 1.0,
    mode: str = "sim",
    live_duration_s: float = 8.0,
) -> ScenarioResult:
    """Run one scenario; deterministic in ``(spec, seed, scale)`` for
    ``mode="sim"``.

    ``scale`` < 1 shrinks the simulated event count without changing the
    dynamics: offered rate is multiplied by ``scale`` and per-operation
    service time divided by it, so utilization, req_min, and pool-size
    trajectories are unchanged while arrivals (and wall-clock cost)
    scale down — the ``bench-smoke`` configuration.
    """
    if isinstance(spec, str):
        spec = get_scenario(spec)
    if seed is None:
        seed = spec.seed
    if scale <= 0:
        raise ScenarioError(f"scale must be positive: {scale}")
    if mode == "sim":
        return _run_sim(spec, seed, scale)
    if mode == "live":
        return _run_live(spec, seed, scale, live_duration_s)
    raise ScenarioError(f"unknown mode {mode!r} (sim or live)")
