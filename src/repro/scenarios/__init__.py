"""Open-loop load scenarios: the million-user elasticity benchmark.

ROADMAP item 3 realized: a reusable open-loop engine
(:mod:`repro.scenarios.engine`) drives arrival-rate-determined load —
virtual-time accurate on the simulation kernel, wall-clock accurate in
live mode — through a seeded, replayable scenario matrix
(:mod:`repro.scenarios.catalog`): diurnal cycle, flash crowd,
thundering-herd reconnect, zipfian hot-key skew on sharded pools, and
mixed multi-app tenancy on one cluster.  Each run emits a
``repro.obs/v1`` summary with tail-latency, agility, and QoS sections
(:mod:`repro.scenarios.runner`) and feeds the committed
``BENCH_scenario_*.json`` baselines the CI gate compares against
(:mod:`repro.scenarios.bench`).

Entry points: ``python -m repro scenario <name>`` and
``python -m repro bench --suite scenario``.
"""

from repro.scenarios.catalog import (
    SCENARIOS,
    FaultSpec,
    KeySpec,
    PoolSpec,
    QoSSpec,
    ScenarioSpec,
    ServiceSpec,
    TenantSpec,
    get_scenario,
    zipf_sampler,
)
from repro.scenarios.engine import (
    EngineStats,
    LiveLoadDriver,
    OpenLoopEngine,
    ServiceModel,
)
from repro.scenarios.runner import (
    ScenarioError,
    ScenarioResult,
    TenantResult,
    run_scenario,
)

__all__ = [
    "EngineStats",
    "FaultSpec",
    "KeySpec",
    "LiveLoadDriver",
    "OpenLoopEngine",
    "PoolSpec",
    "QoSSpec",
    "SCENARIOS",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "ServiceModel",
    "ServiceSpec",
    "TenantResult",
    "TenantSpec",
    "get_scenario",
    "run_scenario",
    "zipf_sampler",
]
