"""The seeded traced scenario behind ``python -m repro trace``.

A deterministic simulated run instrumented end to end with one
:class:`~repro.obs.Observability`: an elastic pool rides a scripted load
curve (grow under load, shrink when it fades), a client pings it through
the retrying :class:`~repro.core.balancer.ElasticStub`, a second client
issues pipelined ``invoke_async`` bursts through an explicit
:class:`~repro.rmi.batching.RequestBatcher` (so the summary's
"batching" section is populated), a lock-guarded
counter method exercises the distributed lock manager, and mid-run the
*sentinel* and its two lowest-uid neighbours are crashed so the trace
captures failure detection, reaping, re-election, recovery growth, and
masked client retries.  Three adjacent victims with detection on a 1 s
cadence make a client-visible dead hit (and therefore ``retry`` events)
structurally certain, not seed-dependent: at most two of the stub's
round-robin slots stay alive, and several pings land inside the window.

Everything runs on a :class:`~repro.sim.kernel.Kernel` with the tracer
clocked by the kernel's virtual clock, so two runs with the same seed
produce **byte-identical** JSONL traces (the CI ``obs-smoke`` gate).
Events carry logical identities only — member uids, node names, endpoint
names — never process-global counters.

Kept out of :mod:`repro.obs`'s namespace because it imports
:mod:`repro.core` (same layering rule as :mod:`repro.faults.scenario`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.cluster.provisioner import ContainerProvisioner
from repro.core.api import ElasticObject
from repro.core.monitor import ManualUtilization
from repro.core.runtime import ElasticRuntime
from repro.faults.injector import FaultInjector
from repro.kvstore.store import HyperStore
from repro.obs import Observability
from repro.obs.export import summarize_trace, to_jsonl
from repro.rmi.batching import RequestBatcher
from repro.rmi.future import gather
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams

POOL_NAME = "obs"
POOL_MIN = 2
POOL_MAX = 8
BURST_INTERVAL = 5.0

# The batched client: every BATCH_TICK seconds it issues BATCH_WINDOW
# pipelined ``invoke_async`` pings and gathers them, so each burst
# coalesces into batch wire messages (BATCH_WINDOW < BATCH_MAX keeps the
# final flush on the gather's wait hook — the deferred discipline the
# summary's "batching" section measures).
BATCH_WINDOW = 6
BATCH_MAX = 8
BATCH_TICK = 1.0

# The scripted load curve: (start time, member CPU %, members required).
# ``required`` is the ground-truth demand the agility samples compare
# provisioned capacity against (the paper's req_min).
PHASES = (
    (0.0, 30.0, 2),
    (20.0, 95.0, 5),
    (65.0, 10.0, 2),
)


class ObsWorkload(ElasticObject):
    """Echo plus a lock-guarded shared counter, so the trace shows both
    the invocation path and the lock/store substrates."""

    def __init__(self) -> None:
        super().__init__()
        self.set_min_pool_size(POOL_MIN)
        self.set_max_pool_size(POOL_MAX)
        self.set_burst_interval(BURST_INTERVAL)
        self.set_cpu_incr_threshold(90.0)
        self.set_cpu_decr_threshold(40.0)

    def ping(self, value: int) -> int:
        return value

    def bump(self) -> int:
        """Increment a shared counter under the distributed lock —
        the preprocessor's ``synchronized`` expansion, written out."""
        ctx = self._ermi_ctx
        owner = ctx.lock_owner_id()
        ctx.locks.lock(f"{POOL_NAME}-counter", owner)
        try:
            return ctx.store.update(
                f"{POOL_NAME}$counter", lambda v: (v or 0) + 1, default=0
            )
        finally:
            ctx.locks.unlock(f"{POOL_NAME}-counter", owner)


def _phase_at(now: float) -> tuple[float, int]:
    """(cpu%, members required) for the scripted instant ``now``."""
    cpu, required = PHASES[0][1], PHASES[0][2]
    for start, phase_cpu, phase_req in PHASES:
        if now >= start:
            cpu, required = phase_cpu, phase_req
    return cpu, required


@dataclass
class TracedRun:
    """Everything ``python -m repro trace`` needs from one run."""

    seed: int
    duration: float
    events: list[Any]               # TraceEvent, in seq order
    dropped: int
    metrics: dict[str, Any]         # MetricsRegistry.snapshot()
    client: dict[str, int]
    final_size: int

    def to_jsonl(self) -> str:
        return to_jsonl(self.events)

    def summary(self) -> dict[str, Any]:
        return summarize_trace(
            self.events,
            seed=self.seed,
            dropped=self.dropped,
            metrics=self.metrics,
        )

    def summary_json(self) -> str:
        return json.dumps(self.summary(), indent=2, sort_keys=True)

    def describe(self) -> str:
        counts = self.summary()["counts"]
        return (
            f"trace seed={self.seed}: {len(self.events)} events, "
            f"{self.client['calls']} calls "
            f"({self.client['errors']} errors), "
            f"{counts.get('retry', 0)} retries, "
            f"final pool size {self.final_size}"
        )


def run_traced_scenario(
    seed: int = 0,
    duration: float = 90.0,
    fault_at: float = 55.1,
    client_interval: float = 0.25,
    sample_interval: float = 1.0,
) -> TracedRun:
    """Run the traced scenario once; deterministic in ``seed``."""
    if duration <= fault_at:
        raise ValueError(f"duration {duration} must exceed fault_at {fault_at}")
    kernel = Kernel()
    rng = RngStreams(seed)
    obs = Observability(clock=kernel.clock)
    runtime = ElasticRuntime.simulated(
        kernel,
        nodes=6,
        slices_per_node=4,
        provisioner=ContainerProvisioner(
            rng.stream("provisioner"),
            base_s=1.0,
            slope_s=2.0,
            jitter_s=0.25,
            cap_s=4.0,
        ),
        rng=rng,
        store=HyperStore(nodes=3),
        failure_check_interval=1.0,
        observability=obs,
    )
    pool = runtime.new_pool(ObsWorkload, name=POOL_NAME)
    injector = FaultInjector(runtime, rng=rng.stream("injector")).install()
    stub = runtime.stub(POOL_NAME, caller="obs-client")
    # A second, batched client: its pings coalesce through an explicit
    # RequestBatcher (env-independent, so traces don't vary with
    # ERMI_BATCH_* settings) wired to the same Observability — every
    # flushed wire message emits a ``batch`` event the summary folds
    # into its "batching" section.
    batch_stub = runtime.stub(
        POOL_NAME,
        caller="obs-batch",
        batcher=RequestBatcher(
            runtime.transport,
            max_batch=BATCH_MAX,
            linger=0.0,
            caller="obs-batch",
            obs=obs,
        ),
    )

    client = {"calls": 0, "errors": 0, "wrong_results": 0, "batched": 0}

    def tick_client() -> None:
        client["calls"] += 1
        seqno = client["calls"]
        try:
            # Alternate the pure echo with the lock-guarded counter so
            # both code paths appear in every trace.
            if seqno % 4 == 0:
                stub.bump()
            elif stub.ping(seqno) != seqno:
                client["wrong_results"] += 1
        except Exception:
            client["errors"] += 1
        if kernel.clock.now() + client_interval <= duration:
            kernel.call_after(client_interval, tick_client)

    kernel.call_at(2.0, tick_client)

    def tick_batch() -> None:
        base = client["batched"]
        futures = [
            batch_stub.invoke_async("ping", base + j)
            for j in range(BATCH_WINDOW)
        ]
        client["batched"] += BATCH_WINDOW
        try:
            results = gather(futures)
            if results != [base + j for j in range(BATCH_WINDOW)]:
                client["wrong_results"] += 1
        except Exception:
            client["errors"] += 1
        if kernel.clock.now() + BATCH_TICK <= duration:
            kernel.call_after(BATCH_TICK, tick_batch)

    kernel.call_at(3.0, tick_batch)

    def drive_load() -> None:
        now = kernel.clock.now()
        cpu, required = _phase_at(now)
        for member in pool.active_members():
            if isinstance(member.utilization, ManualUtilization):
                member.utilization.set(cpu)
        obs.tracer.emit(
            "metrics", "agility-sample",
            cap_prov=pool.provisioned_size(), req_min=required,
        )
        obs.registry.gauge(f"pool.demand.{POOL_NAME}").set(required, at=now)
        if now + sample_interval <= duration:
            kernel.call_after(sample_interval, drive_load)

    kernel.call_at(0.0, drive_load)

    def crash_members() -> None:
        # The sentinel and its two lowest-uid neighbours: kills the
        # leader (forcing re-election) and occupies three adjacent
        # round-robin slots (forcing a client retry before detection).
        victims = pool.active_members()[:3]
        for member in victims:
            if member.endpoint_id is not None:
                runtime.transport.kill(member.endpoint_id)
        injector.record(
            "member-crash",
            f"pool={POOL_NAME} uids={[m.uid for m in victims]}",
        )

    injector.schedule(fault_at, crash_members)

    kernel.run_until(duration)

    # Snapshot *before* shutdown: teardown drains members and would
    # append events that belong to no phase of the scripted run.
    events = list(obs.tracer.events())
    dropped = obs.tracer.dropped()
    metrics = obs.registry.snapshot()
    final_size = pool.size()
    injector.uninstall()
    runtime.shutdown()
    return TracedRun(
        seed=seed,
        duration=duration,
        events=events,
        dropped=dropped,
        metrics=metrics,
        client=client,
        final_size=final_size,
    )
