"""``repro.obs`` — the runtime observability layer.

One :class:`Observability` object bundles the two windows into a running
system:

- a :class:`~repro.obs.tracer.Tracer` of structured events (what
  happened, in order, with seeded-run-reproducible timestamps);
- a :class:`~repro.obs.registry.MetricsRegistry` of live numbers
  (counters, gauges with timelines, latency histograms).

Hand one to :class:`~repro.core.runtime.ElasticRuntime` via its
``observability=`` parameter and every layer — transports, skeletons,
elastic stubs, pools, the sentinel, the Mesos master, the lock manager,
the fault injector — reports into it.  Without one, instrumentation
sites see ``None`` and the invocation hot path pays exactly one branch
(the overhead budget ``benchmarks/test_obs_overhead.py`` enforces).

Exporters live in :mod:`repro.obs.export`; the seeded traced scenario
behind ``python -m repro trace`` lives in :mod:`repro.obs.scenario`
(kept out of this namespace to avoid importing :mod:`repro.core` here).
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import DEFAULT_CAPACITY, RingBuffer, TraceEvent, Tracer
from repro.sim.clock import Clock

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "DEFAULT_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RingBuffer",
    "TraceEvent",
    "Tracer",
]


class Observability:
    """The tracer + registry pair a runtime reports into."""

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
    ) -> None:
        self.tracer = Tracer(clock=clock, capacity=capacity, enabled=enabled)
        self.registry = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.tracer.enabled = value
