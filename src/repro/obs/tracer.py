"""Structured event tracing with per-component ring buffers.

A :class:`Tracer` records :class:`TraceEvent` entries — invocation
start/end, retry attempts, pool grow/shrink/drain/reap, slice
offer/grant/release, sentinel elections, lock acquire/contend, fault
injections — into one bounded :class:`RingBuffer` per component, so a
long run can never exhaust memory: when a buffer wraps, the oldest
events of *that component* are dropped while every other component's
history is untouched.

Determinism is the design constraint that shapes everything here:

- event *times* come from a caller-supplied :class:`~repro.sim.clock.Clock`
  — virtual time under the simulation kernel, monotonic wall time live —
  so a seeded simulated run stamps identical times on every run;
- event *order* is a process-wide sequence number drawn from one
  ``itertools.count`` (atomic in CPython), so the merged timeline of all
  components has a single total order that survives ring-buffer drops;
- event *fields* are stored as a sorted tuple of pairs, so two runs
  emitting the same fields serialize byte-identically regardless of
  keyword-argument order at the call site.

Cost discipline: instrumentation sites hold a ``_tracer`` attribute that
is ``None`` by default, and guard every emit with one ``is not None``
branch — the disabled invocation path pays a single predictable branch
and nothing else (asserted by ``benchmarks/test_obs_overhead.py``).  A
tracer that is installed but ``enabled=False`` returns from
:meth:`Tracer.emit` before taking any lock.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any

from repro.sim.clock import Clock, WallClock

DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: when, where, what, and the details.

    ``fields`` is a sorted tuple of ``(key, value)`` pairs — hashable,
    immutable, and deterministic to serialize.
    """

    at: float
    seq: int
    component: str
    kind: str
    fields: tuple[tuple[str, Any], ...] = ()

    def field_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """The JSONL representation (times rounded so formatting is
        stable across platforms' float printing of sim arithmetic)."""
        return {
            "at": round(self.at, 9),
            "seq": self.seq,
            "component": self.component,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


class RingBuffer:
    """A bounded append-only buffer that overwrites its oldest entries.

    ``appended`` counts every append ever made; ``dropped`` is how many
    of those were overwritten, so exporters can report truncation
    honestly instead of pretending the window is the whole history.
    """

    __slots__ = ("capacity", "_items", "_cursor", "appended")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._items: list[Any] = []
        self._cursor = 0  # next slot to overwrite once full
        self.appended = 0

    def append(self, item: Any) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._cursor] = item
            self._cursor = (self._cursor + 1) % self.capacity
        self.appended += 1

    @property
    def dropped(self) -> int:
        return max(0, self.appended - self.capacity)

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> list[Any]:
        """The retained entries, oldest first."""
        return self._items[self._cursor :] + self._items[: self._cursor]


class Tracer:
    """Records structured events into per-component ring buffers."""

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self._clock = clock or WallClock()
        self._capacity = capacity
        self.enabled = enabled
        self._seq = itertools.count()
        self._buffers: dict[str, RingBuffer] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def emit(self, component: str, kind: str, **fields: Any) -> TraceEvent | None:
        """Record one event; returns it, or None when tracing is off."""
        if not self.enabled:
            return None
        event = TraceEvent(
            at=self._clock.now(),
            seq=next(self._seq),
            component=component,
            kind=kind,
            fields=tuple(sorted(fields.items())),
        )
        with self._lock:
            buffer = self._buffers.get(component)
            if buffer is None:
                buffer = self._buffers[component] = RingBuffer(self._capacity)
            buffer.append(event)
        return event

    # -- reading -----------------------------------------------------------

    def components(self) -> list[str]:
        with self._lock:
            return sorted(self._buffers)

    def buffer(self, component: str) -> RingBuffer | None:
        with self._lock:
            return self._buffers.get(component)

    def events(
        self, component: str | None = None, kind: str | None = None
    ) -> list[TraceEvent]:
        """Retained events in global order (by sequence number)."""
        with self._lock:
            if component is not None:
                buffer = self._buffers.get(component)
                merged = list(buffer.snapshot()) if buffer is not None else []
            else:
                merged = [
                    event
                    for buf in self._buffers.values()
                    for event in buf.snapshot()
                ]
        merged.sort(key=lambda event: event.seq)
        if kind is not None:
            merged = [event for event in merged if event.kind == kind]
        return merged

    def counts(self) -> dict[str, int]:
        """Retained event counts by kind (sorted keys)."""
        tally: dict[str, int] = {}
        for event in self.events():
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def dropped(self) -> int:
        """Events lost to ring wraparound, summed over components."""
        with self._lock:
            return sum(buf.dropped for buf in self._buffers.values())

    def clear(self) -> None:
        """Discard every buffer (the sequence counter keeps advancing, so
        ordering remains globally consistent across a clear)."""
        with self._lock:
            self._buffers.clear()
