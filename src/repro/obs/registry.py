"""Live metrics: counters, gauges, and histograms behind one registry.

The :class:`MetricsRegistry` is the runtime's numeric window — pool
sizes, queue depths, per-method latency, retry counts — complementing
the tracer's event window.  Instruments are created on first use and
addressed by name, so instrumentation sites never need setup code:

    registry.counter("rmi.client.calls").inc()
    registry.gauge("pool.orders.size").set(4, at=clock.now())
    registry.histogram("rmi.server.latency").observe(0.0031)

Design points:

- **gauges keep a series** — when ``set`` is given a timestamp, the
  (time, value) pair is appended to ``series``, which is exactly the
  pool-size timeline :class:`~repro.metrics.agility.AgilityTracker` and
  Figure 8's provisioning analysis consume;
- **histogram buckets are upper-inclusive** — an observation equal to a
  bucket edge lands in that edge's bucket (``edges[i-1] < v <=
  edges[i]``), with a final overflow bucket above the last edge; edges
  must be strictly increasing;
- **snapshots are deterministic** — :meth:`MetricsRegistry.snapshot`
  sorts by instrument name, so two identical runs serialize identically.

Every instrument is thread-safe via a small per-instrument lock; these
are *not* on the un-instrumented hot path (sites guard with the same
single ``tracer is None``-style branch documented in
:mod:`repro.obs.tracer`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

# Spanning 1 µs .. 10 s: wide enough for marshal micro-latencies and for
# provisioning-scale intervals in the same registry.
DEFAULT_LATENCY_EDGES = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value, optionally accumulating a timeline."""

    __slots__ = ("name", "_value", "series", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self.series: list[tuple[float, float]] = []
        self._lock = threading.Lock()

    def set(self, value: float, at: float | None = None) -> None:
        with self._lock:
            self._value = value
            if at is not None:
                self.series.append((at, value))

    def add(self, delta: float, at: float | None = None) -> float:
        """Atomically adjust the gauge by ``delta``; returns the new value.

        ``set`` is a lost-update hazard for level gauges written from
        several threads (read outside the lock, write inside) — in-flight
        tracking from concurrent dispatchers needs the read-modify-write
        under one lock.
        """
        with self._lock:
            self._value += delta
            if at is not None:
                self.series.append((at, self._value))
            return self._value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with upper-inclusive edges.

    ``bucket_counts`` has ``len(edges) + 1`` entries: one per edge plus
    the overflow bucket for observations above the last edge.
    """

    __slots__ = (
        "name", "edges", "bucket_counts", "count", "total",
        "min", "max", "_lock",
    )

    def __init__(
        self, name: str, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES
    ) -> None:
        edges = tuple(edges)
        if not edges:
            raise ValueError(f"histogram {name!r}: at least one edge required")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r}: edges must be strictly increasing"
            )
        self.name = name
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.edges, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations above the last edge."""
        return self.bucket_counts[-1]


class MetricsRegistry:
    """Name-addressed instruments, created on first use."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type, *args: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = self._instruments[name] = cls(name, *args)
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        return self._get(name, Histogram, edges)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """A deterministic, JSON-ready view of every instrument."""
        with self._lock:
            items = sorted(self._instruments.items())
        counters: dict[str, int] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = {
                    "value": instrument.value,
                    "series": [list(point) for point in instrument.series],
                }
            elif isinstance(instrument, Histogram):
                histograms[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "buckets": [
                        [edge, count]
                        for edge, count in zip(
                            instrument.edges, instrument.bucket_counts
                        )
                    ],
                    "overflow": instrument.overflow,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
