"""Trace exporters: JSONL timelines and the ``repro.obs/v1`` summary.

Two output forms, both deterministic for a seeded simulated run:

- :func:`to_jsonl` — one JSON object per event, compact separators,
  sorted keys, times rounded to nanoseconds.  Two runs with the same
  seed produce *byte-identical* output (the CI ``obs-smoke`` gate).
- :func:`summarize_trace` — the ``repro.obs/v1`` summary document.  Its
  agility / provisioning / QoS numbers are computed by feeding the trace
  into the same :mod:`repro.metrics` trackers the experiments use
  (:class:`~repro.metrics.agility.AgilityTracker`,
  :class:`~repro.metrics.provisioning.ProvisioningSeries`,
  :class:`~repro.metrics.qos.QoSTracker`), so a trace-derived summary
  matches hand-assembled metrics exactly — the runtime and the paper's
  evaluation now share one accounting path.

The adapters (:func:`agility_from_trace` etc.) accept either
:class:`~repro.obs.tracer.TraceEvent` objects or the dicts
:func:`read_jsonl` yields, so ``python -m repro metrics`` can re-derive
every number offline from a trace file alone.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.metrics.agility import AgilityTracker
from repro.metrics.provisioning import ProvisioningSeries
from repro.metrics.qos import QoSTracker
from repro.obs.tracer import TraceEvent

SCHEMA = "repro.obs/v1"


# ----------------------------------------------------------------------
# event normalization and JSONL
# ----------------------------------------------------------------------


def event_dict(event: TraceEvent | dict[str, Any]) -> dict[str, Any]:
    """The canonical dict form of one event (JSONL line content)."""
    if isinstance(event, TraceEvent):
        return event.as_dict()
    return event


def _fields(event: TraceEvent | dict[str, Any]) -> dict[str, Any]:
    if isinstance(event, TraceEvent):
        return event.field_dict()
    return event.get("fields", {})


def to_jsonl(events: Iterable[TraceEvent | dict[str, Any]]) -> str:
    """Serialize events to JSONL, one compact sorted-key line each."""
    lines = [
        json.dumps(event_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def read_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into event dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def load_trace(path: str) -> list[dict[str, Any]]:
    with open(path) as handle:
        return read_jsonl(handle.read())


def write_trace(
    path: str, events: Iterable[TraceEvent | dict[str, Any]]
) -> None:
    with open(path, "w") as handle:
        handle.write(to_jsonl(events))


# ----------------------------------------------------------------------
# feeding repro.metrics trackers from a trace
# ----------------------------------------------------------------------


def agility_from_trace(
    events: Iterable[TraceEvent | dict[str, Any]],
    tracker: AgilityTracker | None = None,
) -> AgilityTracker:
    """Feed every ``agility-sample`` event into an AgilityTracker."""
    tracker = tracker or AgilityTracker()
    for event in events:
        d = event_dict(event)
        if d["kind"] != "agility-sample":
            continue
        fields = _fields(event)
        tracker.record(
            at=d["at"],
            cap_prov=fields["cap_prov"],
            req_min=fields["req_min"],
        )
    return tracker


def provisioning_from_trace(
    events: Iterable[TraceEvent | dict[str, Any]],
) -> ProvisioningSeries:
    """Rebuild the pool's provisioning records from lifecycle events.

    ``member-active`` events carry the request-to-first-service interval
    (Figure 8's scale-up latency); ``member-removed`` events carry the
    drain duration (direction "down").
    """
    from repro.core.pool import ProvisioningRecord

    records = []
    for event in events:
        d = event_dict(event)
        fields = _fields(event)
        if d["kind"] == "member-active":
            records.append(
                ProvisioningRecord(
                    pool=fields.get("pool", "?"),
                    uid=fields.get("uid", 0),
                    requested_at=fields["requested_at"],
                    active_at=d["at"],
                    direction="up",
                )
            )
        elif d["kind"] == "member-removed":
            records.append(
                ProvisioningRecord(
                    pool=fields.get("pool", "?"),
                    uid=fields.get("uid", 0),
                    requested_at=fields["drain_started"],
                    active_at=d["at"],
                    direction="down",
                )
            )
    return ProvisioningSeries(records)


def qos_from_trace(
    events: Iterable[TraceEvent | dict[str, Any]],
    tracker: QoSTracker | None = None,
) -> QoSTracker:
    """Feed successful client ``call`` events into a QoSTracker."""
    tracker = tracker or QoSTracker()
    for event in events:
        d = event_dict(event)
        if d["kind"] != "call":
            continue
        fields = _fields(event)
        if fields.get("ok"):
            tracker.record(at=d["at"], latency=fields.get("latency", 0.0))
    return tracker


# ----------------------------------------------------------------------
# the repro.obs/v1 summary document
# ----------------------------------------------------------------------


def summarize_trace(
    events: Iterable[TraceEvent | dict[str, Any]],
    seed: int | None = None,
    dropped: int | None = None,
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold a trace into the ``repro.obs/v1`` summary (README schema)."""
    events = list(events)
    counts: dict[str, int] = {}
    components: dict[str, int] = {}
    pool_sizes: list[list[float]] = []
    calls = errors = retried_calls = retry_attempts = 0
    server_invocations = server_errors = 0
    batches = batched_entries = batch_inflight_hwm = 0
    for event in events:
        d = event_dict(event)
        kind = d["kind"]
        counts[kind] = counts.get(kind, 0) + 1
        components[d["component"]] = components.get(d["component"], 0) + 1
        fields = _fields(event)
        if kind == "pool-size":
            pool_sizes.append([d["at"], fields["size"]])
        elif kind == "call":
            calls += 1
            attempts = fields.get("attempts", 1)
            if not fields.get("ok"):
                errors += 1
            if attempts > 1:
                retried_calls += 1
                retry_attempts += attempts - 1
        elif kind == "invoke":
            server_invocations += 1
            if fields.get("error"):
                server_errors += 1
        elif kind == "batch":
            # One per client-side wire message the batcher flew.
            batches += 1
            batched_entries += fields.get("size", 0)
            batch_inflight_hwm = max(
                batch_inflight_hwm, fields.get("inflight", 0)
            )
    agility = agility_from_trace(events)
    provisioning = provisioning_from_trace(events)
    qos = qos_from_trace(events)
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "events": len(events),
        "counts": dict(sorted(counts.items())),
        "components": dict(sorted(components.items())),
        "pool_sizes": pool_sizes,
        "agility": {
            "samples": len(agility.samples),
            "average": agility.average_agility(),
            "average_excess": agility.average_excess(),
            "average_shortage": agility.average_shortage(),
            "max": agility.max_agility(),
            "zero_fraction": agility.zero_fraction(),
        },
        "provisioning": {
            "up": len(provisioning.up_events()),
            "down": len(provisioning.down_events()),
            "mean_up_latency": provisioning.mean_latency(),
            "max_up_latency": provisioning.max_latency(),
        },
        "invocations": {
            "calls": calls,
            "errors": errors,
            "retried_calls": retried_calls,
            "retry_attempts": retry_attempts,
            "throughput": qos.throughput(),
            "mean_latency": qos.mean_latency(),
        },
        "server": {
            "invocations": server_invocations,
            "errors": server_errors,
        },
        "batching": {
            "batches": batches,
            "entries": batched_entries,
            "mean_batch_size": (
                batched_entries / batches if batches else 0.0
            ),
            # Logical calls per wire message: how much the batcher
            # actually coalesced (1.0 = nothing, the unbatched shape).
            "coalesce_ratio": (
                batched_entries / batches if batches else 1.0
            ),
            "inflight_hwm": batch_inflight_hwm,
        },
    }
    if seed is not None:
        doc["seed"] = seed
    if dropped is not None:
        doc["dropped"] = dropped
    if metrics is not None:
        doc["metrics"] = metrics
    return doc


def validate_summary(doc: dict[str, Any]) -> list[str]:
    """Schema check for a summary document; empty list means valid."""
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for section in (
        "counts", "agility", "provisioning", "invocations", "batching"
    ):
        if not isinstance(doc.get(section), dict):
            problems.append(f"{section} missing")
    if not isinstance(doc.get("events"), int):
        problems.append("events missing")
    return problems
