"""Scheduler protocol: deferred callbacks in either time domain.

The elastic runtime needs exactly one temporal capability — "run this
callable after ``delay`` seconds" — for burst-interval ticks, provisioning
delays, and drain timeouts.  :class:`~repro.sim.kernel.Kernel` provides it
in virtual time; :class:`ThreadScheduler` provides it in wall time.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Protocol

from repro.sim.clock import Clock, WallClock


class Cancellable(Protocol):
    def cancel(self) -> None: ...


class Scheduler(Protocol):
    """What the runtime requires of its time domain."""

    clock: Clock

    def call_after(self, delay: float, fn: Callable[[], Any]) -> Cancellable: ...


class _TimerHandle:
    def __init__(self, timer: threading.Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class ThreadScheduler:
    """Wall-clock scheduler backed by daemon :class:`threading.Timer`\\ s.

    Tracks outstanding timers so a live session can be shut down cleanly
    (:meth:`shutdown` cancels everything still pending).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock or WallClock()
        self._lock = threading.Lock()
        self._timers: set[threading.Timer] = set()
        self._closed = False

    def call_after(self, delay: float, fn: Callable[[], Any]) -> _TimerHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")

        def run() -> None:
            with self._lock:
                self._timers.discard(timer)
                if self._closed:
                    return
            fn()

        timer = threading.Timer(delay, run)
        timer.daemon = True
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            self._timers.add(timer)
        timer.start()
        return _TimerHandle(timer)

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
