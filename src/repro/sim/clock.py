"""Time sources.

Every component in this library reads time through the :class:`Clock`
protocol instead of calling :func:`time.monotonic` directly.  That single
indirection is what lets the identical middleware code run under the
discrete-event kernel (virtual time, used by the paper-reproduction
experiments) and live (wall time, used by the runnable examples).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class WallClock:
    """Real time, anchored at construction so traces start near zero."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch


class SimClock:
    """Virtual time advanced explicitly by the simulation kernel.

    Only the kernel should call :meth:`advance`; everything else treats the
    clock as read-only.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, to: float) -> None:
        """Move time forward to ``to``.  Rejects travel into the past."""
        if to < self._now:
            raise ValueError(f"cannot move clock backwards: {to} < {self._now}")
        self._now = float(to)
