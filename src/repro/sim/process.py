"""Generator-based simulation processes.

A process is a Python generator that yields *waits*:

- ``yield Timeout(dt)`` — resume after ``dt`` virtual seconds;
- ``yield event`` (an :class:`Event`) — resume when the event succeeds,
  receiving the event's value via ``.send()``.

This is the minimal process algebra the experiments need (arrival
generators, drain protocols, provisioning delays); it deliberately avoids
simpy-style magic in favour of explicit, inspectable objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Timeout:
    """Wait instruction: resume the process after ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


class Event:
    """One-shot condition.  Processes yield it to block; anyone may
    :meth:`succeed` it exactly once, waking all waiters with ``value``."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._value: Any = None
        self._done = False
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise RuntimeError("event already triggered")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Deliver on the event queue so wakeups interleave
            # deterministically with other same-time events.
            self._kernel.call_after(0.0, lambda w=waiter: w(value))

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self._done:
            self._kernel.call_after(0.0, lambda: fn(self._value))
        else:
            self._waiters.append(fn)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """Drives a generator through the kernel until it returns.

    The process itself is an awaitable condition: other processes can yield
    ``proc.done`` to join on it; ``proc.result`` holds the generator's
    return value.
    """

    def __init__(self, kernel: Kernel, gen: ProcessGen, name: str = "proc"):
        self._kernel = kernel
        self._gen = gen
        self.name = name
        self.done = Event(kernel)
        self._kernel.call_after(0.0, lambda: self._resume(None))

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        return self.done.value

    def _resume(self, value: Any) -> None:
        try:
            wait = self._gen.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if isinstance(wait, Timeout):
            self._kernel.call_after(wait.delay, lambda: self._resume(None))
        elif isinstance(wait, Event):
            wait.add_callback(self._resume)
        elif isinstance(wait, Process):
            wait.done.add_callback(self._resume)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {wait!r}; expected "
                "Timeout, Event, or Process"
            )
