"""Capacity-limited resources for queueing models.

The elasticity experiments model each pool member as a server with a
per-second service capacity; CPU utilization is offered load divided by
capacity.  :class:`Resource` is the generic FIFO server used wherever a
component needs explicit queueing (e.g. the KV store's partitions under
hot-key contention).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.kernel import Kernel
from repro.sim.process import Event


class Resource:
    """FIFO resource with integer capacity (classic counting semaphore).

    ``acquire()`` returns an :class:`Event` that succeeds when a unit is
    granted; ``release()`` hands the unit to the next waiter.
    """

    def __init__(self, kernel: Kernel, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self._kernel = kernel
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self._kernel)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without matching acquire")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def utilization(self) -> float:
        """Fraction of capacity currently busy, in [0, 1]."""
        return self._in_use / self.capacity


class Gauge:
    """Time-weighted average of a piecewise-constant quantity.

    Used to integrate pool size and utilization over sampling intervals the
    way the paper's burst-interval averages do.
    """

    def __init__(self, kernel: Kernel, initial: float = 0.0) -> None:
        self._kernel = kernel
        self._value = float(initial)
        self._last_change = kernel.clock.now()
        self._area = 0.0
        self._window_start = self._last_change

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self._kernel.clock.now()
        self._area += self._value * (now - self._last_change)
        self._value = float(value)
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def window_average(self, reset: bool = True) -> float:
        """Time-weighted mean since the last reset (or construction)."""
        now = self._kernel.clock.now()
        area = self._area + self._value * (now - self._last_change)
        span = now - self._window_start
        avg = self._value if span <= 0 else area / span
        if reset:
            self._area = 0.0
            self._last_change = now
            self._window_start = now
        return avg


def record(value: Any) -> Any:
    """Identity helper used in doctests/tests to mark sampled values."""
    return value
