"""The discrete-event kernel: a deterministic time-ordered event loop.

Events scheduled at the same virtual time fire in FIFO order of their
scheduling (a strictly increasing sequence number breaks ties), which makes
every simulation run bit-for-bit reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import SimClock


@dataclass(order=True)
class ScheduledCall:
    """A callback queued to fire at a virtual time.

    Ordered by ``(when, seq)`` so the heap pops deterministically.  Cancelled
    entries stay in the heap and are skipped on pop (lazy deletion).
    """

    when: float
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Kernel:
    """Event loop owning a :class:`SimClock`.

    Usage::

        k = Kernel()
        k.call_at(5.0, fire)
        k.call_after(1.0, other)
        k.run_until(10.0)
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._heap: list[ScheduledCall] = []
        self._seq = itertools.count()
        self._events_fired = 0

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], Any]) -> ScheduledCall:
        """Schedule ``fn`` to run at absolute virtual time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now()}"
            )
        call = ScheduledCall(when=float(when), seq=next(self._seq), fn=fn)
        heapq.heappush(self._heap, call)
        return call

    def call_after(self, delay: float, fn: Callable[[], Any]) -> ScheduledCall:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now() + delay, fn)

    # -- execution ----------------------------------------------------------

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def peek(self) -> float | None:
        """Virtual time of the next pending event, or None if idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None

    def step(self) -> bool:
        """Fire the single next event.  Returns False when the queue is empty."""
        while self._heap:
            call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self.clock.advance(call.when)
            self._events_fired += 1
            call.fn()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, when: float) -> None:
        """Run all events scheduled strictly up to and including ``when``,
        then advance the clock to exactly ``when``."""
        while True:
            nxt = self.peek()
            if nxt is None or nxt > when:
                break
            self.step()
        if when > self.clock.now():
            self.clock.advance(when)
