"""Deterministic named random streams.

Each subsystem draws from its own substream so that adding randomness to
one component (say, KV-store latency jitter) does not perturb another's
draws — a standard trick for variance reduction and reproducibility in
simulation studies.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """Factory of independent :class:`random.Random` instances.

    Streams are keyed by name; the same (seed, name) pair always yields the
    same sequence, and repeated calls for one name return the *same* stream
    object so state persists across call sites.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Child factory with a seed derived from (seed, name)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
