"""Discrete-event simulation substrate.

The paper evaluates ElasticRMI over 450-500 minute workload traces on a
real cluster.  This reproduction replays those traces in virtual time on a
deterministic discrete-event kernel.  All middleware code is written
against the :class:`~repro.sim.clock.Clock` protocol so the *same* policy,
pool, balancer, and metric objects run both live (wall clock + threads)
and simulated (virtual clock + event queue).

Public surface:

- :class:`Clock`, :class:`WallClock`, :class:`SimClock` — time sources.
- :class:`Kernel` — the event loop (schedule / cancel / run).
- :class:`Process` and :func:`process` — generator-based coroutines.
- :class:`Event` — one-shot condition processes can wait on.
- :class:`Resource` — capacity-limited server for queueing models.
- :class:`RngStreams` — named deterministic random substreams.
"""

from repro.sim.clock import Clock, SimClock, WallClock
from repro.sim.kernel import Kernel, ScheduledCall
from repro.sim.process import Event, Process, Timeout
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams

__all__ = [
    "Clock",
    "Event",
    "Kernel",
    "Process",
    "Resource",
    "RngStreams",
    "ScheduledCall",
    "SimClock",
    "Timeout",
    "WallClock",
]
