"""JGroups-like group communication.

ElasticRMI's sentinel uses a group communication system (JGroups in the
paper) to broadcast pool state — member identities and pending-invocation
counts — to every skeleton (section 4.3), and relies on a "royal
hierarchy" leader election (lowest uid wins) to pick and re-pick the
sentinel (section 4.4).  This package provides those primitives:

- :class:`Channel` — a named group: join/leave, reliable FIFO broadcast to
  all current members, membership views with change notifications.
- :class:`View` — an immutable membership snapshot with a view id.
- :func:`elect_leader` — lowest-uid election over a view.
"""

from repro.groupcomm.channel import Channel, Member, View, elect_leader

__all__ = ["Channel", "Member", "View", "elect_leader"]
