"""Membership views, broadcast, and lowest-uid leader election."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Member:
    """One channel participant: an address plus the monotonically assigned
    uid ElasticRMI uses for its royal-hierarchy election."""

    address: str
    uid: int


@dataclass(frozen=True)
class View:
    """Immutable membership snapshot."""

    view_id: int
    members: tuple[Member, ...]

    def addresses(self) -> list[str]:
        return [m.address for m in self.members]

    def contains(self, address: str) -> bool:
        return any(m.address == address for m in self.members)


def elect_leader(view: View) -> Member | None:
    """Lowest uid wins — the paper's royal hierarchy (section 4.3)."""
    if not view.members:
        return None
    return min(view.members, key=lambda m: m.uid)


@dataclass
class _Subscription:
    member: Member
    on_message: Callable[[str, Any], None]  # (sender_address, message)
    on_view: Callable[[View], None] | None


class Channel:
    """A named process group with FIFO broadcast and view callbacks.

    Delivery is synchronous and in joining order, which makes tests and
    simulations deterministic; senders also receive their own broadcasts
    (JGroups' default loopback behaviour).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._subs: dict[str, _Subscription] = {}
        self._next_uid = 1
        self._view_id = 0
        self.messages_broadcast = 0

    # -- membership -----------------------------------------------------------

    def join(
        self,
        address: str,
        on_message: Callable[[str, Any], None],
        on_view: Callable[[View], None] | None = None,
    ) -> Member:
        """Add a member; uids are assigned monotonically (never reused)."""
        with self._lock:
            if address in self._subs:
                raise ValueError(f"address already joined: {address}")
            member = Member(address=address, uid=self._next_uid)
            self._next_uid += 1
            self._subs[address] = _Subscription(member, on_message, on_view)
            view = self._bump_view()
        self._deliver_view(view)
        return member

    def leave(self, address: str) -> None:
        with self._lock:
            if address not in self._subs:
                return
            del self._subs[address]
            view = self._bump_view()
        self._deliver_view(view)

    def view(self) -> View:
        with self._lock:
            return self._current_view()

    def leader(self) -> Member | None:
        return elect_leader(self.view())

    # -- messaging ---------------------------------------------------------------

    def broadcast(self, sender: str, message: Any) -> int:
        """Deliver ``message`` to every current member (including the
        sender).  Returns the number of deliveries."""
        with self._lock:
            if sender not in self._subs:
                raise ValueError(f"broadcast from non-member: {sender}")
            targets = list(self._subs.values())
            self.messages_broadcast += 1
        for sub in targets:
            sub.on_message(sender, message)
        return len(targets)

    def send(self, sender: str, target: str, message: Any) -> None:
        """Point-to-point message within the group."""
        with self._lock:
            if sender not in self._subs:
                raise ValueError(f"send from non-member: {sender}")
            sub = self._subs.get(target)
        if sub is None:
            raise ValueError(f"send to non-member: {target}")
        sub.on_message(sender, message)

    # -- internals ------------------------------------------------------------------

    def _current_view(self) -> View:
        members = tuple(
            sorted((s.member for s in self._subs.values()), key=lambda m: m.uid)
        )
        return View(view_id=self._view_id, members=members)

    def _bump_view(self) -> View:
        self._view_id += 1
        return self._current_view()

    def _deliver_view(self, view: View) -> None:
        with self._lock:
            targets = [s for s in self._subs.values() if s.on_view is not None]
        for sub in targets:
            sub.on_view(view)
