"""The elastic hub pool: topic ownership, publish, subscribe, consume.

Data layout in the shared store (all under the ``hw/`` prefix):

- ``hw/topics/<topic>/seq`` — the topic's message sequence counter;
- ``hw/topics/<topic>/log`` — the retained message window (list);
- ``hw/topics/<topic>/subs`` — subscriber id -> cursor (last consumed
  seq).  Cursors advance before messages are handed out, giving the
  at-most-once guarantee Hedwig provides;
- ``hw/stats/backlog`` — total undelivered messages, the app-specific
  metric scaling keys on alongside throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import ThroughputScaledService
from repro.core.fields import elastic_field
from repro.routing import stable_hash


def topic_affinity_key(topic: str) -> str:
    """The sharding affinity key for hub traffic: the topic name.

    Publish/consume for one topic lands on the same shard of a sharded
    hub pool (``stub.invoke("publish", topic, msg, affinity_key=topic)``),
    keeping a topic's sequence counter, log, and cursors served by one
    shard's members.
    """
    return topic


class TopicOwnershipError(Exception):
    """Operation routed to a hub that does not own the topic (only
    raised when strict ownership checking is enabled)."""


@dataclass(frozen=True)
class Message:
    """One published message."""

    topic: str
    seq: int
    payload: object
    publisher: str


#: Retained messages per topic; older entries are trimmed (subscribers
#: that lag farther than this lose messages — at-most-once, not at-least).
RETENTION = 10_000


class Hub(ThroughputScaledService):
    """One member of the hub pool."""

    #: A hub sustains ~1,500 msgs/s at QoS; peak A = 30,000 msgs/s needs
    #: about 24 hubs at the target utilization.
    CAPACITY_PER_MEMBER = 1_500.0
    #: Moderate headroom: delivery can lag briefly (backlog absorbs it).
    TARGET_UTILIZATION = 0.75

    published_total = elastic_field(default=0)
    delivered_total = elastic_field(default=0)

    def __init__(self, strict_ownership: bool = False) -> None:
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(32)
        self.strict_ownership = strict_ownership

    # ------------------------------------------------------------------
    # topic ownership (hubs partition topics among themselves)
    # ------------------------------------------------------------------

    def owner_uid(self, topic: str) -> int:
        """The pool member uid owning ``topic``: stable hash over the
        current membership.

        ``stable_hash``, not builtin ``hash``: the builtin is salted per
        process, so members in different processes would have disagreed
        about who owns a topic — strict ownership would then bounce
        every call.
        """
        ctx = self._ctx()
        uids = sorted(m.uid for m in ctx.pool.active_members())
        if not uids:
            raise RuntimeError("hub pool has no active members")
        return uids[stable_hash(topic) % len(uids)]

    def owns(self, topic: str) -> bool:
        ctx = self._ctx()
        return self.owner_uid(topic) == ctx.member.uid

    def _check_ownership(self, topic: str) -> None:
        if self.strict_ownership and not self.owns(topic):
            raise TopicOwnershipError(
                f"topic {topic!r} is owned by hub {self.owner_uid(topic)}"
            )

    # ------------------------------------------------------------------
    # publish / subscribe / consume
    # ------------------------------------------------------------------

    def publish(self, topic: str, payload: object, publisher: str = "?") -> int:
        """Append a message to the topic; returns its sequence number."""
        self._check_ownership(topic)
        store = self._ctx().store
        seq = store.incr(f"hw/topics/{topic}/seq")
        message = Message(topic=topic, seq=seq, payload=payload, publisher=publisher)

        def append(log):
            log = list(log or [])
            log.append(message)
            if len(log) > RETENTION:
                log = log[-RETENTION:]
            return log

        store.update(f"hw/topics/{topic}/log", append, default=[])
        type(self).published_total.update(self, lambda v: v + 1)
        return seq

    def subscribe(self, topic: str, subscriber: str) -> int:
        """Register a subscriber; consumption starts after the current
        head (existing messages are not replayed).  Returns the cursor."""
        self._check_ownership(topic)
        store = self._ctx().store
        head = store.get(f"hw/topics/{topic}/seq", default=0)

        def register(subs):
            subs = dict(subs or {})
            subs.setdefault(subscriber, head)
            return subs

        subs = store.update(f"hw/topics/{topic}/subs", register, default={})
        return subs[subscriber]

    def unsubscribe(self, topic: str, subscriber: str) -> bool:
        store = self._ctx().store

        def remove(subs):
            subs = dict(subs or {})
            subs.pop(subscriber, None)
            return subs

        before = store.get(f"hw/topics/{topic}/subs", default={})
        store.update(f"hw/topics/{topic}/subs", remove, default={})
        return subscriber in before

    def consume(self, topic: str, subscriber: str, max_messages: int = 100) -> list[Message]:
        """Hand the subscriber its next messages, **advancing the cursor
        first** — a crash after this call loses the batch, which is the
        at-most-once contract (never a duplicate delivery)."""
        self._check_ownership(topic)
        store = self._ctx().store
        subs_key = f"hw/topics/{topic}/subs"
        subs = store.get(subs_key, default={})
        if subscriber not in subs:
            raise KeyError(f"{subscriber!r} is not subscribed to {topic!r}")
        cursor = subs[subscriber]
        head = store.get(f"hw/topics/{topic}/seq", default=0)
        upto = min(head, cursor + max_messages)
        if upto <= cursor:
            return []

        def advance(current):
            current = dict(current or {})
            # Another consumer instance may have advanced concurrently;
            # never move the cursor backwards.
            current[subscriber] = max(current.get(subscriber, 0), upto)
            return current

        store.update(subs_key, advance, default={})
        log = store.get(f"hw/topics/{topic}/log", default=[])
        batch = [m for m in log if cursor < m.seq <= upto]
        type(self).delivered_total.update(self, lambda v: v + len(batch))
        return batch

    def backlog(self, topic: str) -> int:
        """Messages published but not yet consumed by the laggiest
        subscriber (0 with no subscribers)."""
        store = self._ctx().store
        head = store.get(f"hw/topics/{topic}/seq", default=0)
        subs = store.get(f"hw/topics/{topic}/subs", default={})
        if not subs:
            return 0
        return head - min(subs.values())

    def topic_stats(self, topic: str) -> dict:
        store = self._ctx().store
        return {
            "seq": store.get(f"hw/topics/{topic}/seq", default=0),
            "subscribers": len(store.get(f"hw/topics/{topic}/subs", default={})),
            "backlog": self.backlog(topic),
            "owner": self.owner_uid(topic),
        }

    # ------------------------------------------------------------------
    # fine-grained scaling
    # ------------------------------------------------------------------

    def scaling_guard(self, delta: int) -> int:
        """Grow eagerly when delivery backlog is building: a rising
        backlog means subscribers fall behind even if the publish rate
        alone does not justify more hubs yet."""
        ctx = self._ermi_ctx
        if ctx is None or delta < 0:
            return delta
        backlog = ctx.store.get("hw/stats/backlog", default=0)
        if backlog > 5_000 and delta < self.MAX_STEP:
            return delta + 1
        return delta
