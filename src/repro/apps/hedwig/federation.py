"""Cross-region federation for Hedwig.

The paper describes Hedwig deployments as *regions* — "clients are
associated with a Hedwig instance (also referred to as a region), which
consists of a number of servers called hubs".  Real Hedwig's signature
feature is guaranteed cross-region delivery: a message published in one
region reaches subscribers in every region exactly because inter-region
relays re-publish it abroad.

:class:`HedwigFederation` implements that relay layer over any number of
independent hub pools (each typically its own ElasticRuntime with its
own store):

- every federated topic gets a hidden relay subscriber per region;
- publishes are wrapped in an :class:`Envelope` carrying the origin
  region, and relays forward only messages *originating* in their own
  region — the standard loop-suppression rule, so a relayed message is
  never re-relayed;
- :meth:`pump` drains the relay subscribers and re-publishes abroad
  (pull-based so tests and simulations control the schedule; a live
  deployment calls it from a timer).

Delivery remains at-most-once end to end: the relay consumes with the
same advance-cursor-first contract as any subscriber.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Envelope:
    """A federated message: the payload plus its origin region."""

    origin: str
    payload: Any


def _relay_subscriber(region: str) -> str:
    return f"__relay__{region}"


class HedwigFederation:
    """Connects hub pools in different regions into one topic space."""

    def __init__(self) -> None:
        self._regions: dict[str, Any] = {}  # region -> hub client
        self._topics: set[str] = set()
        self.relayed_total = 0

    # -- membership -----------------------------------------------------------

    def add_region(self, name: str, hub_client: Any) -> None:
        """Register a region by name with its hub pool client (stub)."""
        if name in self._regions:
            raise ValueError(f"region already federated: {name}")
        self._regions[name] = hub_client
        for topic in self._topics:
            hub_client.subscribe(topic, _relay_subscriber(name))

    def regions(self) -> list[str]:
        return sorted(self._regions)

    # -- topics -------------------------------------------------------------------

    def connect_topic(self, topic: str) -> None:
        """Start federating ``topic``: attach a relay subscriber in every
        region (messages published before connection are not relayed,
        matching Hedwig's subscribe-from-now semantics)."""
        if topic in self._topics:
            return
        self._topics.add(topic)
        for region, client in self._regions.items():
            client.subscribe(topic, _relay_subscriber(region))

    # -- publish / consume -----------------------------------------------------------

    def publish(self, region: str, topic: str, payload: Any) -> int:
        """Publish into ``region``'s instance of the topic."""
        client = self._client(region)
        return client.publish(topic, Envelope(origin=region, payload=payload))

    def subscribe(self, region: str, topic: str, subscriber: str) -> int:
        return self._client(region).subscribe(topic, subscriber)

    def consume(
        self, region: str, topic: str, subscriber: str, max_messages: int = 100
    ) -> list[Any]:
        """Consume for an application subscriber; envelopes are opened
        (the subscriber sees plain payloads, local or remote)."""
        batch = self._client(region).consume(topic, subscriber, max_messages)
        return [
            m.payload.payload if isinstance(m.payload, Envelope) else m.payload
            for m in batch
        ]

    # -- the relay ----------------------------------------------------------------------

    def pump(self, max_messages: int = 1000) -> int:
        """Run one relay round: forward locally originated messages to
        every other region.  Returns the number of cross-region
        deliveries performed."""
        forwarded = 0
        for topic in sorted(self._topics):
            for region, client in self._regions.items():
                batch = client.consume(
                    topic, _relay_subscriber(region), max_messages
                )
                for message in batch:
                    envelope = message.payload
                    if not isinstance(envelope, Envelope):
                        continue  # unfederated publish; leave it local
                    if envelope.origin != region:
                        continue  # arrived via relay: never re-relay
                    for other, other_client in self._regions.items():
                        if other == region:
                            continue
                        other_client.publish(topic, envelope)
                        forwarded += 1
        self.relayed_total += forwarded
        return forwarded

    # -- internals --------------------------------------------------------------------------

    def _client(self, region: str) -> Any:
        if region not in self._regions:
            raise KeyError(f"unknown region: {region}")
        return self._regions[region]
