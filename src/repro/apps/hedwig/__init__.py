"""Hedwig-style topic-based publish/subscribe (paper section 5.2).

Hedwig is a topic-based pub/sub system for reliable, guaranteed
at-most-once delivery from publishers to subscribers.  A region consists
of *hubs*; the hubs partition topic ownership among themselves, and all
publishes/subscribes for a topic go to its owning hub.

In this reproduction the hub pool is one elastic class: topic ownership
is partitioned over the live members by consistent hashing on the member
uid list, publishes append to per-topic logs in the shared store, and
subscribers consume with cursors that advance *before* delivery — which
is precisely what makes delivery at-most-once.
"""

from repro.apps.hedwig.federation import Envelope, HedwigFederation
from repro.apps.hedwig.hub import Hub, Message, TopicOwnershipError

__all__ = [
    "Envelope",
    "HedwigFederation",
    "Hub",
    "Message",
    "TopicOwnershipError",
]
