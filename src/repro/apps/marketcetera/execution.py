"""Order execution: simulated market venues and the fill lifecycle.

The order router's job ends at the destination market; this module
models what happens next, so the application has the full lifecycle the
Marketcetera platform manages (routed → working → partially filled →
filled / cancelled):

- :class:`MarketSimulator` — deterministic per-symbol price model and
  execution rules: market orders fill immediately at the simulated
  price; limit orders fill only when their limit crosses it; large
  orders fill partially per round;
- :class:`Fill` / :class:`ExecutionReport` — the FIX-ish result types;
- :class:`TradingSession` — glue: submit through the elastic router,
  execute at the simulated venue, report fills back into the persisted
  order record (so ``order_status`` shows live lifecycle state).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any

from repro.apps.marketcetera.orders import Order, OrderType, Side

_exec_ids = itertools.count(1)


@dataclass(frozen=True)
class Fill:
    """One execution: quantity at a price."""

    exec_id: str
    order_id: str
    quantity: int
    price: float
    venue: str


@dataclass(frozen=True)
class ExecutionReport:
    """Venue response for one execution attempt."""

    order_id: str
    status: str                # "filled" | "partial" | "working"
    fills: tuple[Fill, ...]
    leaves_quantity: int       # remaining unfilled quantity


def reference_price(symbol: str) -> float:
    """Deterministic per-symbol base price (stable across runs)."""
    digest = hashlib.sha256(symbol.encode()).digest()
    return 20.0 + (int.from_bytes(digest[:4], "big") % 48_000) / 100.0


class MarketSimulator:
    """A venue with deterministic prices and size-limited liquidity.

    ``liquidity_per_round`` caps how much quantity one execution round
    absorbs — larger orders fill partially and stay working.
    """

    def __init__(self, venue: str, liquidity_per_round: int = 500) -> None:
        if liquidity_per_round < 1:
            raise ValueError("liquidity must be positive")
        self.venue = venue
        self.liquidity_per_round = liquidity_per_round
        self._tick = 0

    def market_price(self, symbol: str) -> float:
        """Reference price with a small deterministic oscillation."""
        base = reference_price(symbol)
        wiggle = ((self._tick * 7919) % 200 - 100) / 100.0  # -1 .. +1
        return round(base * (1 + 0.001 * wiggle), 2)

    def advance(self) -> None:
        """Move the simulated market one tick forward."""
        self._tick += 1

    def execute(self, order: Order, leaves_quantity: int | None = None) -> ExecutionReport:
        """Run one execution round for the order."""
        order.validate()
        leaves = order.quantity if leaves_quantity is None else leaves_quantity
        if leaves <= 0:
            return ExecutionReport(order.order_id, "filled", (), 0)
        price = self.market_price(order.symbol)
        if order.order_type is OrderType.LIMIT:
            crosses = (
                order.side is Side.BUY and order.price >= price
            ) or (order.side is Side.SELL and order.price <= price)
            if not crosses:
                return ExecutionReport(order.order_id, "working", (), leaves)
            price = order.price  # limit orders execute at their limit
        filled = min(leaves, self.liquidity_per_round)
        fill = Fill(
            exec_id=f"exec-{next(_exec_ids)}",
            order_id=order.order_id,
            quantity=filled,
            price=price,
            venue=self.venue,
        )
        remaining = leaves - filled
        status = "filled" if remaining == 0 else "partial"
        return ExecutionReport(order.order_id, status, (fill,), remaining)


class TradingSession:
    """Submit → execute → report, against the elastic router pool.

    ``router`` is any client of the OrderRouter pool (stub or instance);
    venues are created lazily per destination.
    """

    def __init__(self, router: Any, liquidity_per_round: int = 500) -> None:
        self.router = router
        self.liquidity_per_round = liquidity_per_round
        self._venues: dict[str, MarketSimulator] = {}
        self._working: dict[str, tuple[Order, int]] = {}  # id -> (order, leaves)
        self.fills: list[Fill] = []

    def venue(self, destination: str) -> MarketSimulator:
        if destination not in self._venues:
            self._venues[destination] = MarketSimulator(
                destination, self.liquidity_per_round
            )
        return self._venues[destination]

    def trade(self, order: Order) -> ExecutionReport:
        """Submit the order and run its first execution round."""
        ack = self.router.submit_order(order)
        report = self.venue(ack.destination).execute(order)
        self._record(order, report)
        return report

    def work_open_orders(self) -> list[ExecutionReport]:
        """One market tick: retry every working order."""
        reports = []
        for order_id, (order, leaves) in list(self._working.items()):
            destination = self.router.route_for(order.symbol)
            venue = self.venue(destination)
            venue.advance()
            report = venue.execute(order, leaves_quantity=leaves)
            self._record(order, report)
            reports.append(report)
        return reports

    def open_order_count(self) -> int:
        return len(self._working)

    def _record(self, order: Order, report: ExecutionReport) -> None:
        self.fills.extend(report.fills)
        if report.status == "filled":
            self._working.pop(order.order_id, None)
        else:
            self._working[order.order_id] = (order, report.leaves_quantity)
        self.router.report_execution(
            order.order_id,
            report.status,
            [
                {"exec_id": f.exec_id, "qty": f.quantity, "price": f.price}
                for f in report.fills
            ],
        )
