"""The order model and the trading-order simulator.

Orders follow the essentials of FIX: symbol, side, type, quantity, and —
for limit orders — a price.  The generator plays the role of the
simulator included in the Marketcetera community edition: deterministic
streams of plausible orders at a configurable rate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from enum import Enum


class Side(Enum):
    BUY = "buy"
    SELL = "sell"


class OrderType(Enum):
    MARKET = "market"
    LIMIT = "limit"


_order_counter = itertools.count(1)


@dataclass(frozen=True)
class Order:
    """One trading order as submitted by a trader or strategy engine."""

    order_id: str
    trader: str
    symbol: str
    side: Side
    order_type: OrderType
    quantity: int
    price: float | None = None  # required for LIMIT orders

    def validate(self) -> None:
        """Raise ValueError on malformed orders (pre-routing check)."""
        if not self.symbol or not self.symbol.isalpha():
            raise ValueError(f"invalid symbol: {self.symbol!r}")
        if self.quantity <= 0:
            raise ValueError(f"quantity must be positive: {self.quantity}")
        if self.order_type is OrderType.LIMIT:
            if self.price is None or self.price <= 0:
                raise ValueError("limit order needs a positive price")
        if self.order_type is OrderType.MARKET and self.price is not None:
            raise ValueError("market orders must not carry a price")


@dataclass(frozen=True)
class OrderAck:
    """The routing acknowledgement returned to the submitter."""

    order_id: str
    destination: str
    replicas: tuple[str, str]  # the two nodes the order was persisted on
    status: str = "routed"


#: A plausible set of liquid symbols for the simulator.
SYMBOLS = (
    "AAPL", "MSFT", "GOOG", "AMZN", "TSLA", "NVDA", "META", "JPM",
    "GS", "XOM", "WMT", "JNJ", "V", "PG", "UNH", "HD",
)


@dataclass
class OrderGenerator:
    """Deterministic stream of orders (the included simulator's role)."""

    rng: random.Random
    traders: tuple[str, ...] = ("trader-1", "trader-2", "strategy-A", "strategy-B")
    symbols: tuple[str, ...] = SYMBOLS
    hot_symbol_bias: float = 0.0  # fraction of orders pinned to symbols[0]

    def next_order(self) -> Order:
        if self.hot_symbol_bias > 0 and self.rng.random() < self.hot_symbol_bias:
            symbol = self.symbols[0]
        else:
            symbol = self.rng.choice(self.symbols)
        order_type = (
            OrderType.LIMIT if self.rng.random() < 0.6 else OrderType.MARKET
        )
        price = None
        if order_type is OrderType.LIMIT:
            price = round(self.rng.uniform(10.0, 500.0), 2)
        return Order(
            order_id=f"ord-{next(_order_counter)}",
            trader=self.rng.choice(self.traders),
            symbol=symbol,
            side=self.rng.choice((Side.BUY, Side.SELL)),
            order_type=order_type,
            quantity=self.rng.choice((100, 200, 500, 1000)),
            price=price,
        )

    def batch(self, count: int) -> list[Order]:
        return [self.next_order() for _ in range(count)]
