"""Marketcetera-style order routing (paper section 5.2).

The order routing system accepts orders from traders and automated
strategy engines and routes them to markets, brokers, and other financial
intermediaries.  For fault tolerance every order is persisted on two
nodes before the routing acknowledgement is returned.

Public surface:

- :class:`Order`, :class:`OrderAck`, :class:`Side`, :class:`OrderType` —
  the order model;
- :class:`OrderRouter` — the elastic class: ``submit_order``,
  ``cancel_order``, ``order_status``, with fine-grained scaling driven by
  routing throughput and write-lock contention (Figure 5's logic);
- :class:`OrderGenerator` — the trading-order simulator used as the
  workload (the community-edition simulator stand-in).
"""

from repro.apps.marketcetera.orders import (
    Order,
    OrderAck,
    OrderGenerator,
    OrderType,
    Side,
)
from repro.apps.marketcetera.execution import (
    ExecutionReport,
    Fill,
    MarketSimulator,
    TradingSession,
)
from repro.apps.marketcetera.router import OrderRouter, RejectedOrderError

__all__ = [
    "ExecutionReport",
    "Fill",
    "MarketSimulator",
    "Order",
    "OrderAck",
    "OrderGenerator",
    "OrderRouter",
    "OrderType",
    "RejectedOrderError",
    "Side",
    "TradingSession",
]
