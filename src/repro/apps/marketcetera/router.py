"""The elastic order router.

``submit_order`` validates, picks the destination market for the symbol,
persists the order on **two** replica keys (the paper's two-node
persistence for fault tolerance), and acknowledges.  Cancel and status
queries read the persisted record.

Scaling (fine-grained, Figure 5's structure): the rate-based target from
:class:`ThroughputScaledService` is vetoed when write-lock contention is
the bottleneck — if lock acquisition failures exceed 50% or lock latency
dominates the put latency, adding members would only increase contention,
so the router declines to grow.
"""

from __future__ import annotations

from repro.apps.common import ThroughputScaledService
from repro.apps.marketcetera.orders import Order, OrderAck
from repro.core.fields import elastic_field
from repro.routing import stable_hash


def order_affinity_key(order: Order) -> str:
    """The sharding affinity key for an order: its symbol.

    All orders for one symbol hit the same shard of a sharded router
    pool (``stub.invoke("submit_order", order, affinity_key=...)``), so
    per-symbol state — the venue session, the symbol's order book view —
    stays hot on that shard's members.
    """
    return order.symbol


class RejectedOrderError(Exception):
    """The order failed validation or referenced an unknown order id."""


#: Destination markets by first letter band — a stand-in for the routing
#: table real deployments configure per symbol/venue.
DESTINATIONS = ("NYSE", "NASDAQ", "ARCA", "BATS")


class OrderRouter(ThroughputScaledService):
    """Marketcetera-style order routing as one elastic object pool."""

    #: One member routes ~2,000 orders/s at QoS; peak A = 50,000 orders/s
    #: therefore needs about 30 members at the target utilization.
    CAPACITY_PER_MEMBER = 2_000.0
    #: Order routing keeps generous headroom: routing bursts within a
    #: burst interval must not queue orders (latency QoS dominates).
    TARGET_UTILIZATION = 0.81

    orders_routed = elastic_field(default=0)
    orders_rejected = elastic_field(default=0)
    lock_acq_failures = elastic_field(default=0.0)  # percent, 0-100
    lock_acq_latency = elastic_field(default=0.0)   # seconds

    def __init__(self) -> None:
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(40)

    # ------------------------------------------------------------------
    # remote methods
    # ------------------------------------------------------------------

    def submit_order(self, order: Order) -> OrderAck:
        """Validate, persist on two nodes, and route."""
        try:
            order.validate()
        except ValueError as exc:
            type(self).orders_rejected.update(self, lambda v: v + 1)
            raise RejectedOrderError(str(exc)) from exc
        destination = self.route_for(order.symbol)
        replicas = self._persist(order, destination)
        type(self).orders_routed.update(self, lambda v: v + 1)
        return OrderAck(
            order_id=order.order_id,
            destination=destination,
            replicas=replicas,
        )

    def order_status(self, order_id: str) -> dict:
        """Read back the persisted order record."""
        record = self._store().get(f"mkt/orders/{order_id}/r0", default=None)
        if record is None:
            raise RejectedOrderError(f"unknown order: {order_id}")
        return record

    def cancel_order(self, order_id: str) -> bool:
        """Cancel a routed order; idempotent (False when already gone)."""
        store = self._store()
        existed = store.delete(f"mkt/orders/{order_id}/r0")
        store.delete(f"mkt/orders/{order_id}/r1")
        return existed

    def report_execution(
        self, order_id: str, status: str, fills: list[dict]
    ) -> dict:
        """Record an execution report against the persisted order.

        Updates both replicas (the same two-node persistence as the
        original routing) and returns the updated record.  Unknown
        orders raise, matching FIX's reject for an unknown ClOrdID.
        """
        store = self._store()
        if not store.exists(f"mkt/orders/{order_id}/r0"):
            raise RejectedOrderError(f"unknown order: {order_id}")
        updated: dict = {}

        def apply(record):
            record = dict(record)
            record["status"] = status
            record["fills"] = list(record.get("fills", [])) + list(fills)
            record["filled_quantity"] = sum(f["qty"] for f in record["fills"])
            updated.update(record)
            return record

        for replica in ("r0", "r1"):
            store.update(f"mkt/orders/{order_id}/{replica}", apply)
        return updated

    def routed_count(self) -> int:
        return self.orders_routed

    def route_for(self, symbol: str) -> str:
        """Deterministic symbol -> market routing.

        Uses :func:`repro.routing.stable_hash`, not builtin ``hash``:
        the builtin is salted per process (PYTHONHASHSEED), so two pool
        members — separate JVMs in the paper's deployment — would have
        routed the same symbol to different markets.
        """
        return DESTINATIONS[stable_hash(symbol) % len(DESTINATIONS)]

    # ------------------------------------------------------------------
    # persistence (two nodes, paper section 5.2)
    # ------------------------------------------------------------------

    def _persist(self, order: Order, destination: str) -> tuple[str, str]:
        store = self._store()
        record = {
            "order_id": order.order_id,
            "trader": order.trader,
            "symbol": order.symbol,
            "side": order.side.value,
            "type": order.order_type.value,
            "quantity": order.quantity,
            "price": order.price,
            "destination": destination,
            "status": "routed",
        }
        replicas = (
            f"mkt/orders/{order.order_id}/r0",
            f"mkt/orders/{order.order_id}/r1",
        )
        for key in replicas:
            store.put(key, record)
        return replicas

    def _store(self):
        ctx = self._ermi_ctx
        if ctx is None:
            raise RuntimeError(
                "OrderRouter must be instantiated through "
                "ElasticRuntime.new_pool(...)"
            )
        return ctx.store

    # ------------------------------------------------------------------
    # fine-grained scaling (Figure 5's contention guard)
    # ------------------------------------------------------------------

    def scaling_guard(self, delta: int) -> int:
        """Do not add members when write-lock contention dominates.

        Mirrors Figure 5: if the failure rate for acquiring write locks
        exceeds 50%, or lock-acquisition latency is at least 80% of the
        put latency, additional members only raise contention — return 0.
        """
        if delta <= 0:
            return delta
        if self.lock_acq_failures > 50.0:
            return 0
        stats = self.get_method_call_stats()
        put = stats.get("submit_order")
        if put is not None and put.latency() > 0:
            if self.lock_acq_latency >= 0.8 * put.latency():
                return 0
        return delta
