"""DCS: a distributed coordination service (paper section 5.2).

DCS is a coordination service for datacenter applications in the spirit
of Chubby and Apache ZooKeeper: a hierarchical name space usable for
distributed configuration and synchronization, with **totally ordered
updates**.  This implementation provides:

- a znode tree (create/get/set/delete/children/exists) with per-node
  versions and create/modify transaction ids (zxids);
- total ordering of all updates through a global zxid sequencer;
- sessions with ephemeral nodes, cleaned up when the session closes;
- watches: clients register interest in a path and poll an ordered event
  feed (one-shot, ZooKeeper-style).
"""

from repro.apps.dcs.recipes import (
    Barrier,
    Counter,
    DistributedLock,
    LeaderElector,
)
from repro.apps.dcs.service import (
    BadVersionError,
    CoordinationService,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionExpiredError,
    WatchEvent,
)

__all__ = [
    "BadVersionError",
    "Barrier",
    "CoordinationService",
    "Counter",
    "DistributedLock",
    "LeaderElector",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "SessionExpiredError",
    "WatchEvent",
]
