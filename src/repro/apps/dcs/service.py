"""The elastic coordination service.

Store layout (``dcs/`` prefix):

- ``dcs/zxid`` — the global update sequencer.  Every mutation draws a
  zxid from it, which makes all updates totally ordered (the ordering of
  zxids *is* the order of updates, since each mutation commits its zxid
  atomically with the node record);
- ``dcs/node<path>`` — znode record: data, version, czxid, mzxid,
  ephemeral owner session;
- ``dcs/children<path>`` — sorted child-name list per directory;
- ``dcs/sessions/<id>`` — session record with its ephemeral nodes;
- ``dcs/watches<path>`` — client ids watching the path (one-shot);
- ``dcs/events/<client>`` — per-client ordered event feed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.apps.common import ThroughputScaledService
from repro.core.fields import elastic_field


class NoNodeError(Exception):
    """Path does not exist."""


class NodeExistsError(Exception):
    """Create on a path that already exists."""


class NotEmptyError(Exception):
    """Delete on a node that still has children."""


class BadVersionError(Exception):
    """Conditional update with a stale version."""


class SessionExpiredError(Exception):
    """Operation on a closed or unknown session."""


@dataclass(frozen=True)
class WatchEvent:
    """A change notification delivered through a client's event feed."""

    path: str
    kind: str   # "created" | "changed" | "deleted"
    zxid: int


_session_counter = itertools.count(1)


def _validate_path(path: str) -> None:
    if not path.startswith("/") or (path != "/" and path.endswith("/")):
        raise ValueError(f"invalid path: {path!r}")
    if "//" in path:
        raise ValueError(f"invalid path: {path!r}")


def _parent(path: str) -> str:
    if path == "/":
        raise ValueError("root has no parent")
    head, _, _ = path.rpartition("/")
    return head or "/"


def _name(path: str) -> str:
    return path.rpartition("/")[2]


class CoordinationService(ThroughputScaledService):
    """One member of the elastic DCS pool.

    All state lives in the shared store, so every member serves every
    path; the pool scales with update throughput.
    """

    #: Updates/s one member sustains at QoS; peak A = 75,000 updates/s
    #: needs ~25 members at the target utilization.
    CAPACITY_PER_MEMBER = 3_500.0
    #: Tight headroom: updates are cheap store operations.
    TARGET_UTILIZATION = 0.83

    updates_total = elastic_field(default=0)

    def __init__(self) -> None:
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(32)

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def create(
        self,
        path: str,
        data: object = None,
        ephemeral: bool = False,
        session_id: str | None = None,
    ) -> int:
        """Create a znode; returns its czxid.  The parent must exist
        (except for children of the root).  Ephemeral nodes require a
        live session and may not have children."""
        _validate_path(path)
        if path == "/":
            raise NodeExistsError("/")
        store = self._store()
        parent = _parent(path)
        if parent != "/" and not store.exists(f"dcs/node{parent}"):
            raise NoNodeError(parent)
        if parent != "/":
            parent_record = store.get(f"dcs/node{parent}")
            if parent_record.get("ephemeral_owner"):
                raise NodeExistsError(
                    f"ephemeral node {parent} cannot have children"
                )
        if ephemeral:
            if session_id is None:
                raise SessionExpiredError("ephemeral create needs a session")
            self._check_session(session_id)
        if store.exists(f"dcs/node{path}"):
            raise NodeExistsError(path)
        zxid = self._next_zxid()
        store.put(
            f"dcs/node{path}",
            {
                "data": data,
                "version": 0,
                "czxid": zxid,
                "mzxid": zxid,
                "ephemeral_owner": session_id if ephemeral else None,
            },
        )
        store.update(
            f"dcs/children{parent}",
            lambda names: sorted(set(names or []) | {_name(path)}),
            default=[],
        )
        if ephemeral:
            store.update(
                f"dcs/sessions/{session_id}",
                lambda s: {**s, "ephemerals": sorted(set(s["ephemerals"]) | {path})},
            )
        self._count_update()
        self._fire_watches(path, "created", zxid)
        return zxid

    def create_sequential(
        self,
        prefix: str,
        data: object = None,
        ephemeral: bool = False,
        session_id: str | None = None,
    ) -> str:
        """Create a node at ``prefix`` + a zero-padded, per-parent
        monotonic counter (ZooKeeper's sequential flag) and return the
        actual path created.  The counter never repeats even after
        deletions, which is what election/queue recipes rely on."""
        _validate_path(prefix)
        parent = _parent(prefix)
        seq = self._store().incr(f"dcs/seq{parent}")
        path = f"{prefix}{seq:010d}"
        self.create(path, data, ephemeral=ephemeral, session_id=session_id)
        return path

    def exists(self, path: str) -> bool:
        _validate_path(path)
        return path == "/" or self._store().exists(f"dcs/node{path}")

    def get(self, path: str) -> dict:
        """The znode record: data, version, czxid, mzxid."""
        _validate_path(path)
        record = self._store().get(f"dcs/node{path}", default=None)
        if record is None:
            raise NoNodeError(path)
        return dict(record)

    def set_data(self, path: str, data: object, version: int = -1) -> int:
        """Update a znode's data; ``version`` of -1 skips the check.
        Returns the new mzxid."""
        _validate_path(path)
        store = self._store()
        key = f"dcs/node{path}"
        zxid = self._next_zxid()

        def mutate(record):
            # Raising here aborts the store.update with nothing written —
            # a rejected conditional update must not create or touch the
            # record (not even its version).
            if record is None:
                raise NoNodeError(path)
            if version != -1 and record["version"] != version:
                raise BadVersionError(
                    f"{path}: expected v{version}, is v{record['version']}"
                )
            return {
                **record,
                "data": data,
                "version": record["version"] + 1,
                "mzxid": zxid,
            }

        store.update(key, mutate, default=None)
        self._count_update()
        self._fire_watches(path, "changed", zxid)
        return zxid

    def delete(self, path: str, version: int = -1) -> None:
        """Delete a leaf znode (conditional on ``version`` unless -1)."""
        _validate_path(path)
        store = self._store()
        record = store.get(f"dcs/node{path}", default=None)
        if record is None:
            raise NoNodeError(path)
        if version != -1 and record["version"] != version:
            raise BadVersionError(
                f"{path}: expected v{version}, is v{record['version']}"
            )
        if store.get(f"dcs/children{path}", default=[]):
            raise NotEmptyError(path)
        zxid = self._next_zxid()
        store.delete(f"dcs/node{path}")
        store.delete(f"dcs/children{path}")
        parent = _parent(path)
        store.update(
            f"dcs/children{parent}",
            lambda names: [n for n in (names or []) if n != _name(path)],
            default=[],
        )
        owner = record.get("ephemeral_owner")
        if owner:
            store.update(
                f"dcs/sessions/{owner}",
                lambda s: {
                    **s,
                    "ephemerals": [e for e in s["ephemerals"] if e != path],
                }
                if s
                else s,
                default=None,
            )
        self._count_update()
        self._fire_watches(path, "deleted", zxid)

    def get_children(self, path: str) -> list[str]:
        _validate_path(path)
        if path != "/" and not self.exists(path):
            raise NoNodeError(path)
        return list(self._store().get(f"dcs/children{path}", default=[]))

    # ------------------------------------------------------------------
    # sessions and ephemeral nodes
    # ------------------------------------------------------------------

    def create_session(self) -> str:
        session_id = f"sess-{next(_session_counter)}"
        self._store().put(
            f"dcs/sessions/{session_id}",
            {"id": session_id, "ephemerals": [], "open": True},
        )
        return session_id

    def close_session(self, session_id: str) -> list[str]:
        """Close a session, deleting its ephemeral nodes.  Returns the
        paths removed."""
        store = self._store()
        record = store.get(f"dcs/sessions/{session_id}", default=None)
        if record is None or not record["open"]:
            raise SessionExpiredError(session_id)
        removed = []
        for path in sorted(record["ephemerals"], key=len, reverse=True):
            try:
                self.delete(path)
                removed.append(path)
            except (NoNodeError, NotEmptyError):
                continue
        store.put(
            f"dcs/sessions/{session_id}",
            {**record, "ephemerals": [], "open": False},
        )
        return removed

    def _check_session(self, session_id: str) -> None:
        record = self._store().get(f"dcs/sessions/{session_id}", default=None)
        if record is None or not record["open"]:
            raise SessionExpiredError(session_id)

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------

    def watch(self, path: str, client_id: str) -> None:
        """Register a one-shot watch on ``path`` for ``client_id``."""
        _validate_path(path)
        self._store().update(
            f"dcs/watches{path}",
            lambda clients: sorted(set(clients or []) | {client_id}),
            default=[],
        )

    def poll_events(self, client_id: str) -> list[WatchEvent]:
        """Drain the client's event feed (ordered by zxid)."""
        store = self._store()
        key = f"dcs/events/{client_id}"
        events = store.get(key, default=[])
        if events:
            store.put(key, [])
        return list(events)

    def _fire_watches(self, path: str, kind: str, zxid: int) -> None:
        store = self._store()
        watchers = store.get(f"dcs/watches{path}", default=[])
        if not watchers:
            return
        store.put(f"dcs/watches{path}", [])  # one-shot semantics
        event = WatchEvent(path=path, kind=kind, zxid=zxid)
        for client in watchers:
            store.update(
                f"dcs/events/{client}",
                lambda feed: (feed or []) + [event],
                default=[],
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _next_zxid(self) -> int:
        """Draw the next transaction id — the total order of updates."""
        return self._store().incr("dcs/zxid")

    def _count_update(self) -> None:
        type(self).updates_total.update(self, lambda v: v + 1)

    def _store(self):
        ctx = self._ermi_ctx
        if ctx is None:
            raise RuntimeError(
                "CoordinationService must be instantiated through "
                "ElasticRuntime.new_pool(...)"
            )
        return ctx.store
