"""Coordination recipes built on DCS primitives.

The paper motivates DCS as a Chubby/ZooKeeper-class service "for
distributed configuration and synchronization"; these are the classic
synchronization patterns applications actually build on such services,
implemented purely against the public DCS surface (so they work through
a client stub against the elastic pool):

- :class:`DistributedLock` — ephemeral-sequential lock queue: fair FIFO
  locking where a crashed holder's session releases the lock;
- :class:`LeaderElector` — lowest-sequence-node election with observable
  leadership;
- :class:`Barrier` — N-party rendezvous;
- :class:`Counter` — an atomic counter on versioned ``set_data``.

Each recipe takes the DCS client (stub or direct instance) and a
session, mirroring how ZooKeeper recipes take a client handle.
"""

from __future__ import annotations

from typing import Any

from repro.apps.dcs.service import NoNodeError, NodeExistsError
from repro.errors import ApplicationError


def _unwrap(exc: Exception) -> Exception:
    """Recipes run against stubs (errors arrive wrapped) and direct
    instances (errors arrive raw); normalize to the raw cause."""
    cause = getattr(exc, "cause", None)
    return cause if cause is not None else exc


def _ensure_path(dcs: Any, path: str) -> None:
    """Create ``path`` and any missing ancestors (mkdir -p)."""
    parts = [p for p in path.split("/") if p]
    current = ""
    for part in parts:
        current += f"/{part}"
        try:
            dcs.create(current)
        except (ApplicationError, NodeExistsError) as exc:
            if not isinstance(_unwrap(exc), NodeExistsError):
                raise


class DistributedLock:
    """Fair distributed lock: ephemeral sequential nodes under a parent.

    The contender with the lowest sequence holds the lock; releasing (or
    the holder's session dying) admits the next in line.
    """

    def __init__(self, dcs: Any, path: str, session_id: str) -> None:
        self.dcs = dcs
        self.path = path
        self.session_id = session_id
        self._my_node: str | None = None
        self._ensure_parent()

    def _ensure_parent(self) -> None:
        _ensure_path(self.dcs, self.path)

    def try_acquire(self) -> bool:
        """Join the queue (if not already in it) and report whether we
        are at its head."""
        if self._my_node is None:
            self._my_node = self.dcs.create_sequential(
                f"{self.path}/lock-",
                data=self.session_id,
                ephemeral=True,
                session_id=self.session_id,
            )
        return self.is_held()

    def is_held(self) -> bool:
        if self._my_node is None:
            return False
        children = sorted(self.dcs.get_children(self.path))
        if not children:
            return False
        return self._my_node.rsplit("/", 1)[1] == children[0]

    def queue_position(self) -> int | None:
        """0 = holding; None = not queued."""
        if self._my_node is None:
            return None
        children = sorted(self.dcs.get_children(self.path))
        name = self._my_node.rsplit("/", 1)[1]
        return children.index(name) if name in children else None

    def release(self) -> None:
        if self._my_node is None:
            return
        try:
            self.dcs.delete(self._my_node)
        except (ApplicationError, NoNodeError) as exc:
            if not isinstance(_unwrap(exc), NoNodeError):
                raise
        self._my_node = None


class LeaderElector:
    """Lowest-sequence-node election (the ZooKeeper leader recipe)."""

    def __init__(self, dcs: Any, path: str, session_id: str, name: str) -> None:
        self.dcs = dcs
        self.path = path
        self.session_id = session_id
        self.name = name
        self._my_node: str | None = None
        _ensure_path(self.dcs, self.path)

    def volunteer(self) -> None:
        if self._my_node is None:
            self._my_node = self.dcs.create_sequential(
                f"{self.path}/candidate-",
                data=self.name,
                ephemeral=True,
                session_id=self.session_id,
            )

    def is_leader(self) -> bool:
        if self._my_node is None:
            return False
        children = sorted(self.dcs.get_children(self.path))
        return bool(children) and (
            self._my_node.rsplit("/", 1)[1] == children[0]
        )

    def current_leader(self) -> str | None:
        """Name of whoever currently leads (None with no candidates)."""
        children = sorted(self.dcs.get_children(self.path))
        if not children:
            return None
        record = self.dcs.get(f"{self.path}/{children[0]}")
        return record["data"]

    def withdraw(self) -> None:
        if self._my_node is not None:
            try:
                self.dcs.delete(self._my_node)
            except (ApplicationError, NoNodeError) as exc:
                if not isinstance(_unwrap(exc), NoNodeError):
                    raise
            self._my_node = None


class Barrier:
    """N-party rendezvous: enter() until ``parties`` arrived."""

    def __init__(self, dcs: Any, path: str, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1: {parties}")
        self.dcs = dcs
        self.path = path
        self.parties = parties
        if "/" in path.strip("/"):
            _ensure_path(self.dcs, path.rsplit("/", 1)[0])
        try:
            self.dcs.create(self.path, data=parties)
        except (ApplicationError, NodeExistsError) as exc:
            if not isinstance(_unwrap(exc), NodeExistsError):
                raise

    def enter(self, participant: str) -> bool:
        """Register arrival; True once the barrier is full."""
        try:
            self.dcs.create(f"{self.path}/{participant}")
        except (ApplicationError, NodeExistsError) as exc:
            if not isinstance(_unwrap(exc), NodeExistsError):
                raise  # double-enter is idempotent
        return self.is_open()

    def is_open(self) -> bool:
        return len(self.dcs.get_children(self.path)) >= self.parties

    def arrived(self) -> int:
        return len(self.dcs.get_children(self.path))


class Counter:
    """Atomic counter via conditional set_data (optimistic retry)."""

    def __init__(self, dcs: Any, path: str) -> None:
        self.dcs = dcs
        self.path = path
        if "/" in path.strip("/"):
            _ensure_path(self.dcs, path.rsplit("/", 1)[0])
        try:
            self.dcs.create(self.path, data=0)
        except (ApplicationError, NodeExistsError) as exc:
            if not isinstance(_unwrap(exc), NodeExistsError):
                raise

    def value(self) -> int:
        return self.dcs.get(self.path)["data"]

    def increment(self, by: int = 1, max_retries: int = 50) -> int:
        from repro.apps.dcs.service import BadVersionError

        for _ in range(max_retries):
            record = self.dcs.get(self.path)
            try:
                self.dcs.set_data(
                    self.path, record["data"] + by, version=record["version"]
                )
                return record["data"] + by
            except (ApplicationError, BadVersionError) as exc:
                if not isinstance(_unwrap(exc), BadVersionError):
                    raise
        raise RuntimeError(f"counter {self.path}: contention too high")
