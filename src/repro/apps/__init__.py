"""The four evaluation applications (paper section 5.2).

Each application is re-implemented on the ElasticRMI API, exactly as the
paper re-implemented the originals to add elasticity management:

- :mod:`repro.apps.marketcetera` — financial order routing (accepts
  orders from traders and routes them to markets/brokers, persisting each
  order on two nodes for fault tolerance);
- :mod:`repro.apps.hedwig` — topic-based publish/subscribe with hubs
  partitioning topic ownership and at-most-once delivery;
- :mod:`repro.apps.paxos` — multi-Paxos consensus (Kirsch & Amir's
  "Paxos for Systems Builders" structure: an elected leader, prepare/
  promise and accept/accepted phases, a replicated log);
- :mod:`repro.apps.dcs` — a hierarchical coordination service in the
  spirit of Chubby/ZooKeeper: a znode tree, totally ordered updates,
  ephemeral nodes, and watches.

All four override ``change_pool_size`` with application-specific logic —
the fine-grained elasticity the paper's evaluation credits for the
agility win over CPU/memory-threshold scaling.
"""
