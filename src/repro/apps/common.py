"""Shared scaling machinery for the evaluation applications.

Every application scales on the same principle the paper's Figure 5
illustrates: *compute the capacity the observed workload actually needs
from application-level measurements*, instead of creeping ±1 on a CPU
threshold.  :class:`ThroughputScaledService` implements the common part —
measure the offered rate, divide by the per-member QoS capacity, vote the
difference — and exposes a guard hook each application overrides with its
own domain logic (lock contention for the order router, quorum parity for
Paxos, backlog growth for Hedwig, ...).

The offered rate comes from two sources, checked in order:

1. the shared store key ``<pool>$offered_rate`` — written by workload
   drivers (and by the simulation experiments, where no real invocations
   flow);
2. the pool's method-call statistics over the last burst interval — the
   live-mode measurement (Figure 3's ``getMethodCallStats``).
"""

from __future__ import annotations

import math

from repro.core.api import ElasticObject


class ThroughputScaledService(ElasticObject):
    """Base class for rate-targeting fine-grained scaling.

    Subclasses set :attr:`CAPACITY_PER_MEMBER` (operations/second one
    member sustains at QoS) and may override :meth:`scaling_guard`.
    """

    #: Operations per second one member can serve while meeting QoS.
    CAPACITY_PER_MEMBER: float = 1000.0
    #: Aim to run members at this fraction of capacity (headroom for
    #: bursts within a burst interval).
    TARGET_UTILIZATION: float = 0.85
    #: Largest single-vote change — fine-grained scaling can jump several
    #: members at once (Figure 5 returns 2), but not unboundedly.
    MAX_STEP: int = 8

    # -- rate measurement ---------------------------------------------------

    def observed_rate(self) -> float:
        """Offered operations/second, from the driver hint or live stats."""
        ctx = self._ermi_ctx
        if ctx is not None:
            hint = ctx.store.get(f"{ctx.pool.name}$offered_rate", default=None)
            if hint is not None:
                return float(hint)
        stats = self.get_method_call_stats()
        return sum(s.rate for s in stats.values())

    def desired_members(self, rate: float) -> int:
        """Members needed to serve ``rate`` at the target utilization."""
        effective = self.CAPACITY_PER_MEMBER * self.TARGET_UTILIZATION
        if effective <= 0:
            raise ValueError("capacity per member must be positive")
        return max(1, math.ceil(rate / effective))

    # -- the fine-grained vote ------------------------------------------------

    def change_pool_size(self) -> int:
        rate = self.observed_rate()
        target = self.desired_members(rate)
        delta = target - self.get_pool_size()
        delta = max(-self.MAX_STEP, min(self.MAX_STEP, delta))
        return self.scaling_guard(delta)

    def scaling_guard(self, delta: int) -> int:
        """Application-specific veto/adjustment of the vote.

        The default lets the rate-based vote through unchanged.
        Subclasses override this with domain logic — e.g. Figure 5's
        order cache refuses to grow under write-lock contention because
        more members would only contend harder.
        """
        return delta
