"""The Paxos replica: proposer-forwarder, acceptor, and learner in one.

Every pool member holds acceptor state (promised ballot, accepted
proposals) and a learner log; the member co-located with the pool's
sentinel acts as the leader.  ``propose`` on any member forwards to the
leader over the group channel; the leader establishes its ballot with a
prepare/promise round (once per leadership term), then drives one
accept/accepted round per command.

Safety notes:

- acceptor state is per-member and in memory, as Paxos requires — the
  shared store is *not* used to shortcut consensus;
- a new leader re-proposes any values it learns about in promises before
  assigning new slots, preserving the Paxos invariant;
- quorum is a strict majority of active members at round time, so
  elastic scaling changes the quorum size but never breaks safety
  (intersecting majorities).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.apps.common import ThroughputScaledService
from repro.apps.paxos.messages import (
    ZERO,
    Accept,
    Accepted,
    Ballot,
    Learn,
    Nack,
    Prepare,
    Promise,
)
from repro.core.fields import elastic_field


class NoQuorumError(Exception):
    """A round could not assemble a majority of acceptors."""


class PaxosReplica(ThroughputScaledService):
    """One member of the elastic Paxos pool."""

    #: Consensus rounds/s one replica sustains at QoS (each round is
    #: two message phases plus log application); peak A = 24,000
    #: rounds/s needs ~23 replicas at the target utilization.
    #: Tight headroom: rounds are short and the pool tracks demand closely.
    CAPACITY_PER_MEMBER = 1_200.0

    TARGET_UTILIZATION = 0.88

    rounds_completed = elastic_field(default=0)
    rounds_aborted = elastic_field(default=0)

    MAX_ROUND_RETRIES = 5

    def __init__(self) -> None:
        super().__init__()
        self.set_min_pool_size(3)
        self.set_max_pool_size(25)
        # Acceptor state (volatile, per member — as Paxos prescribes).
        self._promised: Ballot = ZERO
        self._accepted: dict[int, tuple[Ballot, Any]] = {}
        # Learner state.
        self._chosen: dict[int, Any] = {}
        self._applied_upto = 0
        self._state: dict[str, Any] = {}  # the replicated state machine
        # Proposer state (meaningful only while leading).
        self._ballot: Ballot | None = None
        self._ballot_established = False
        self._next_slot = 1
        # Live mode runs remote calls on dispatch threads: the leader
        # serializes rounds, and acceptor/learner state updates are
        # guarded (single-threaded in simulation, contended in live).
        self._proposer_lock = threading.RLock()
        self._acceptor_lock = threading.RLock()

    # ------------------------------------------------------------------
    # public remote methods
    # ------------------------------------------------------------------

    def propose(self, command: dict) -> dict:
        """Run one consensus round for ``command``; returns the slot and
        the state-machine result.  Callable on any member."""
        leader = self._leader_member()
        if leader.uid == self._me().uid:
            return self._lead(command)
        # Forward to the leader over the channel; the reply slot is
        # filled synchronously (in-process group channel).
        reply: list[dict] = []
        self._channel().send(
            self._address(),
            leader.address(),
            {"kind": "paxos-forward", "command": command, "reply": reply},
        )
        if not reply:
            raise NoQuorumError("leader did not answer the forwarded proposal")
        result = reply[0]
        if "error" in result:
            raise NoQuorumError(result["error"])
        return result

    def read(self, key: str) -> Any:
        """Read from the local state machine replica.

        Reads are served locally (possibly slightly stale on followers),
        which is the usual Paxos deployment trade-off for read load.
        """
        return self._state.get(key)

    def chosen_log(self) -> dict[int, Any]:
        """The learner's view of the chosen log (for tests/inspection)."""
        return dict(self._chosen)

    def applied_upto(self) -> int:
        return self._applied_upto

    # ------------------------------------------------------------------
    # leadership and rounds
    # ------------------------------------------------------------------

    def _lead(self, command: dict) -> dict:
        with self._proposer_lock:
            return self._lead_locked(command)

    def _lead_locked(self, command: dict) -> dict:
        for attempt in range(self.MAX_ROUND_RETRIES):
            try:
                if not self._ballot_established:
                    self._establish_leadership()
                slot = self._next_slot
                self._accept_round(slot, command)
                # Consume the slot only after the round succeeded, so a
                # failed round never leaves an unfillable log gap.
                self._next_slot = slot + 1
                type(self).rounds_completed.update(self, lambda v: v + 1)
                # Deliver the state-machine result from our own replica.
                return {"slot": slot, "result": self._apply_result(slot)}
            except NoQuorumError:
                type(self).rounds_aborted.update(self, lambda v: v + 1)
                self._ballot_established = False  # re-prepare with higher ballot
        raise NoQuorumError(
            f"round failed after {self.MAX_ROUND_RETRIES} attempts"
        )

    def _establish_leadership(self) -> None:
        """Phase 1 for all open slots: pick a ballot above everything we
        have seen and collect a majority of promises."""
        me = self._me().uid
        base = max(self._promised, self._ballot or ZERO)
        self._ballot = base.next(me)
        prepare = Prepare(ballot=self._ballot, from_slot=self._applied_upto + 1)
        replies = self._broadcast_collect({"kind": "paxos", "msg": prepare})
        promises = [r for r in replies if isinstance(r, Promise)]
        if len(promises) < self._quorum():
            nacks = [r for r in replies if isinstance(r, Nack)]
            if nacks:
                highest = max(n.promised for n in nacks)
                self._ballot = highest.next(me)
            raise NoQuorumError(
                f"prepare gathered {len(promises)} promises; "
                f"quorum is {self._quorum()}"
            )
        # Honour previously accepted values: re-propose the highest-ballot
        # accepted value per slot before anything new.
        inherited: dict[int, tuple[Ballot, Any]] = {}
        for promise in promises:
            for slot, (ballot, value) in promise.accepted.items():
                if slot not in inherited or ballot > inherited[slot][0]:
                    inherited[slot] = (ballot, value)
        for slot in sorted(inherited):
            if slot not in self._chosen:
                self._accept_round(slot, inherited[slot][1])
            self._next_slot = max(self._next_slot, slot + 1)
        self._next_slot = max(self._next_slot, self._applied_upto + 1)
        self._ballot_established = True

    def _accept_round(self, slot: int, value: Any) -> None:
        """Phase 2 for one slot; raises NoQuorumError without a majority."""
        assert self._ballot is not None
        accept = Accept(ballot=self._ballot, slot=slot, value=value)
        replies = self._broadcast_collect({"kind": "paxos", "msg": accept})
        accepted = [r for r in replies if isinstance(r, Accepted)]
        if len(accepted) < self._quorum():
            raise NoQuorumError(
                f"accept for slot {slot} gathered {len(accepted)}; "
                f"quorum is {self._quorum()}"
            )
        learn = Learn(slot=slot, value=value)
        self._channel().broadcast(
            self._address(), {"kind": "paxos", "msg": learn}
        )

    # ------------------------------------------------------------------
    # message handling (acceptor + learner roles)
    # ------------------------------------------------------------------

    def on_pool_join(self) -> None:
        """Catch up the learner from the group after joining mid-stream.

        Peers answer with a *snapshot* — their state machine, the slot it
        reflects, and the chosen tail beyond it — so a long-lived pool
        that has compacted its log can still bootstrap new members.  The
        joiner installs the most advanced snapshot and merges the tails
        (chosen values are immutable, so unioning them is safe).
        """
        replies = self._broadcast_collect({"kind": "paxos-catchup"})
        best = None
        for snapshot in replies:
            if best is None or snapshot["applied_upto"] > best["applied_upto"]:
                best = snapshot
        if best is not None and best["applied_upto"] > self._applied_upto:
            self._state = dict(best["state"])
            self._applied_upto = best["applied_upto"]
        for snapshot in replies:
            for slot, value in snapshot["tail"].items():
                if slot > self._applied_upto:
                    self._chosen.setdefault(slot, value)
        self._next_slot = max(self._next_slot, self._applied_upto + 1)
        self._apply_contiguous()

    def _catchup_snapshot(self) -> dict:
        with self._acceptor_lock:
            return {
                "state": dict(self._state),
                "applied_upto": self._applied_upto,
                "tail": {
                    slot: value
                    for slot, value in self._chosen.items()
                    if slot > self._applied_upto
                },
            }

    def compact(self, keep_slots: int = 0) -> int:
        """Discard chosen/accepted entries already reflected in the state
        machine (keeping the last ``keep_slots`` for paranoia).  Returns
        the number of log entries dropped.  Safe because catch-up ships
        snapshots, not raw logs."""
        if keep_slots < 0:
            raise ValueError(f"keep_slots must be >= 0: {keep_slots}")
        horizon = self._applied_upto - keep_slots
        with self._acceptor_lock:
            before = len(self._chosen)
            self._chosen = {
                slot: v for slot, v in self._chosen.items() if slot > horizon
            }
            self._accepted = {
                slot: v for slot, v in self._accepted.items() if slot > horizon
            }
            return before - len(self._chosen)

    def on_group_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, dict):
            return
        kind = message.get("kind")
        if kind == "paxos-catchup":
            collect = message.get("collect")
            if collect is not None and sender != self._address():
                collect.append(self._catchup_snapshot())
        elif kind == "paxos-forward":
            message["reply"].append(self._handle_forward(message["command"]))
        elif kind == "paxos":
            msg = message["msg"]
            collect = message.get("collect")
            response = self._handle_paxos(msg)
            if collect is not None and response is not None:
                collect.append(response)

    def _handle_forward(self, command: dict) -> dict:
        if self._leader_member().uid != self._me().uid:
            return {"error": "not the leader"}
        try:
            return self._lead(command)
        except NoQuorumError as exc:
            return {"error": str(exc)}

    def _handle_paxos(self, msg: Any) -> Any:
        with self._acceptor_lock:
            return self._handle_paxos_locked(msg)

    def _handle_paxos_locked(self, msg: Any) -> Any:
        if isinstance(msg, Prepare):
            if msg.ballot >= self._promised:
                self._promised = msg.ballot
                relevant = {
                    slot: entry
                    for slot, entry in self._accepted.items()
                    if slot >= msg.from_slot
                }
                return Promise(
                    ballot=msg.ballot,
                    acceptor_uid=self._me().uid,
                    accepted=relevant,
                )
            return Nack(promised=self._promised, acceptor_uid=self._me().uid)
        if isinstance(msg, Accept):
            if msg.ballot >= self._promised:
                self._promised = msg.ballot
                self._accepted[msg.slot] = (msg.ballot, msg.value)
                return Accepted(
                    ballot=msg.ballot,
                    slot=msg.slot,
                    acceptor_uid=self._me().uid,
                )
            return Nack(promised=self._promised, acceptor_uid=self._me().uid)
        if isinstance(msg, Learn):
            self._chosen[msg.slot] = msg.value
            self._apply_contiguous()
            return None
        return None

    # ------------------------------------------------------------------
    # the replicated state machine
    # ------------------------------------------------------------------

    def _apply_contiguous(self) -> None:
        while self._applied_upto + 1 in self._chosen:
            slot = self._applied_upto + 1
            self._apply(self._chosen[slot])
            self._applied_upto = slot

    def _apply(self, command: Any) -> Any:
        if not isinstance(command, dict):
            return None
        op = command.get("op")
        if op == "put":
            self._state[command["key"]] = command["value"]
            return command["value"]
        if op == "incr":
            new = self._state.get(command["key"], 0) + command.get("by", 1)
            self._state[command["key"]] = new
            return new
        if op == "noop":
            return None
        return None

    def _apply_result(self, slot: int) -> Any:
        self._apply_contiguous()
        if slot <= self._applied_upto:
            return self._apply_preview(self._chosen[slot])
        return None

    def _apply_preview(self, command: Any) -> Any:
        """The externally visible result of a command (already applied)."""
        if isinstance(command, dict) and command.get("op") in ("put", "incr"):
            return self._state.get(command["key"])
        return None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _me(self):
        return self._ctx().member

    def _channel(self):
        return self._ctx().pool.channel

    def _address(self) -> str:
        return self._me().address()

    def _leader_member(self):
        leader = self._ctx().pool.sentinel()
        if leader is None:
            raise NoQuorumError("no leader: pool has no active members")
        return leader

    def _quorum(self) -> int:
        n = len(self._ctx().pool.active_members())
        return n // 2 + 1

    def _broadcast_collect(self, message: dict) -> list[Any]:
        collect: list[Any] = []
        message = dict(message)
        message["collect"] = collect
        self._channel().broadcast(self._address(), message)
        return collect

    # ------------------------------------------------------------------
    # fine-grained scaling
    # ------------------------------------------------------------------

    def scaling_guard(self, delta: int) -> int:
        """Prefer odd pool sizes: an even-sized consensus group pays for
        an extra member without improving quorum fault tolerance.

        An even target is always rounded *up* to the next odd size (grow
        one more / shrink one fewer) so the preference can never make the
        pool oscillate between two sizes across burst intervals.
        """
        if delta == 0:
            return 0
        size = self.get_pool_size()
        target = size + delta
        if target % 2 == 0:
            target += 1
        adjusted = target - size
        return max(-self.MAX_STEP, min(self.MAX_STEP, adjusted))
