"""Multi-Paxos consensus (paper section 5.2).

A working implementation of multi-Paxos structured after Kirsch & Amir's
"Paxos for Systems Builders": an elected leader (ElasticRMI's sentinel —
the lowest-uid member — doubles as the Paxos leader), a prepare/promise
phase establishing the leader's ballot, accept/accepted rounds filling a
replicated log of slots, and learners applying chosen commands to a
replicated state machine in slot order.

Messages travel over the pool's group channel; every pool member is
proposer-forwarder, acceptor, and learner at once, as in practical
deployments.  Quorum is a majority of the pool's active members, so the
protocol keeps working across elastic scaling.
"""

from repro.apps.paxos.messages import (
    Accept,
    Accepted,
    Ballot,
    Learn,
    Nack,
    Prepare,
    Promise,
)
from repro.apps.paxos.replica import NoQuorumError, PaxosReplica

__all__ = [
    "Accept",
    "Accepted",
    "Ballot",
    "Learn",
    "Nack",
    "NoQuorumError",
    "PaxosReplica",
    "Prepare",
    "Promise",
]
