"""Paxos wire messages.

Ballots order as (round, proposer uid) so competing proposers never tie.
The messages carry exactly the classic fields; everything else (reply
collection) is transport framing added by the replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import Any


@total_ordering
@dataclass(frozen=True)
class Ballot:
    """A proposal number: globally ordered, proposer-unique."""

    number: int
    proposer_uid: int

    def _key(self) -> tuple[int, int]:
        return (self.number, self.proposer_uid)

    def __lt__(self, other: "Ballot") -> bool:
        return self._key() < other._key()

    def next(self, proposer_uid: int) -> "Ballot":
        """The smallest ballot of ``proposer_uid`` larger than this one."""
        return Ballot(self.number + 1, proposer_uid)


ZERO = Ballot(0, 0)


@dataclass(frozen=True)
class Prepare:
    """Phase 1a: leader asks acceptors to promise ballot ``ballot`` and
    report anything accepted at or after ``from_slot``."""

    ballot: Ballot
    from_slot: int


@dataclass(frozen=True)
class Promise:
    """Phase 1b: acceptor promises; ``accepted`` maps slot -> (ballot,
    value) for previously accepted proposals the leader must honour."""

    ballot: Ballot
    acceptor_uid: int
    accepted: dict[int, tuple[Ballot, Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class Accept:
    """Phase 2a: leader asks acceptors to accept ``value`` at ``slot``."""

    ballot: Ballot
    slot: int
    value: Any


@dataclass(frozen=True)
class Accepted:
    """Phase 2b: acceptor accepted the proposal."""

    ballot: Ballot
    slot: int
    acceptor_uid: int


@dataclass(frozen=True)
class Nack:
    """Rejection: the acceptor has promised a higher ballot."""

    promised: Ballot
    acceptor_uid: int


@dataclass(frozen=True)
class Learn:
    """Commit notification: ``value`` is chosen at ``slot``."""

    slot: int
    value: Any
