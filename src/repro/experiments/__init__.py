"""Experiment drivers: regenerate every evaluation figure of the paper.

- Figures 7a/7b — the workload patterns themselves
  (:func:`figure7a_workload`, :func:`figure7b_workload`);
- Figures 7c-7j — agility over time for each application x workload,
  comparing ElasticRMI, ElasticRMI-CPUMem, CloudWatch, and
  Overprovisioning (:func:`figure7_agility`);
- Figures 8a/8b — ElasticRMI provisioning latency over each run
  (:func:`figure8_provisioning`).

Each experiment replays the paper's 450/500-minute workload traces in
virtual time on the simulation kernel, running the *real* ElasticRMI
runtime (pools, policies, sentinels, provisioning delays) against the
modeled baselines.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for measured-vs-paper results.
"""

from repro.experiments.appmodels import APP_MODELS, AppModel
from repro.experiments.deployments import DEPLOYMENTS
from repro.experiments.dynamics import StepResponse, step_response_comparison
from repro.experiments.harness import DeploymentResult, run_custom, run_deployment
from repro.experiments.report import run_full_evaluation
from repro.experiments.figures import (
    figure7_agility,
    figure7a_workload,
    figure7b_workload,
    figure8_provisioning,
)

__all__ = [
    "APP_MODELS",
    "AppModel",
    "DEPLOYMENTS",
    "DeploymentResult",
    "figure7_agility",
    "figure7a_workload",
    "figure7b_workload",
    "figure8_provisioning",
    "run_custom",
    "run_deployment",
    "run_full_evaluation",
    "step_response_comparison",
    "StepResponse",
]
