"""Per-application capacity models for the elasticity experiments.

An :class:`AppModel` ties together everything an experiment needs to know
about one application:

- the elastic class deployed on the ElasticRMI runtime;
- the per-member QoS capacity (operations/second one member serves while
  meeting the application's QoS), consistent with the class's
  ``CAPACITY_PER_MEMBER``;
- ``req_min(rate, t)`` — the minimum members needed to meet QoS at the
  offered rate, the denominator of the SPEC agility metric.  The QoS
  boundary sits at :data:`QOS_UTILIZATION` of a member's capacity, and
  applications add their own wrinkles (Hedwig's replication and
  at-most-once bookkeeping make its requirement fluctuate more
  erratically, as the paper observes in section 5.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.apps.dcs.service import CoordinationService
from repro.apps.hedwig.hub import Hub
from repro.apps.marketcetera.router import OrderRouter
from repro.apps.paxos.replica import PaxosReplica
from repro.core.api import ElasticObject
from repro.workloads.patterns import POINT_A

#: QoS is met while members run at or below this fraction of capacity.
QOS_UTILIZATION = 0.9


@dataclass(frozen=True)
class AppModel:
    """Everything the harness needs to simulate one application."""

    name: str
    cls: type[ElasticObject]
    capacity_per_member: float
    point_a: float
    min_members: int
    max_members: int
    #: multiplicative modifier on the capacity requirement at time t
    #: (models app-specific effects like replication overhead).
    req_modifier: Callable[[float], float] = lambda t: 1.0

    def req_min(self, rate: float, t: float = 0.0) -> int:
        """Minimum members meeting QoS at ``rate`` offered ops/s."""
        if rate < 0:
            raise ValueError(f"negative rate: {rate}")
        effective = self.capacity_per_member * QOS_UTILIZATION
        need = math.ceil(rate * self.req_modifier(t) / effective)
        return max(self.min_members, need)

    def utilization(self, rate: float, members: int) -> float:
        """Average member CPU percent at ``rate`` with ``members`` serving."""
        if members <= 0:
            return 100.0
        return min(100.0, 100.0 * rate / (members * self.capacity_per_member))

    def peak_req(self, pattern) -> int:
        """The overprovisioning oracle's fixed capacity: the largest
        requirement anywhere on the trace."""
        step = 60.0
        steps = int(pattern.duration_s / step) + 1
        return max(
            self.req_min(pattern.rate(i * step), i * step)
            for i in range(steps)
        )


def _hedwig_req_modifier(t: float) -> float:
    """Hedwig's Req_min 'changes more erratically ... due to the
    replication and at-most-once guarantees' (section 5.5): a
    deterministic ripple on top of the base requirement."""
    return 1.0 + 0.12 * abs(math.sin(t / 700.0)) + 0.06 * abs(math.sin(t / 190.0))


APP_MODELS: dict[str, AppModel] = {
    "marketcetera": AppModel(
        name="marketcetera",
        cls=OrderRouter,
        capacity_per_member=OrderRouter.CAPACITY_PER_MEMBER,
        point_a=POINT_A["marketcetera"],
        min_members=2,
        max_members=40,
    ),
    "hedwig": AppModel(
        name="hedwig",
        cls=Hub,
        capacity_per_member=Hub.CAPACITY_PER_MEMBER,
        point_a=POINT_A["hedwig"],
        min_members=2,
        max_members=32,
        req_modifier=_hedwig_req_modifier,
    ),
    "paxos": AppModel(
        name="paxos",
        cls=PaxosReplica,
        capacity_per_member=PaxosReplica.CAPACITY_PER_MEMBER,
        point_a=POINT_A["paxos"],
        min_members=3,
        max_members=25,
    ),
    "dcs": AppModel(
        name="dcs",
        cls=CoordinationService,
        capacity_per_member=CoordinationService.CAPACITY_PER_MEMBER,
        point_a=POINT_A["dcs"],
        min_members=2,
        max_members=32,
    ),
}
