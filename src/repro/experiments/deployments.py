"""Deployment adapters: the four systems compared in Figure 7.

Every adapter exposes the same narrow surface to the harness —
``capacity()``, ``on_control_step(t, rate)``, ``provisioning_latencies()``
— but they differ exactly where the paper's deployments differ:

- :class:`ElasticRMIDeployment` (variant ``fine``) runs the **real**
  ElasticRMI runtime on the simulation kernel: the application class with
  its fine-grained ``change_pool_size``, container provisioning (< 30 s,
  load-dependent), 60 s burst interval.
- :class:`ElasticRMIDeployment` (variant ``cpumem``) is the
  ElasticRMI-CPUMem configuration: the same runtime and provisioning, but
  a class that only sets the CloudWatch CPU/memory thresholds (no
  application-level properties), evaluated on CloudWatch's 300 s period.
- :class:`CloudWatchDeployment` is the CloudWatch+AutoScaling model: the
  same threshold conditions, but VM provisioning measured in minutes and
  a scaling cooldown.
- :class:`OverprovisionDeployment` is the oracle pinned at the trace's
  peak requirement.
"""

from __future__ import annotations

import math

from repro.baselines.cloudwatch import CloudWatchAutoScaler, CloudWatchConfig
from repro.baselines.overprovision import OverprovisioningDeployment
from repro.cluster.provisioner import ContainerProvisioner, VMProvisioner
from repro.core.api import ElasticObject
from repro.core.runtime import ElasticRuntime
from repro.experiments.appmodels import AppModel
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.workloads.patterns import WorkloadPattern

#: The utilization conditions shared by CloudWatch and ElasticRMI-CPUMem
#: ("the same conditions are used to decide on elastic scaling",
#: section 5.5).
CPU_HIGH, CPU_LOW = 85.0, 55.0
RAM_HIGH, RAM_LOW = 70.0, 40.0
#: CloudWatch alarm period; also the CPUMem burst interval.
ALARM_PERIOD_S = 300.0
#: RAM tracks CPU at this ratio in the experiments' utilization model.
RAM_RATIO = 0.75


class CpuMemService(ElasticObject):
    """The ElasticRMI-CPUMem class: thresholds only, no app properties."""

    def __init__(self) -> None:
        super().__init__()
        self.set_burst_interval(ALARM_PERIOD_S)
        self.set_cpu_incr_threshold(CPU_HIGH)
        self.set_cpu_decr_threshold(CPU_LOW)
        self.set_ram_incr_threshold(RAM_HIGH)
        self.set_ram_decr_threshold(RAM_LOW)

    def serve(self) -> None:
        """Placeholder remote method (traffic is modeled, not invoked)."""


class _SharedUtilization:
    """One dial all members of a deployment read their utilization from."""

    def __init__(self) -> None:
        self.cpu = 0.0

    def source(self, member) -> "_SharedUtilization":
        return self

    def cpu_percent(self) -> float:
        return self.cpu

    def ram_percent(self) -> float:
        return self.cpu * RAM_RATIO


class ElasticRMIDeployment:
    """The real runtime driving a pool of the application's class."""

    def __init__(
        self,
        kernel: Kernel,
        app: AppModel,
        seed: int,
        variant: str = "fine",
    ) -> None:
        if variant not in ("fine", "cpumem"):
            raise ValueError(f"unknown variant: {variant}")
        self.app = app
        self.variant = variant
        self.name = "elasticrmi" if variant == "fine" else "elasticrmi-cpumem"
        nodes = math.ceil((app.max_members + 2) / 4)
        rng = RngStreams(seed)
        self.runtime = ElasticRuntime.simulated(
            kernel,
            nodes=nodes,
            slices_per_node=4,
            provisioner=ContainerProvisioner(rng.stream("prov")),
            rng=rng,
        )
        self._dial = _SharedUtilization()
        if variant == "fine":
            self.pool = self.runtime.new_pool(
                app.cls,
                name=app.name,
                min_size=app.min_members,
                max_size=app.max_members,
                utilization_factory=self._dial.source,
            )
        else:
            self.pool = self.runtime.new_pool(
                CpuMemService,
                name=app.name,
                min_size=app.min_members,
                max_size=app.max_members,
                utilization_factory=self._dial.source,
            )

    def capacity(self) -> int:
        return self.pool.size()

    def on_control_step(self, t: float, rate: float) -> None:
        # The workload driver's rate hint (what live deployments would
        # measure from method-call statistics).
        self.runtime.store.put(f"{self.pool.name}$offered_rate", rate)
        self._dial.cpu = self.app.utilization(rate, max(1, self.pool.size()))

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        return [
            (r.requested_at, r.latency)
            for r in self.pool.provisioning_records
            if r.direction == "up" and r.uid > self.app.min_members
        ]

    def stop(self) -> None:
        self.runtime.shutdown()


class CloudWatchDeployment:
    """CloudWatch alarms + AutoScaling group + VM boot latency."""

    name = "cloudwatch"

    def __init__(self, kernel: Kernel, app: AppModel, seed: int) -> None:
        self.app = app
        rng = RngStreams(seed)
        self.scaler = CloudWatchAutoScaler(
            CloudWatchConfig(
                min_capacity=app.min_members,
                max_capacity=app.max_members,
                cpu_high=CPU_HIGH,
                cpu_low=CPU_LOW,
                ram_high=RAM_HIGH,
                ram_low=RAM_LOW,
                period_s=ALARM_PERIOD_S,
                cooldown_s=300.0,
            ),
            VMProvisioner(rng.stream("vm")),
        )

    def capacity(self) -> int:
        return self.scaler.capacity()

    def on_control_step(self, t: float, rate: float) -> None:
        cpu = self.app.utilization(rate, max(1, self.scaler.capacity()))
        self.scaler.observe(t, cpu, cpu * RAM_RATIO)

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        return self.scaler.provisioning_latencies()

    def stop(self) -> None:
        pass


class OverprovisionDeployment:
    """The oracle: fixed at the trace's peak requirement."""

    name = "overprovisioning"

    def __init__(
        self, kernel: Kernel, app: AppModel, seed: int, pattern: WorkloadPattern
    ) -> None:
        self.app = app
        self.inner = OverprovisioningDeployment(app.peak_req(pattern))

    def capacity(self) -> int:
        return self.inner.capacity()

    def on_control_step(self, t: float, rate: float) -> None:
        pass

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        return []

    def stop(self) -> None:
        pass


#: Deployment registry used by the harness and benches.
DEPLOYMENTS = ("elasticrmi", "elasticrmi-cpumem", "cloudwatch", "overprovisioning")


def build_deployment(
    name: str,
    kernel: Kernel,
    app: AppModel,
    pattern: WorkloadPattern,
    seed: int,
):
    if name == "elasticrmi":
        return ElasticRMIDeployment(kernel, app, seed, variant="fine")
    if name == "elasticrmi-cpumem":
        return ElasticRMIDeployment(kernel, app, seed, variant="cpumem")
    if name == "cloudwatch":
        return CloudWatchDeployment(kernel, app, seed)
    if name == "overprovisioning":
        return OverprovisionDeployment(kernel, app, seed, pattern)
    raise ValueError(f"unknown deployment: {name}")
