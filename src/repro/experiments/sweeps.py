"""Parameter sweeps: robustness of the headline results.

The paper reports single runs; a reproduction can do better and check
that the orderings survive randomness and configuration changes:

- :func:`seed_sweep` — repeat one panel across seeds and summarize the
  per-deployment agility distribution;
- :func:`cluster_size_sweep` — vary the cluster's slack (max pool size
  relative to the peak requirement) and verify ElasticRMI's win does not
  depend on generous headroom.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from repro.experiments.figures import FIGURE7_PANELS, figure7_agility


@dataclass
class SweepSummary:
    """Per-deployment agility across sweep points."""

    values: dict[str, list[float]] = field(default_factory=dict)

    def add(self, deployment: str, value: float) -> None:
        self.values.setdefault(deployment, []).append(value)

    def mean(self, deployment: str) -> float:
        return statistics.mean(self.values[deployment])

    def stdev(self, deployment: str) -> float:
        points = self.values[deployment]
        return statistics.stdev(points) if len(points) > 1 else 0.0

    def ordering_stable(self, *deployments: str) -> bool:
        """True if the given deployments kept this strict order (by
        average agility, ascending) at every sweep point."""
        count = len(next(iter(self.values.values())))
        for i in range(count):
            seq = [self.values[d][i] for d in deployments]
            if seq != sorted(seq) or len(set(seq)) != len(seq):
                return False
        return True


def seed_sweep(figure: str = "7c", seeds: tuple[int, ...] = (0, 1, 2)) -> SweepSummary:
    """Run one Figure 7 panel across seeds."""
    if figure not in FIGURE7_PANELS:
        raise ValueError(f"unknown figure: {figure}")
    summary = SweepSummary()
    for seed in seeds:
        panel = figure7_agility(figure, seed=seed)
        for name, result in panel.results.items():
            summary.add(name, result.average_agility)
    return summary


def cluster_size_sweep(
    app: str = "marketcetera",
    workload: str = "abrupt",
    headrooms: tuple[float, ...] = (1.0, 1.25, 1.5),
    seed: int = 0,
) -> dict[float, dict[str, float]]:
    """Vary max pool size as a multiple of the peak requirement.

    With headroom 1.0 the pool can *just* cover the peak; ElasticRMI
    must still beat the threshold systems.
    """
    from repro.experiments.appmodels import APP_MODELS, AppModel
    from repro.experiments.harness import pattern_for, run_custom
    from repro.experiments.deployments import build_deployment

    base = APP_MODELS[app]
    pattern = pattern_for(base, workload)
    peak = base.peak_req(pattern)
    results: dict[float, dict[str, float]] = {}
    for headroom in headrooms:
        capped = AppModel(
            name=base.name,
            cls=base.cls,
            capacity_per_member=base.capacity_per_member,
            point_a=base.point_a,
            min_members=base.min_members,
            max_members=max(base.min_members + 1, math.ceil(peak * headroom)),
            req_modifier=base.req_modifier,
        )
        point: dict[str, float] = {}
        for deployment in ("elasticrmi", "cloudwatch"):
            result = run_custom(
                app,
                workload,
                factory=lambda kernel, _app, pat, s, d=deployment: (
                    build_deployment(d, kernel, capped, pat, s)
                ),
                seed=seed,
            )
            point[deployment] = result.average_agility
        results[headroom] = point
    return results
