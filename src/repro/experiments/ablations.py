"""Ablation studies: which design choice buys how much agility.

The paper attributes ElasticRMI's win to three design choices; each
ablation isolates one of them on the same application, workload, and
cluster:

- **metric choice** (:func:`policy_ablation`) — fine-grained
  application metrics vs CPU/RAM thresholds, *same* provisioner and
  cadence: the paper's core claim (section 5.5) minus every confound;
- **decision cadence** (:func:`burst_interval_ablation`) — the 60 s
  burst interval vs slower evaluation periods;
- **vote magnitude** (:func:`max_step_ablation`) — fine-grained scaling
  can jump several members at once (Figure 5 returns 2); ±1 creep is
  one reason threshold systems lag abrupt changes;
- **provisioning speed** (:func:`provisioning_ablation`) — container
  start (seconds) vs VM boot (minutes) under the *same* threshold
  policy: how much of CloudWatch's deficit is provisioning, not
  decisions.
"""

from __future__ import annotations

import math

from repro.cluster.provisioner import ContainerProvisioner, VMProvisioner
from repro.core.runtime import ElasticRuntime
from repro.experiments.appmodels import AppModel
from repro.experiments.deployments import (
    CpuMemService,
    _SharedUtilization,
)
from repro.experiments.harness import DeploymentResult, run_custom
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams


class TunedElasticRMIDeployment:
    """ElasticRMI deployment with overridable class/burst/provisioner."""

    def __init__(
        self,
        kernel: Kernel,
        app: AppModel,
        seed: int,
        cls_override: type | None = None,
        burst_interval: float | None = None,
        provisioner_kind: str = "container",
        name: str = "elasticrmi-tuned",
    ) -> None:
        self.app = app
        self.name = name
        rng = RngStreams(seed)
        provisioner = (
            ContainerProvisioner(rng.stream("prov"))
            if provisioner_kind == "container"
            else VMProvisioner(rng.stream("prov"))
        )
        nodes = math.ceil((app.max_members + 2) / 4)
        self.runtime = ElasticRuntime.simulated(
            kernel, nodes=nodes, provisioner=provisioner, rng=rng
        )
        self._dial = _SharedUtilization()
        cls = cls_override or app.cls

        if burst_interval is not None:
            class Tuned(cls):  # noqa: N801 - dynamic specialization
                def __init__(self, *args, **kwargs):
                    super().__init__(*args, **kwargs)
                    self.set_burst_interval(burst_interval)

            Tuned.__name__ = f"{cls.__name__}_b{int(burst_interval)}"
            cls = Tuned

        self.pool = self.runtime.new_pool(
            cls,
            name=app.name,
            min_size=app.min_members,
            max_size=app.max_members,
            utilization_factory=self._dial.source,
        )

    def capacity(self) -> int:
        return self.pool.size()

    def on_control_step(self, t: float, rate: float) -> None:
        self.runtime.store.put(f"{self.pool.name}$offered_rate", rate)
        self._dial.cpu = self.app.utilization(rate, max(1, self.pool.size()))

    def provisioning_latencies(self) -> list[tuple[float, float]]:
        return [
            (r.requested_at, r.latency)
            for r in self.pool.provisioning_records
            if r.direction == "up"
        ]

    def stop(self) -> None:
        self.runtime.shutdown()


def _tuned_factory(**overrides):
    def factory(kernel, app, pattern, seed):
        return TunedElasticRMIDeployment(kernel, app, seed, **overrides)

    return factory


def burst_interval_ablation(
    app: str = "marketcetera",
    workload: str = "abrupt",
    intervals: tuple[float, ...] = (30.0, 60.0, 300.0, 600.0),
    seed: int = 0,
) -> dict[float, DeploymentResult]:
    """Same fine-grained policy, different decision cadences."""
    return {
        interval: run_custom(
            app,
            workload,
            _tuned_factory(
                burst_interval=interval, name=f"burst-{int(interval)}s"
            ),
            seed=seed,
        )
        for interval in intervals
    }


def max_step_ablation(
    app: str = "marketcetera",
    workload: str = "abrupt",
    steps: tuple[int, ...] = (1, 2, 8),
    seed: int = 0,
) -> dict[int, DeploymentResult]:
    """Fine-grained scaling with the per-vote jump bounded at ±step."""
    from repro.experiments.appmodels import APP_MODELS

    base_cls = APP_MODELS[app].cls
    results = {}
    for step in steps:
        class Stepped(base_cls):  # noqa: N801
            MAX_STEP = step

        Stepped.__name__ = f"{base_cls.__name__}_step{step}"
        results[step] = run_custom(
            app,
            workload,
            _tuned_factory(cls_override=Stepped, name=f"step-{step}"),
            seed=seed,
        )
    return results


def policy_ablation(
    app: str = "marketcetera",
    workload: str = "abrupt",
    seed: int = 0,
) -> dict[str, DeploymentResult]:
    """Fine-grained vs threshold policy — identical runtime, cluster,
    container provisioner, *and* 60 s decision cadence, so the only
    difference is the metric driving the decisions."""
    fine = run_custom(
        app, workload, _tuned_factory(name="fine-grained"), seed=seed
    )
    coarse = run_custom(
        app,
        workload,
        _tuned_factory(
            cls_override=CpuMemService,
            burst_interval=60.0,
            name="cpu-mem-thresholds",
        ),
        seed=seed,
    )
    return {"fine-grained": fine, "cpu-mem-thresholds": coarse}


def provisioning_ablation(
    app: str = "marketcetera",
    workload: str = "abrupt",
    seed: int = 0,
) -> dict[str, DeploymentResult]:
    """Threshold policy with container-speed vs VM-speed provisioning:
    how much of the CloudWatch deficit is boot time rather than the
    decision mechanism."""
    return {
        "thresholds+container": run_custom(
            app,
            workload,
            _tuned_factory(
                cls_override=CpuMemService, name="thresholds-container"
            ),
            seed=seed,
        ),
        "thresholds+vm": run_custom(
            app,
            workload,
            _tuned_factory(
                cls_override=CpuMemService,
                provisioner_kind="vm",
                name="thresholds-vm",
            ),
            seed=seed,
        ),
    }
