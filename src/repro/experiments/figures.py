"""Figure regeneration: the series and summary rows the paper plots.

Each ``figure*`` function returns plain data structures (so benches can
assert on them) and has a ``print_*`` companion producing the same rows
as human-readable text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.appmodels import APP_MODELS
from repro.experiments.deployments import DEPLOYMENTS
from repro.experiments.harness import DeploymentResult, pattern_for, run_deployment

#: Figure id -> (application, workload) for the eight agility panels.
FIGURE7_PANELS: dict[str, tuple[str, str]] = {
    "7c": ("marketcetera", "abrupt"),
    "7d": ("marketcetera", "cyclic"),
    "7e": ("hedwig", "abrupt"),
    "7f": ("hedwig", "cyclic"),
    "7g": ("paxos", "abrupt"),
    "7h": ("paxos", "cyclic"),
    "7i": ("dcs", "abrupt"),
    "7j": ("dcs", "cyclic"),
}


def figure7a_workload(app: str = "marketcetera", step_min: float = 5.0):
    """The abrupt pattern trace: (minute, rate) pairs (Figure 7a)."""
    pattern = pattern_for(APP_MODELS[app], "abrupt")
    return [
        (m, pattern.rate(m * 60.0))
        for m in _minutes(pattern.duration_s, step_min)
    ]


def figure7b_workload(app: str = "marketcetera", step_min: float = 5.0):
    """The cyclic pattern trace: (minute, rate) pairs (Figure 7b)."""
    pattern = pattern_for(APP_MODELS[app], "cyclic")
    return [
        (m, pattern.rate(m * 60.0))
        for m in _minutes(pattern.duration_s, step_min)
    ]


def _minutes(duration_s: float, step_min: float) -> list[float]:
    steps = int(duration_s / 60.0 / step_min) + 1
    return [i * step_min for i in range(steps)]


@dataclass
class AgilityPanel:
    """One Figure 7 panel: all four deployments on one app x workload."""

    figure: str
    app: str
    workload: str
    results: dict[str, DeploymentResult] = field(default_factory=dict)

    def averages(self) -> dict[str, float]:
        return {
            name: result.average_agility
            for name, result in self.results.items()
        }

    def ratio_to_elasticrmi(self, deployment: str) -> float:
        base = self.results["elasticrmi"].average_agility
        if base == 0:
            return float("inf")
        return self.results[deployment].average_agility / base


def figure7_agility(figure: str, seed: int = 0) -> AgilityPanel:
    """Run all four deployments for one Figure 7 panel (7c-7j)."""
    if figure not in FIGURE7_PANELS:
        raise ValueError(f"unknown figure: {figure} (expected 7c-7j)")
    app, workload = FIGURE7_PANELS[figure]
    panel = AgilityPanel(figure=figure, app=app, workload=workload)
    for deployment in DEPLOYMENTS:
        panel.results[deployment] = run_deployment(
            app, workload, deployment, seed=seed
        )
    return panel


@dataclass
class ProvisioningFigure:
    """Figure 8: provisioning latency of ElasticRMI for all four apps
    (plus the always-zero overprovisioning line)."""

    workload: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def max_latency(self, app: str) -> float:
        return max((lat for _, lat in self.series[app]), default=0.0)

    def mean_latency(self, app: str) -> float:
        points = self.series[app]
        if not points:
            return 0.0
        return sum(lat for _, lat in points) / len(points)


def figure8_provisioning(workload: str, seed: int = 0) -> ProvisioningFigure:
    """Figure 8a (abrupt) / 8b (cyclic): ElasticRMI provisioning latency
    per application over the trace."""
    figure = ProvisioningFigure(workload=workload)
    for app in APP_MODELS:
        result = run_deployment(app, workload, "elasticrmi", seed=seed)
        figure.series[app] = result.provisioning
    figure.series["overprovisioning"] = []  # always zero / never provisions
    return figure


# ---------------------------------------------------------------------------
# report printing (the rows the paper's text quotes)
# ---------------------------------------------------------------------------


def print_agility_panel(panel: AgilityPanel) -> str:
    lines = [
        f"Figure {panel.figure}: {panel.app} agility, {panel.workload} workload",
        f"{'deployment':<22}{'avg agility':>12}{'max':>8}{'zero%':>8}{'x ERMI':>8}",
    ]
    for name, result in panel.results.items():
        lines.append(
            f"{name:<22}{result.average_agility:>12.2f}"
            f"{result.max_agility:>8.1f}"
            f"{100 * result.zero_fraction:>7.0f}%"
            f"{panel.ratio_to_elasticrmi(name):>8.2f}"
        )
    return "\n".join(lines)


def print_provisioning_figure(figure: ProvisioningFigure) -> str:
    lines = [
        f"Figure 8{'a' if figure.workload == 'abrupt' else 'b'}: "
        f"provisioning latency, {figure.workload} workload",
        f"{'app':<18}{'events':>8}{'mean s':>10}{'max s':>10}",
    ]
    for app, points in figure.series.items():
        mean = figure.mean_latency(app) if points else 0.0
        peak = figure.max_latency(app) if points else 0.0
        lines.append(f"{app:<18}{len(points):>8}{mean:>10.1f}{peak:>10.1f}")
    return "\n".join(lines)
