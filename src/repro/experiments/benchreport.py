"""RMI hot-path benchmark suite and ``BENCH_*.json`` reporting.

Every perf PR from this one onward is measured against the same
reproducible harness: :func:`run_hotpath_suite` exercises the invocation
fast path end to end and :func:`write_report` emits a ``BENCH_*.json``
file whose schema is stable (documented in README.md), so successive
reports are directly comparable.

The suite measures calls/sec and p50/p99 latency for:

- the marshalling layer alone (``marshal-*``): one call+result
  round-trip through :mod:`repro.rmi.fastpath` in each mode —
  ``pickle`` (the seed baseline), ``cache`` (LRU-memoized pickles), and
  ``zerocopy`` (immutable pass-by-reference).  The zero-copy/pickle
  ratio is the headline number;
- unicast stubs over :class:`DirectTransport` and
  :class:`ThreadedTransport` (``direct-unicast``, ``threaded-unicast``);
- :class:`ElasticStub` fan-out over pools of 2, 8, and 32 members
  (``elastic-poolN``), driven on a simulated runtime so results are
  deterministic in shape.

Run it via ``python -m repro bench`` or through
``benchmarks/test_rmi_hotpath.py``; ``--scale`` (or the
``ERMI_BENCH_SCALE`` environment variable) shrinks iteration counts for
CI smoke runs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable

SCHEMA = "repro.bench/v1"


# ----------------------------------------------------------------------
# measurement primitives
# ----------------------------------------------------------------------


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank on a
    sorted copy; 0.0 for an empty list."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class BenchRecord:
    """One benchmark configuration's measured result."""

    name: str
    config: dict[str, Any]
    calls: int
    elapsed_s: float
    calls_per_sec: float
    p50_us: float
    p99_us: float
    mean_us: float


def time_calls(
    fn: Callable[[], Any], calls: int, warmup: int | None = None
) -> list[float]:
    """Per-call wall durations (seconds) for ``calls`` invocations."""
    if warmup is None:
        warmup = max(1, calls // 10)
    for _ in range(warmup):
        fn()
    clock = time.perf_counter
    durations = []
    append = durations.append
    for _ in range(calls):
        started = clock()
        fn()
        append(clock() - started)
    return durations


def summarize(
    name: str, config: dict[str, Any], durations: list[float]
) -> BenchRecord:
    """Fold per-call durations into one :class:`BenchRecord`."""
    elapsed = sum(durations)
    calls = len(durations)
    return BenchRecord(
        name=name,
        config=config,
        calls=calls,
        elapsed_s=elapsed,
        calls_per_sec=calls / elapsed if elapsed > 0 else 0.0,
        p50_us=percentile(durations, 0.50) * 1e6,
        p99_us=percentile(durations, 0.99) * 1e6,
        mean_us=(elapsed / calls) * 1e6 if calls else 0.0,
    )


def bench(
    name: str,
    config: dict[str, Any],
    fn: Callable[[], Any],
    calls: int,
) -> BenchRecord:
    """Measure ``fn`` ``calls`` times and summarize."""
    return summarize(name, config, time_calls(fn, calls))


# ----------------------------------------------------------------------
# the hot-path suite
# ----------------------------------------------------------------------


def _scaled(default_calls: int, scale: float) -> int:
    return max(50, int(default_calls * scale))


def bench_scale() -> float:
    """Iteration scale factor from ``ERMI_BENCH_SCALE`` (default 1.0)."""
    try:
        return max(0.0, float(os.environ.get("ERMI_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


# An immutable payload representative of a hot RPC: an op name, a key,
# a data blob large enough that copying it is real work, and a small
# int.  Few elements (analysis stays O(1)-ish), large scalar fields
# (the pickle baseline pays the full serialize/deserialize memcpy on
# both ends — exactly the work zero-copy elides).
_PAYLOAD_BLOB = bytes(range(256)) * 256  # 64 KiB
_PAYLOAD_KEY = "user:profile:" + "f" * 51
_PAYLOAD_ARGS = ("get", _PAYLOAD_KEY, _PAYLOAD_BLOB, 7)


def run_marshal_microbench(scale: float = 1.0) -> list[BenchRecord]:
    """One call+result marshal round-trip per mode, same payload.

    All three modes are measured in the same run so the zero-copy /
    pickled-baseline throughput ratio is apples to apples.
    """
    from repro.rmi import fastpath

    calls = _scaled(20_000, scale)
    records = []

    # The "server" holds the blob, as a read-mostly service would: the
    # reply marshals the server's own stable object, not a per-call
    # copy.  (In zerocopy mode args[2] *is* this object anyway.)
    server_blob = _PAYLOAD_BLOB

    def roundtrip() -> None:
        payload = fastpath.marshal_call(_PAYLOAD_ARGS, {})
        args, _kwargs = fastpath.unmarshal_call(payload)
        assert args[0] == "get"
        reply = fastpath.marshal_result(server_blob)
        fastpath.unmarshal_result(reply)

    for mode in ("pickle", "cache", "zerocopy"):
        previous = fastpath.set_mode(mode)
        try:
            fastpath.marshal_cache().clear()
            records.append(
                bench(
                    f"marshal-{mode}",
                    {"layer": "marshal", "mode": mode,
                     "payload_bytes": len(_PAYLOAD_BLOB)},
                    roundtrip,
                    calls,
                )
            )
        finally:
            fastpath.set_mode(previous)
    return records


def run_unicast_bench(scale: float = 1.0) -> list[BenchRecord]:
    """Stub→Skeleton echo over both transports (pool size 1)."""
    from repro.rmi.remote import Remote, Skeleton, Stub
    from repro.rmi.transport import DirectTransport, ThreadedTransport

    class Echo(Remote):
        def echo(self, op, key, blob, seq):
            return blob

    records = []

    direct = DirectTransport()
    ep = direct.add_endpoint("bench-direct")
    skel = Skeleton(Echo(), direct, ep.endpoint_id)
    stub = Stub(direct, skel.ref())
    records.append(
        bench(
            "direct-unicast",
            {"transport": "direct", "pool_size": 1},
            lambda: stub.echo(*_PAYLOAD_ARGS),
            _scaled(5_000, scale),
        )
    )

    threaded = ThreadedTransport(workers_per_endpoint=4)
    try:
        ep = threaded.add_endpoint("bench-threaded")
        skel = Skeleton(Echo(), threaded, ep.endpoint_id)
        stub = Stub(threaded, skel.ref())
        records.append(
            bench(
                "threaded-unicast",
                {"transport": "threaded", "pool_size": 1, "workers": 4},
                lambda: stub.echo(*_PAYLOAD_ARGS),
                _scaled(2_000, scale),
            )
        )
    finally:
        threaded.shutdown()
    return records


def run_elastic_fanout_bench(
    scale: float = 1.0, pool_sizes: tuple[int, ...] = (2, 8, 32)
) -> list[BenchRecord]:
    """ElasticStub round-robin fan-out at several pool sizes.

    Runs on the simulated runtime (direct transport, virtual clock) so
    the measured path is the middleware itself — marshalling, balancing,
    membership caching, skeleton dispatch — with zero sleep time.
    """
    from repro.cluster.provisioner import InstantProvisioner
    from repro.core.api import ElasticObject
    from repro.core.runtime import ElasticRuntime
    from repro.sim.kernel import Kernel

    largest = max(pool_sizes)

    class EchoBench(ElasticObject):
        def __init__(self):
            super().__init__()
            self.set_min_pool_size(2)
            self.set_max_pool_size(largest)

        def echo(self, op, key, blob, seq):
            return blob

    records = []
    for size in pool_sizes:
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel,
            nodes=(largest // 2) + 4,
            slices_per_node=4,
            provisioner=InstantProvisioner(),
        )
        try:
            pool = runtime.new_pool(
                EchoBench, name=f"bench-pool{size}", max_size=size
            )
            kernel.run_until(kernel.clock.now() + 1.0)
            if size > pool.size():
                pool.grow(size - pool.size())
                kernel.run_until(kernel.clock.now() + 1.0)
            stub = runtime.stub(pool.name)
            records.append(
                bench(
                    f"elastic-pool{size}",
                    {
                        "transport": "direct",
                        "stub": "elastic",
                        "pool_size": pool.size(),
                    },
                    lambda: stub.echo(*_PAYLOAD_ARGS),
                    _scaled(3_000, scale),
                )
            )
        finally:
            runtime.shutdown()
    return records


def run_hotpath_suite(scale: float | None = None) -> list[BenchRecord]:
    """The full RMI hot-path suite in one run."""
    if scale is None:
        scale = bench_scale()
    records = []
    records += run_marshal_microbench(scale)
    records += run_unicast_bench(scale)
    records += run_elastic_fanout_bench(scale)
    return records


# ----------------------------------------------------------------------
# BENCH_*.json reporting
# ----------------------------------------------------------------------


def build_report(
    suite: str, records: list[BenchRecord], extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The JSON document for one suite run (schema in README.md)."""
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "suite": suite,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": [asdict(record) for record in records],
    }
    if extra:
        doc["extra"] = extra
    return doc


def write_report(
    path: str,
    suite: str,
    records: list[BenchRecord],
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write (and return) the ``BENCH_*.json`` document."""
    doc = build_report(suite, records, extra=extra)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc


def load_report(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def validate_report(doc: dict[str, Any]) -> list[str]:
    """Schema check; returns a list of problems (empty when valid)."""
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("suite"), str) or not doc.get("suite"):
        problems.append("suite missing")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records missing or empty")
        return problems
    required = {
        "name": str,
        "config": dict,
        "calls": int,
        "elapsed_s": (int, float),
        "calls_per_sec": (int, float),
        "p50_us": (int, float),
        "p99_us": (int, float),
        "mean_us": (int, float),
    }
    for i, record in enumerate(records):
        for fieldname, types in required.items():
            if not isinstance(record.get(fieldname), types):
                problems.append(f"records[{i}].{fieldname} invalid")
    return problems


@dataclass
class CompareResult:
    """Outcome of one baseline comparison (``repro bench --check``)."""

    lines: list[str]
    regressions: list[str]
    missing: list[str]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing


def _record_throughputs(
    report_or_records: dict[str, Any] | list[BenchRecord],
) -> dict[str, float]:
    """name → calls_per_sec, from a report document or live records."""
    if isinstance(report_or_records, dict):
        records = report_or_records.get("records", [])
        return {r["name"]: float(r["calls_per_sec"]) for r in records}
    return {r.name: r.calls_per_sec for r in report_or_records}


def compare_reports(
    baseline: dict[str, Any] | list[BenchRecord],
    current: dict[str, Any] | list[BenchRecord],
    tolerance: float = 0.30,
    normalize: bool = False,
) -> CompareResult:
    """Flag records whose throughput dropped more than ``tolerance``.

    With ``normalize`` each record is divided by its own run's
    ``marshal-pickle`` throughput first, so the comparison is in units of
    "times the pickle baseline" — absorbing absolute machine-speed
    differences between the committed baseline and the CI runner while
    still catching *relative* hot-path regressions.  The trade-off: a
    slowdown that hits every record equally (including marshal-pickle
    itself) is invisible to the normalized check, which is why the
    benchmark suite's own ratio assertions (e.g. zerocopy ≥ 3× pickle)
    stay in place alongside it.

    Records present only in ``current`` (newly added benches) pass;
    records present only in ``baseline`` are reported as missing.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1): {tolerance}")
    base = _record_throughputs(baseline)
    cur = _record_throughputs(current)
    if normalize:
        for series in (base, cur):
            anchor = series.get("marshal-pickle", 0.0)
            if anchor <= 0.0:
                raise ValueError(
                    "cannot normalize: marshal-pickle record missing or zero"
                )
            for name in series:
                series[name] = series[name] / anchor
    unit = "x pickle" if normalize else "calls/s"
    lines = [
        f"{'config':<20} {'baseline':>12} {'current':>12} {'delta':>8}"
    ]
    regressions: list[str] = []
    missing: list[str] = []
    for name, base_value in base.items():
        if name not in cur:
            missing.append(name)
            lines.append(f"{name:<20} {base_value:>12.2f} {'MISSING':>12}")
            continue
        cur_value = cur[name]
        delta = (
            (cur_value - base_value) / base_value if base_value > 0 else 0.0
        )
        verdict = ""
        if delta < -tolerance:
            regressions.append(name)
            verdict = "  REGRESSION"
        lines.append(
            f"{name:<20} {base_value:>12.2f} {cur_value:>12.2f} "
            f"{delta:>+7.1%}{verdict}  ({unit})"
        )
    return CompareResult(lines=lines, regressions=regressions, missing=missing)


def format_table(records: list[BenchRecord]) -> str:
    """Human-readable summary of one suite run."""
    lines = [
        f"{'config':<20} {'calls':>8} {'calls/s':>12} "
        f"{'p50 µs':>10} {'p99 µs':>10}",
    ]
    for record in records:
        lines.append(
            f"{record.name:<20} {record.calls:>8} "
            f"{record.calls_per_sec:>12.0f} "
            f"{record.p50_us:>10.1f} {record.p99_us:>10.1f}"
        )
    return "\n".join(lines)
