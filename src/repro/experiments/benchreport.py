"""RMI hot-path benchmark suite and ``BENCH_*.json`` reporting.

Every perf PR from this one onward is measured against the same
reproducible harness: :func:`run_hotpath_suite` exercises the invocation
fast path end to end and :func:`write_report` emits a ``BENCH_*.json``
file whose schema is stable (documented in README.md), so successive
reports are directly comparable.

The suite measures calls/sec and p50/p99 latency for:

- the marshalling layer alone (``marshal-*``): one call+result
  round-trip through :mod:`repro.rmi.fastpath` in each mode —
  ``pickle`` (the seed baseline), ``cache`` (LRU-memoized pickles), and
  ``zerocopy`` (immutable pass-by-reference).  The zero-copy/pickle
  ratio is the headline number;
- unicast stubs over :class:`DirectTransport` and
  :class:`ThreadedTransport` (``direct-unicast``, ``threaded-unicast``);
- :class:`ElasticStub` fan-out over pools of 2, 8, and 32 members
  (``elastic-poolN``), driven on a simulated runtime so results are
  deterministic in shape.

Two further suites share the harness and schema:
:func:`run_batching_suite` (batched vs unbatched pipelining, anchored
on ``batch-off-c1``) and :func:`run_async_suite` (asyncio vs threaded
transport at c64–c4096 in-flight calls, anchored on ``threaded-c64``).

Run them via ``python -m repro bench`` or through
``benchmarks/test_rmi_hotpath.py``; ``--scale`` (or the
``ERMI_BENCH_SCALE`` environment variable) shrinks iteration counts for
CI smoke runs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable

SCHEMA = "repro.bench/v1"


# ----------------------------------------------------------------------
# measurement primitives
# ----------------------------------------------------------------------


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` by nearest-rank on a
    sorted copy; 0.0 for an empty list."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class BenchRecord:
    """One benchmark configuration's measured result."""

    name: str
    config: dict[str, Any]
    calls: int
    elapsed_s: float
    calls_per_sec: float
    p50_us: float
    p99_us: float
    mean_us: float


def time_calls(
    fn: Callable[[], Any], calls: int, warmup: int | None = None
) -> list[float]:
    """Per-call wall durations (seconds) for ``calls`` invocations."""
    if warmup is None:
        warmup = max(1, calls // 10)
    for _ in range(warmup):
        fn()
    clock = time.perf_counter
    durations = []
    append = durations.append
    for _ in range(calls):
        started = clock()
        fn()
        append(clock() - started)
    return durations


def summarize(
    name: str, config: dict[str, Any], durations: list[float]
) -> BenchRecord:
    """Fold per-call durations into one :class:`BenchRecord`."""
    elapsed = sum(durations)
    calls = len(durations)
    return BenchRecord(
        name=name,
        config=config,
        calls=calls,
        elapsed_s=elapsed,
        calls_per_sec=calls / elapsed if elapsed > 0 else 0.0,
        p50_us=percentile(durations, 0.50) * 1e6,
        p99_us=percentile(durations, 0.99) * 1e6,
        mean_us=(elapsed / calls) * 1e6 if calls else 0.0,
    )


def bench(
    name: str,
    config: dict[str, Any],
    fn: Callable[[], Any],
    calls: int,
) -> BenchRecord:
    """Measure ``fn`` ``calls`` times and summarize."""
    return summarize(name, config, time_calls(fn, calls))


def summarize_wall(
    name: str,
    config: dict[str, Any],
    durations: list[float],
    wall_s: float,
) -> BenchRecord:
    """Fold a *concurrent* run into one record.

    Unlike :func:`summarize`, throughput is total calls over wall-clock
    time — with N callers the per-call durations overlap, so summing
    them would understate throughput N-fold.  Latency percentiles still
    come from the individual call durations.
    """
    calls = len(durations)
    return BenchRecord(
        name=name,
        config=config,
        calls=calls,
        elapsed_s=wall_s,
        calls_per_sec=calls / wall_s if wall_s > 0 else 0.0,
        p50_us=percentile(durations, 0.50) * 1e6,
        p99_us=percentile(durations, 0.99) * 1e6,
        mean_us=(sum(durations) / calls) * 1e6 if calls else 0.0,
    )


def time_concurrent(
    make_worker: Callable[[int], Callable[[], list[float]]],
    callers: int,
) -> tuple[list[float], float]:
    """Run ``callers`` worker threads and collect their call durations.

    ``make_worker(i)`` returns the i-th caller's body, which performs
    its share of calls and returns their individual durations.  All
    workers start together (barrier) and the wall clock covers first
    start to last finish.  Returns ``(all_durations, wall_seconds)``.
    """
    import threading

    workers = [make_worker(i) for i in range(callers)]
    results: list[list[float]] = [[] for _ in range(callers)]
    barrier = threading.Barrier(callers + 1)

    def body(i: int) -> None:
        barrier.wait()
        results[i] = workers[i]()

    threads = [
        threading.Thread(target=body, args=(i,)) for i in range(callers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    merged: list[float] = []
    for partial in results:
        merged.extend(partial)
    return merged, wall


# ----------------------------------------------------------------------
# the hot-path suite
# ----------------------------------------------------------------------


def _scaled(default_calls: int, scale: float) -> int:
    return max(50, int(default_calls * scale))


def bench_scale() -> float:
    """Iteration scale factor from ``ERMI_BENCH_SCALE`` (default 1.0)."""
    try:
        return max(0.0, float(os.environ.get("ERMI_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


# An immutable payload representative of a hot RPC: an op name, a key,
# a data blob large enough that copying it is real work, and a small
# int.  Few elements (analysis stays O(1)-ish), large scalar fields
# (the pickle baseline pays the full serialize/deserialize memcpy on
# both ends — exactly the work zero-copy elides).
_PAYLOAD_BLOB = bytes(range(256)) * 256  # 64 KiB
_PAYLOAD_KEY = "user:profile:" + "f" * 51
_PAYLOAD_ARGS = ("get", _PAYLOAD_KEY, _PAYLOAD_BLOB, 7)


def run_marshal_microbench(scale: float = 1.0) -> list[BenchRecord]:
    """One call+result marshal round-trip per mode, same payload.

    All three modes are measured in the same run so the zero-copy /
    pickled-baseline throughput ratio is apples to apples.
    """
    from repro.rmi import fastpath

    calls = _scaled(20_000, scale)
    records = []

    # The "server" holds the blob, as a read-mostly service would: the
    # reply marshals the server's own stable object, not a per-call
    # copy.  (In zerocopy mode args[2] *is* this object anyway.)
    server_blob = _PAYLOAD_BLOB

    def roundtrip() -> None:
        payload = fastpath.marshal_call(_PAYLOAD_ARGS, {})
        args, _kwargs = fastpath.unmarshal_call(payload)
        assert args[0] == "get"
        reply = fastpath.marshal_result(server_blob)
        fastpath.unmarshal_result(reply)

    for mode in ("pickle", "cache", "zerocopy"):
        previous = fastpath.set_mode(mode)
        try:
            fastpath.marshal_cache().clear()
            records.append(
                bench(
                    f"marshal-{mode}",
                    {"layer": "marshal", "mode": mode,
                     "payload_bytes": len(_PAYLOAD_BLOB)},
                    roundtrip,
                    calls,
                )
            )
        finally:
            fastpath.set_mode(previous)
    return records


def run_unicast_bench(scale: float = 1.0) -> list[BenchRecord]:
    """Stub→Skeleton echo over both transports (pool size 1)."""
    from repro.rmi.remote import Remote, Skeleton, Stub
    from repro.rmi.transport import DirectTransport, ThreadedTransport

    class Echo(Remote):
        def echo(self, op, key, blob, seq):
            return blob

    records = []

    direct = DirectTransport()
    ep = direct.add_endpoint("bench-direct")
    skel = Skeleton(Echo(), direct, ep.endpoint_id)
    stub = Stub(direct, skel.ref())
    records.append(
        bench(
            "direct-unicast",
            {"transport": "direct", "pool_size": 1},
            lambda: stub.echo(*_PAYLOAD_ARGS),
            _scaled(5_000, scale),
        )
    )

    threaded = ThreadedTransport(workers_per_endpoint=4)
    try:
        ep = threaded.add_endpoint("bench-threaded")
        skel = Skeleton(Echo(), threaded, ep.endpoint_id)
        stub = Stub(threaded, skel.ref())
        records.append(
            bench(
                "threaded-unicast",
                {"transport": "threaded", "pool_size": 1, "workers": 4},
                lambda: stub.echo(*_PAYLOAD_ARGS),
                _scaled(2_000, scale),
            )
        )
    finally:
        threaded.shutdown()
    return records


def run_elastic_fanout_bench(
    scale: float = 1.0, pool_sizes: tuple[int, ...] = (2, 8, 32)
) -> list[BenchRecord]:
    """ElasticStub round-robin fan-out at several pool sizes.

    Runs on the simulated runtime (direct transport, virtual clock) so
    the measured path is the middleware itself — marshalling, balancing,
    membership caching, skeleton dispatch — with zero sleep time.
    """
    from repro.cluster.provisioner import InstantProvisioner
    from repro.core.api import ElasticObject
    from repro.core.runtime import ElasticRuntime
    from repro.sim.kernel import Kernel

    largest = max(pool_sizes)

    class EchoBench(ElasticObject):
        def __init__(self):
            super().__init__()
            self.set_min_pool_size(2)
            self.set_max_pool_size(largest)

        def echo(self, op, key, blob, seq):
            return blob

    records = []
    for size in pool_sizes:
        kernel = Kernel()
        runtime = ElasticRuntime.simulated(
            kernel,
            nodes=(largest // 2) + 4,
            slices_per_node=4,
            provisioner=InstantProvisioner(),
        )
        try:
            pool = runtime.new_pool(
                EchoBench, name=f"bench-pool{size}", max_size=size
            )
            kernel.run_until(kernel.clock.now() + 1.0)
            if size > pool.size():
                pool.grow(size - pool.size())
                kernel.run_until(kernel.clock.now() + 1.0)
            stub = runtime.stub(pool.name)
            records.append(
                bench(
                    f"elastic-pool{size}",
                    {
                        "transport": "direct",
                        "stub": "elastic",
                        "pool_size": pool.size(),
                    },
                    lambda: stub.echo(*_PAYLOAD_ARGS),
                    _scaled(3_000, scale),
                )
            )
        finally:
            runtime.shutdown()
    return records


def run_stats_bench(scale: float = 1.0, callers: int = 8) -> list[BenchRecord]:
    """Concurrent ``CallStats.record`` under a polling snapshotter.

    This is the shape skeleton stats actually run in: many dispatch
    threads recording, while the sentinel polls ``snapshot()`` for its
    rebalancing decisions.  The reference implementation is the
    pre-striping design — one lock serializing every record *and* the
    whole snapshot copy, so each poll stalls every recorder — measured
    against the thread-striped :class:`~repro.rmi.remote.CallStats`,
    where recorders only ever touch their own stripe's (uncontended)
    lock and the poll takes stripes one at a time.
    """
    import threading
    from copy import deepcopy

    from repro.rmi.remote import CallStats, MethodStats

    class LockedStats:
        """The old design: one lock for recorders and snapshots alike."""

        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._methods: dict[str, MethodStats] = {}

        def record(self, method: str, elapsed: float, error: bool = False) -> None:
            with self._lock:
                stats = self._methods.setdefault(method, MethodStats())
                stats.calls += 1
                stats.total_latency += elapsed
                if error:
                    stats.errors += 1

        def snapshot(self) -> dict[str, MethodStats]:
            with self._lock:
                return deepcopy(self._methods)

    methods = [f"method-{i}" for i in range(32)]
    per_caller = _scaled(20_000, scale)
    records = []
    for name, stats in (
        ("stats-locked", LockedStats()),
        ("stats-striped", CallStats()),
    ):
        stop = threading.Event()

        def poll(stats: Any = stats, stop: threading.Event = stop) -> None:
            while not stop.is_set():
                stats.snapshot()

        def make_worker(i: int, stats: Any = stats) -> Callable[[], list[float]]:
            def worker() -> list[float]:
                clock = time.perf_counter
                durations = []
                append = durations.append
                for j in range(per_caller):
                    method = methods[j & 31]
                    started = clock()
                    stats.record(method, 0.001)
                    append(clock() - started)
                return durations

            return worker

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        try:
            durations, wall = time_concurrent(make_worker, callers)
        finally:
            stop.set()
            poller.join()
        records.append(
            summarize_wall(
                f"{name}-c{callers}",
                {"layer": "stats", "impl": name, "callers": callers,
                 "snapshotter": True, "methods": len(methods)},
                durations,
                wall,
            )
        )
    return records


def run_hotpath_suite(scale: float | None = None) -> list[BenchRecord]:
    """The full RMI hot-path suite in one run."""
    if scale is None:
        scale = bench_scale()
    records = []
    records += run_marshal_microbench(scale)
    records += run_unicast_bench(scale)
    records += run_elastic_fanout_bench(scale)
    records += run_stats_bench(scale)
    return records


# ----------------------------------------------------------------------
# the batching suite
# ----------------------------------------------------------------------

BATCH_CALLERS = (1, 8, 64)
BATCH_WINDOW = 16
BATCH_MAX = 64
BATCH_INFLIGHT = 4


def _make_batch_harness(batched: bool) -> tuple[Any, Any, Any]:
    """A ThreadedTransport echo service plus the stub under test."""
    from repro.rmi.batching import RequestBatcher
    from repro.rmi.remote import Remote, Skeleton, Stub
    from repro.rmi.transport import ThreadedTransport

    class Echo(Remote):
        def echo(self, op, key, blob, seq):
            return seq

    transport = ThreadedTransport(workers_per_endpoint=4)
    ep = transport.add_endpoint("bench-batch")
    skel = Skeleton(Echo(), transport, ep.endpoint_id)
    batcher = (
        RequestBatcher(
            transport,
            max_batch=BATCH_MAX,
            inflight_limit=BATCH_INFLIGHT,
            linger=0.0,
        )
        if batched
        else None
    )
    stub = Stub(transport, skel.ref(), batcher=batcher)
    return transport, stub, batcher


def run_batching_suite(
    scale: float | None = None, extra_out: dict[str, Any] | None = None
) -> list[BenchRecord]:
    """Batched vs unbatched invocation throughput and latency.

    The workload is the pipelined-async shape the batching layer is
    built for: every caller issues a window of ``BATCH_WINDOW``
    ``invoke_async`` calls, gathers, repeats.  Both legs run the *same*
    caller code — the only toggle is whether the stub carries a
    :class:`~repro.rmi.batching.RequestBatcher` — so the record ratio
    isolates what coalescing buys (``batch-on-c64`` vs ``batch-off-c64``
    is the headline).  Latency samples are per *window* (submit of the
    first call to gather completion), the latency a pipelined caller
    actually observes.

    Two further records pin down idle-cost neutrality: a synchronous
    single caller with no batcher attached (``sync-c1-nobatcher``, the
    seed-identical path) vs the same caller with a batcher attached but
    disabled (``sync-c1-batcher-off``, ``max_batch=1``) — their
    latencies must stay within a few percent, showing the feature costs
    nothing until it is switched on.
    """
    from repro.rmi.batching import RequestBatcher
    from repro.rmi.future import gather

    if scale is None:
        scale = bench_scale()

    records = []
    extra: dict[str, Any] = {} if extra_out is None else extra_out
    for callers in BATCH_CALLERS:
        per_caller = _scaled(
            {1: 4_000, 8: 2_000}.get(callers, 500), scale
        )
        # Whole windows only, so every latency sample covers a full window.
        per_caller -= per_caller % BATCH_WINDOW
        per_caller = max(BATCH_WINDOW, per_caller)
        for batched in (False, True):
            transport, stub, batcher = _make_batch_harness(batched)
            try:
                def make_worker(i: int, stub: Any = stub) -> Callable[[], list[float]]:
                    def worker() -> list[float]:
                        clock = time.perf_counter
                        windows = []
                        append = windows.append
                        for base in range(0, per_caller, BATCH_WINDOW):
                            started = clock()
                            futures = [
                                stub.invoke_async(
                                    "echo", *_PAYLOAD_ARGS[:3], base + j
                                )
                                for j in range(BATCH_WINDOW)
                            ]
                            gather(futures)
                            append(clock() - started)
                        return windows

                    return worker

                # Warm one window per caller outside the clock.
                gather([
                    stub.invoke_async("echo", *_PAYLOAD_ARGS[:3], j)
                    for j in range(BATCH_WINDOW)
                ])
                windows, wall = time_concurrent(make_worker, callers)
                name = f"batch-{'on' if batched else 'off'}-c{callers}"
                record = summarize_wall(
                    name,
                    {
                        "transport": "threaded",
                        "callers": callers,
                        "window": BATCH_WINDOW,
                        "batching": batched,
                        "max_batch": BATCH_MAX if batched else 1,
                        "inflight": BATCH_INFLIGHT if batched else 0,
                    },
                    windows,
                    wall,
                )
                # Throughput is logical calls/s, not windows/s.
                record.calls = len(windows) * BATCH_WINDOW
                record.calls_per_sec = record.calls / wall if wall > 0 else 0.0
                records.append(record)
                if batcher is not None:
                    extra[name] = {
                        "coalesce_ratio": round(
                            batcher.stats.coalesce_ratio(), 2
                        ),
                        "batches": batcher.stats.batches,
                        "inflight_hwm": batcher.stats.inflight_hwm,
                    }
            finally:
                transport.shutdown()

    # Idle-cost neutrality: sync single caller, batching disabled.
    from repro.rmi.remote import Stub

    sync_calls = _scaled(2_000, scale)
    for name, with_batcher in (
        ("sync-c1-nobatcher", False),
        ("sync-c1-batcher-off", True),
    ):
        transport, stub, _ = _make_batch_harness(False)
        try:
            if with_batcher:
                stub = Stub(
                    transport,
                    stub.ref,
                    batcher=RequestBatcher(transport, max_batch=1),
                )
            records.append(
                bench(
                    name,
                    {
                        "transport": "threaded",
                        "callers": 1,
                        "batching": False,
                        "batcher_attached": with_batcher,
                    },
                    lambda: stub.echo(*_PAYLOAD_ARGS),
                    sync_calls,
                )
            )
        finally:
            transport.shutdown()
    return records


# ----------------------------------------------------------------------
# the async (event-loop) suite
# ----------------------------------------------------------------------

ASYNC_CONCURRENCY = (64, 256, 1024, 4096)
ASYNC_SERVICE_S = 0.001
ASYNC_TRANSPORT_WORKERS = 4
ASYNC_PROBE_TARGET = 4096


def _make_async_harness(kind: str) -> tuple[Any, Any]:
    """An echo service with a 1 ms *coroutine* service time.

    The service is I/O-shaped on purpose: each call spends its life
    suspended, so throughput measures how many calls a transport keeps
    in flight, not how fast Python runs the handler body.  The threaded
    transport drives each coroutine with a private ``asyncio.run`` on a
    dispatch worker (one blocked thread per in-flight call — exactly the
    ceiling under test); the asyncio transport awaits it on the loop.
    """
    import asyncio

    from repro.rmi.aio import AsyncioTransport
    from repro.rmi.remote import Remote, Skeleton, Stub
    from repro.rmi.transport import ThreadedTransport

    class SlowEcho(Remote):
        async def echo(self, seq):
            await asyncio.sleep(ASYNC_SERVICE_S)
            return seq

    if kind == "aio":
        transport: Any = AsyncioTransport()
    else:
        transport = ThreadedTransport(
            workers_per_endpoint=ASYNC_TRANSPORT_WORKERS
        )
    ep = transport.add_endpoint("bench-async")
    skel = Skeleton(SlowEcho(), transport, ep.endpoint_id)
    stub = Stub(transport, skel.ref())
    return transport, stub


def _probe_inflight(target: int = ASYNC_PROBE_TARGET) -> dict[str, Any]:
    """Prove the asyncio transport *sustains* ``target`` in-flight calls.

    The throughput sweep cannot show this — at a 1 ms service time the
    submission rate drains calls about as fast as they are admitted, so
    steady-state concurrency sits far below the window.  Here every
    dispatch parks on a gate until all ``target`` calls are in flight
    at once (observed via the transport's in-flight gauge), then the
    gate opens and everything completes.
    """
    import asyncio

    from repro.rmi.aio import AsyncioTransport
    from repro.rmi.future import gather
    from repro.rmi.remote import Remote, Skeleton, Stub

    class Parked(Remote):
        def __init__(self) -> None:
            self.gate = asyncio.Event()

        async def park(self, seq):
            await self.gate.wait()
            return seq

    # No dispatch deadline: the calls park deliberately.
    transport = AsyncioTransport(timeout=None)
    impl = Parked()
    try:
        ep = transport.add_endpoint("bench-park")
        skel = Skeleton(impl, transport, ep.endpoint_id)
        stub = Stub(transport, skel.ref())
        started = time.perf_counter()
        futures = [stub.invoke_async("park", seq) for seq in range(target)]
        deadline = time.perf_counter() + 60.0
        while (
            transport.inflight < target and time.perf_counter() < deadline
        ):
            time.sleep(0.002)
        hwm = transport.inflight_hwm
        transport.schedule(impl.gate.set)
        gather(futures, timeout=60.0)
        elapsed = time.perf_counter() - started
        return {
            "target": target,
            "inflight_hwm": hwm,
            "open_close_s": round(elapsed, 3),
        }
    finally:
        transport.shutdown()


def run_async_suite(
    scale: float | None = None, extra_out: dict[str, Any] | None = None
) -> list[BenchRecord]:
    """Asyncio vs threaded transport at c64–c4096 concurrent calls.

    One caller thread pipelines ``concurrency`` ``invoke_async`` calls
    and gathers — the elastic fan-out shape at high in-flight counts.
    Latency samples are per *window* (first submit to gather
    completion); throughput is logical calls over wall time.  The
    threaded records saturate at roughly
    ``workers / service_time`` calls/s no matter the concurrency (one
    blocked thread per in-flight call); the asyncio records keep
    scaling, which is the transport's reason to exist.

    ``extra_out`` (surfaced as the report's ``extra`` section) records
    each asyncio run's in-flight high-water mark and the gated
    ``inflight-probe`` result proving the ≥ 2048-sustained claim.
    """
    from repro.rmi.future import gather

    if scale is None:
        scale = bench_scale()
    rounds = max(1, int(round(3 * scale)))
    records = []
    extra: dict[str, Any] = {} if extra_out is None else extra_out
    for kind in ("threaded", "aio"):
        for concurrency in ASYNC_CONCURRENCY:
            transport, stub = _make_async_harness(kind)
            try:
                # Warm outside the clock (pools, loop, marshal caches).
                gather([
                    stub.invoke_async("echo", seq)
                    for seq in range(min(concurrency, 64))
                ])
                clock = time.perf_counter
                windows = []
                for _ in range(rounds):
                    started = clock()
                    futures = [
                        stub.invoke_async("echo", seq)
                        for seq in range(concurrency)
                    ]
                    gather(futures)
                    windows.append(clock() - started)
                wall = sum(windows)
                record = summarize_wall(
                    f"{kind}-c{concurrency}",
                    {
                        "transport": kind,
                        "concurrency": concurrency,
                        "rounds": rounds,
                        "service_ms": ASYNC_SERVICE_S * 1e3,
                        "workers": (
                            ASYNC_TRANSPORT_WORKERS if kind == "threaded"
                            else 0
                        ),
                    },
                    windows,
                    wall,
                )
                # Throughput is logical calls/s, not windows/s.
                record.calls = rounds * concurrency
                record.calls_per_sec = (
                    record.calls / wall if wall > 0 else 0.0
                )
                records.append(record)
                if kind == "aio":
                    extra[f"aio-c{concurrency}"] = {
                        "inflight_hwm": transport.inflight_hwm,
                        "window": transport.inflight_limit,
                    }
            finally:
                transport.shutdown()
    extra["inflight-probe"] = _probe_inflight()
    return records


# ----------------------------------------------------------------------
# the shard (key-affinity routing) suite
# ----------------------------------------------------------------------

SHARD_COUNT = 4
SHARD_MEMBERS = 2            # per shard; 4 x 2 = 8 members either way
SHARD_KEYS = 512             # keyspace size
SHARD_ZIPF_S = 1.0           # zipf exponent of the key popularity
SHARD_HOT_RANKS = 48         # "hot keys" = the top-N most popular
SHARD_CACHE_CAPACITY = 64    # per-member LRU capacity (< SHARD_KEYS)
SHARD_MISS_S = 0.05          # cache-miss service time (≫ queueing noise)
SHARD_CONCURRENCY = 256      # in-flight window (the c256 of the record)


def _zipf_keys(count: int, keys: int, s: float, seed: int) -> list[str]:
    """A deterministic zipf(``s``)-distributed key sequence."""
    import random

    weights = [1.0 / (rank ** s) for rank in range(1, keys + 1)]
    population = [f"key-{rank:04d}" for rank in range(1, keys + 1)]
    rng = random.Random(seed)
    return rng.choices(population, weights=weights, k=count)


def _make_shard_harness() -> tuple[Any, Any, Any]:
    """A live sharded pool on the asyncio transport, plus its stub.

    The service is the workload sharding exists for: per-member state
    keyed by the affinity key.  Each member holds an LRU cache of
    :data:`SHARD_CACHE_CAPACITY` keys; a hit answers immediately, a miss
    pays :data:`SHARD_MISS_S` of (suspended) service time.  Under
    affinity routing each member only ever sees its shard's slice of
    the keyspace, so the working set fits and stays warm; under flat
    round-robin every member sees all :data:`SHARD_KEYS` keys and the
    tail churns the warm head out.
    """
    from collections import OrderedDict

    from repro.core.api import ElasticObject
    from repro.core.runtime import ElasticRuntime
    from repro.rmi.aio import AsyncioTransport

    class KeyedCache(ElasticObject):
        def __init__(self) -> None:
            super().__init__()
            self.set_min_pool_size(SHARD_MEMBERS)
            self.set_max_pool_size(SHARD_MEMBERS + 4)
            # Keep control ticks out of the measured window.
            self.set_burst_interval(3_600.0)
            self._cache: OrderedDict[str, int] = OrderedDict()

        async def lookup(self, key: str) -> bool:
            """True on a cache hit, False after a (slow) miss fill."""
            import asyncio

            cache = self._cache
            if key in cache:
                cache.move_to_end(key)
                return True
            await asyncio.sleep(SHARD_MISS_S)
            cache[key] = 1
            if len(cache) > SHARD_CACHE_CAPACITY:
                cache.popitem(last=False)
            return False

    runtime = ElasticRuntime.local(
        nodes=8, slices_per_node=4, transport=AsyncioTransport()
    )
    pool = runtime.new_sharded_pool(
        KeyedCache, name="bench-shard", shards=SHARD_COUNT
    )
    stub = runtime.sharded_stub("bench-shard")
    return runtime, pool, stub


def _run_shard_leg(
    name: str,
    affinity: bool,
    keys: list[str],
    warm_windows: int,
    hot: set[str],
) -> tuple[BenchRecord, dict[str, Any]]:
    """One routing discipline over the shared key sequence.

    Both legs run byte-identical caller code over the *same* keys on a
    fresh pool; the only difference is whether ``invoke_async`` carries
    ``affinity_key``.  Per-call latency is captured by completion
    callback (submit → result), so the samples are true call latencies,
    not window aggregates.
    """
    from repro.rmi.future import gather

    runtime, _pool, stub = _make_shard_harness()
    try:
        clock = time.perf_counter
        samples: list[tuple[str, float, bool]] = []  # (key, latency, hit)

        def call(key: str, record: bool) -> Any:
            started = clock()
            future = stub.invoke_async(
                "lookup", key, affinity_key=key if affinity else None
            )
            if record:

                def note(f: Any, key: str = key, started: float = started) -> None:
                    samples.append((key, clock() - started, bool(f.result())))

                future.add_done_callback(note)
            return future

        windows = [
            keys[base:base + SHARD_CONCURRENCY]
            for base in range(0, len(keys), SHARD_CONCURRENCY)
        ]
        wall = 0.0
        for index, window in enumerate(windows):
            measured = index >= warm_windows
            started = clock()
            gather([call(key, measured) for key in window], timeout=120.0)
            if measured:
                wall += clock() - started
        durations = [latency for _, latency, _ in samples]
        record = summarize_wall(
            name,
            {
                "transport": "aio",
                "shards": SHARD_COUNT,
                "members_per_shard": SHARD_MEMBERS,
                "concurrency": SHARD_CONCURRENCY,
                "keys": SHARD_KEYS,
                "zipf_s": SHARD_ZIPF_S,
                "cache_capacity": SHARD_CACHE_CAPACITY,
                "miss_ms": SHARD_MISS_S * 1e3,
                "affinity": affinity,
            },
            durations,
            wall,
        )
        hot_lat = [lat for key, lat, _ in samples if key in hot]
        hits = sum(1 for _, _, hit in samples if hit)
        extra = {
            "hit_rate": round(hits / max(1, len(samples)), 4),
            "hot_key_calls": len(hot_lat),
            "hot_key_p50_us": round(percentile(hot_lat, 0.50) * 1e6, 1),
            "hot_key_p99_us": round(percentile(hot_lat, 0.99) * 1e6, 1),
        }
        return record, extra
    finally:
        runtime.shutdown()


def _probe_shard_elasticity() -> dict[str, Any]:
    """Prove per-shard elasticity: one hot shard grows, the rest hold.

    Runs on the simulated runtime.  A :class:`~repro.core.api.Decider`
    targets a larger size for the shard owning the hottest key and the
    minimum for every other shard; after two burst intervals only that
    shard has grown — each shard scales under its own Decider ticks,
    with its own epoch key, exactly the independent-scaling contract.
    """
    from repro.cluster.provisioner import InstantProvisioner
    from repro.core.api import Decider, ElasticObject
    from repro.core.runtime import ElasticRuntime
    from repro.sim.kernel import Kernel

    class Slot(ElasticObject):
        def __init__(self) -> None:
            super().__init__()
            self.set_min_pool_size(2)
            self.set_max_pool_size(6)
            self.set_burst_interval(5.0)

        def ping(self) -> str:
            return "pong"

    hot_target = 5

    class HotShardDecider(Decider):
        def __init__(self) -> None:
            self.hot_pool: str | None = None

        def get_desired_pool_size(self, pool: Any) -> int:
            return hot_target if pool.name == self.hot_pool else 2

    kernel = Kernel()
    runtime = ElasticRuntime.simulated(
        kernel, nodes=12, slices_per_node=4,
        provisioner=InstantProvisioner(),
    )
    try:
        decider = HotShardDecider()
        sharded = runtime.new_sharded_pool(
            Slot, name="probe-shard", shards=SHARD_COUNT, decider=decider
        )
        kernel.run_until(kernel.clock.now() + 1.0)
        sizes_before = sharded.sizes()
        hot_index = sharded.shard_for("key-0001")
        decider.hot_pool = sharded.shards[hot_index].name
        kernel.run_until(kernel.clock.now() + 12.0)  # two+ burst intervals
        sizes_after = sharded.sizes()
        epoch_keys = [
            pool.membership_epoch_key() for pool in sharded.shards
        ]
        return {
            "shards": SHARD_COUNT,
            "hot_shard": hot_index,
            "hot_target": hot_target,
            "sizes_before": sizes_before,
            "sizes_after": sizes_after,
            "epoch_keys": epoch_keys,
            "shard_map": runtime.store.get(
                sharded.shard_map_key(), default=None
            ),
        }
    finally:
        runtime.shutdown()


def run_shard_suite(
    scale: float | None = None, extra_out: dict[str, Any] | None = None
) -> list[BenchRecord]:
    """Key-affinity routing vs flat round-robin over a sharded pool.

    The workload is a zipf(:data:`SHARD_ZIPF_S`) key popularity over
    :data:`SHARD_KEYS` keys, issued in c:data:`SHARD_CONCURRENCY`
    in-flight windows against a :data:`SHARD_COUNT`-shard pool.  The
    headline is hot-key p99 latency (``extra``): with affinity routing
    the hot keys' cache entries stay resident on their shard's members,
    so their p99 sits at hit latency; under flat round-robin every
    member sees the whole keyspace, warm entries churn, and the hot-key
    p99 climbs toward the miss service time.  Anchor record for
    normalized regression checks: ``shard-flat-c256``.
    """
    if scale is None:
        scale = bench_scale()
    extra: dict[str, Any] = {} if extra_out is None else extra_out

    # Warmup is *not* scaled: the contrast under test is between warm
    # steady states, so the caches must actually fill before sampling
    # starts — 8 windows ≈ 2k calls, enough for every member to have
    # seen its (affinity-routed) keyspace slice.  Only the measured
    # portion shrinks with ``scale``.
    warm_windows = 8
    measured = max(4, _scaled(6_144, scale) // SHARD_CONCURRENCY)
    windows = warm_windows + measured
    keys = _zipf_keys(
        windows * SHARD_CONCURRENCY, SHARD_KEYS, SHARD_ZIPF_S, seed=7
    )
    hot = {f"key-{rank:04d}" for rank in range(1, SHARD_HOT_RANKS + 1)}

    records = []
    for name, affinity in (
        ("shard-flat-c256", False),
        ("shard-affinity-c256", True),
    ):
        record, leg_extra = _run_shard_leg(
            name, affinity, keys, warm_windows, hot
        )
        records.append(record)
        extra[name] = leg_extra
    extra["shard-elasticity"] = _probe_shard_elasticity()
    return records


# ----------------------------------------------------------------------
# the store suite: watched epoch path vs per-call polling
# ----------------------------------------------------------------------

# Steady-state leg: invocations against a quiet pool, where the only
# coordination cost difference is how the stub learns the epoch.
STORE_EPOCH_CALLS = 20_000
STORE_POOL_MEMBERS = 2

# Convergence leg: how fast STORE_CONVERGE_CLIENTS client-side caches
# observe an epoch bump.  The poll baseline is lease-mode caching at
# STORE_CONVERGE_LEASE_MS (the throttled equivalent of per-call polling
# that also does zero steady-state reads — the honest comparison), the
# watch mode is push invalidation.
STORE_CONVERGE_CLIENTS = 256
STORE_CONVERGE_ROUNDS = 8
STORE_CONVERGE_LEASE_MS = 25.0
# Convergence latencies are tens of microseconds (watch) to one lease
# (poll); a single descheduled combiner thread can shift p50 by 30%+.
# Best-of-minima over independent repeats keeps the regression gate
# stable in CI (same discipline as the obs-overhead gate).
STORE_CONVERGE_REPEATS = 3


def _make_epoch_harness() -> tuple[Any, Any, Callable[[], int]]:
    """A live pool on DirectTransport over a store that counts epoch
    reads.  Returns ``(runtime, pool, epoch_reads)``.

    DirectTransport keeps dispatch synchronous and cheap, so the
    epoch-path cost difference is visible instead of drowned in thread
    handoffs; the burst interval parks the control loop far outside the
    measured window.
    """
    from repro.core.api import ElasticObject
    from repro.core.runtime import ElasticRuntime
    from repro.kvstore.store import HyperStore
    from repro.rmi.transport import DirectTransport

    counts = {"epoch_gets": 0}

    def on_op(op: str, key: str) -> None:
        if op == "get" and key.endswith("$epoch"):
            counts["epoch_gets"] += 1

    class EpochEcho(ElasticObject):
        def __init__(self) -> None:
            super().__init__()
            self.set_min_pool_size(STORE_POOL_MEMBERS)
            self.set_max_pool_size(STORE_POOL_MEMBERS + 4)
            self.set_burst_interval(3_600.0)

        def echo(self, value: Any) -> Any:
            return value

    runtime = ElasticRuntime.local(
        nodes=4,
        slices_per_node=4,
        transport=DirectTransport(),
        store=HyperStore(nodes=1, on_op=on_op),
    )
    pool = runtime.new_pool(EpochEcho, name="bench-epoch")
    return runtime, pool, lambda: counts["epoch_gets"]


def _run_epoch_leg(
    name: str,
    runtime: Any,
    epoch_reads: Callable[[], int],
    cached: bool,
    calls: int,
) -> tuple[BenchRecord, dict[str, Any]]:
    """Measure one epoch-learning discipline on a fresh stub."""
    stub = runtime.stub("bench-epoch", epoch_caching=cached)
    stub.echo("prime")  # first call pays the (one) read-through miss
    warmup = max(1, calls // 10)
    before = epoch_reads()
    durations = time_calls(lambda: stub.echo(1), calls, warmup=warmup)
    reads = epoch_reads() - before
    reads_per_call = reads / (calls + warmup)
    record = summarize(
        name,
        {
            "transport": "direct",
            "members": STORE_POOL_MEMBERS,
            "concurrency": 1,
            "epoch_caching": cached,
        },
        durations,
    )
    return record, {
        "epoch_reads": reads,
        "epoch_reads_per_call": round(reads_per_call, 6),
    }


def _run_convergence_leg(
    name: str, watch: bool, rounds: int
) -> tuple[BenchRecord, dict[str, Any]]:
    """Membership-convergence latency for c256 client caches.

    Each round bumps the epoch key once and then sweeps all caches
    round-robin until every one observes the new value; the per-cache
    latency is bump-to-observation.  Both modes run the identical sweep
    loop — the only difference is how the cache learns about the bump
    (pushed event vs lease expiry + re-read).
    """
    from repro.kvstore.cache import WatchCache
    from repro.kvstore.store import HyperStore

    store = HyperStore(nodes=1)
    key = "bench-conv$epoch"
    store.put(key, 0)
    caches = [
        WatchCache(
            store, watch=watch, lease_ms=STORE_CONVERGE_LEASE_MS
        )
        for _ in range(STORE_CONVERGE_CLIENTS)
    ]
    clock = time.perf_counter
    try:
        for cache in caches:
            cache.get(key)  # prime: attach watches / start leases
        durations: list[float] = []
        wall = 0.0
        for _ in range(rounds):
            target = store.incr(key)
            started = clock()
            waiting = dict(enumerate(caches))
            while waiting:
                for index, cache in list(waiting.items()):
                    if cache.get(key) == target:
                        durations.append(clock() - started)
                        del waiting[index]
            wall += clock() - started
        record = summarize_wall(
            name,
            {
                "clients": STORE_CONVERGE_CLIENTS,
                "rounds": rounds,
                "lease_ms": STORE_CONVERGE_LEASE_MS,
                "watch": watch,
            },
            durations,
            wall,
        )
        extra = {
            "convergence_p50_ms": round(percentile(durations, 0.50) * 1e3, 4),
            "convergence_p99_ms": round(percentile(durations, 0.99) * 1e3, 4),
            "store_reads": store.total_ops(),
        }
        return record, extra
    finally:
        for cache in caches:
            cache.close()


def run_store_suite(
    scale: float | None = None, extra_out: dict[str, Any] | None = None
) -> list[BenchRecord]:
    """Coordination-read cost: watched cache vs per-call store polling.

    Two contrasts, both from PR 8's tentpole:

    - ``epoch-poll-c1`` vs ``epoch-watch-c1`` — invocation latency on a
      quiet pool with the epoch polled per call (the pre-watch baseline,
      exactly one store ``get`` per invocation) vs read through the
      runtime's WatchCache (zero steady-state store reads).  Headline:
      ``extra["steady-state"]`` epoch reads per call.
    - ``churn-poll-c256`` vs ``churn-watch-c256`` — how fast 256 client
      caches observe an epoch bump: lease expiry (bounded staleness,
      zero steady-state reads — the best a poll-flavoured design does)
      vs push invalidation.  Headline: ``extra["convergence"]`` p50
      latency ratio.

    Anchor record for normalized regression checks: ``epoch-poll-c1``.
    """
    if scale is None:
        scale = bench_scale()
    extra: dict[str, Any] = {} if extra_out is None else extra_out

    records = []
    calls = _scaled(STORE_EPOCH_CALLS, scale)
    runtime, _pool, epoch_reads = _make_epoch_harness()
    try:
        steady: dict[str, Any] = {"calls_per_leg": calls}
        for name, cached in (("epoch-poll-c1", False), ("epoch-watch-c1", True)):
            record, leg_extra = _run_epoch_leg(
                name, runtime, epoch_reads, cached, calls
            )
            records.append(record)
            mode = "watch" if cached else "poll"
            steady[f"{mode}_epoch_reads_per_call"] = leg_extra[
                "epoch_reads_per_call"
            ]
        extra["steady-state"] = steady
    finally:
        runtime.shutdown()

    rounds = max(2, int(STORE_CONVERGE_ROUNDS * scale))
    convergence: dict[str, Any] = {
        "clients": STORE_CONVERGE_CLIENTS,
        "rounds": rounds,
        "lease_ms": STORE_CONVERGE_LEASE_MS,
    }
    for name, watch in (("churn-poll-c256", False), ("churn-watch-c256", True)):
        record, leg_extra = _run_convergence_leg(name, watch, rounds)
        for _ in range(STORE_CONVERGE_REPEATS - 1):
            candidate = _run_convergence_leg(name, watch, rounds)
            if candidate[1]["convergence_p50_ms"] < leg_extra["convergence_p50_ms"]:
                record, leg_extra = candidate
        records.append(record)
        mode = "watch" if watch else "poll"
        for stat, value in leg_extra.items():
            convergence[f"{mode}_{stat}"] = value
    watch_p50 = convergence["watch_convergence_p50_ms"]
    poll_p50 = convergence["poll_convergence_p50_ms"]
    convergence["speedup_p50"] = round(
        poll_p50 / watch_p50 if watch_p50 > 0 else float("inf"), 2
    )
    extra["convergence"] = convergence
    return records


# ----------------------------------------------------------------------
# the cpu (process-pool skeleton execution) suite
# ----------------------------------------------------------------------

CPU_COSTS_MS = (1, 5, 20)    # per-call pure-python compute
CPU_BENCH_WORKERS = 4        # pool size (threads and processes alike)
CPU_CONCURRENCY = 4          # outstanding calls per wave
CPU_PAYLOAD_MIB = (1, 4)     # echo payload sizes for the shm-vs-pipe legs


def _spin(iters: int) -> int:
    """The calibrated busy loop: pure-python compute that holds the GIL."""
    total = 0
    for i in range(iters):
        total += i * i
    return total


def _calibrate_spin(target_s: float) -> int:
    """Iterations of :func:`_spin` that take ~``target_s`` on this box."""
    iters = 10_000
    while True:
        started = time.perf_counter()
        _spin(iters)
        elapsed = time.perf_counter() - started
        if elapsed >= target_s * 0.5 or iters >= 50_000_000:
            return max(1, int(iters * target_s / elapsed))
        iters *= 4


class _CpuBurner:
    """Module-level on purpose: cpu workers rebuild it by reference."""

    def burn(self, iters: int) -> int:
        return _spin(iters)

    def echo(self, blob: bytes) -> bytes:
        return blob


def _cpu_burner_class() -> type:
    """Apply ``@cpu_bound`` lazily (keeps module import light)."""
    from repro.rmi.cpu import cpu_bound

    if not getattr(_CpuBurner.burn, "__ermi_cpu_bound__", False):
        cpu_bound(_CpuBurner.burn)
        cpu_bound(_CpuBurner.echo)
    return _CpuBurner


def _run_cpu_waves(
    submit: Callable[[], Any], calls: int, concurrency: int
) -> tuple[list[float], float]:
    """Waves of ``concurrency`` outstanding futures; per-wave durations."""
    clock = time.perf_counter
    waves = max(1, calls // concurrency)
    durations = []
    begun = clock()
    for _ in range(waves):
        started = clock()
        futures = [submit() for _ in range(concurrency)]
        for future in futures:
            future.result()
        durations.append(clock() - started)
    return durations, clock() - begun


def run_cpu_suite(
    scale: float | None = None, extra_out: dict[str, Any] | None = None
) -> list[BenchRecord]:
    """Process-pool vs threaded offload, and shm vs pipe payloads.

    Two sweeps.  The *compute* sweep runs a calibrated pure-python busy
    loop (1/5/20 ms) at ``CPU_CONCURRENCY`` outstanding calls through a
    4-thread pool (the ``@blocking`` offload ceiling: every thread
    shares one GIL) and through a 4-process :class:`~repro.rmi.cpu.
    CpuExecutor`; ``cpu-aio-proc-5ms`` repeats the 5 ms point through
    the full asyncio-transport + skeleton stack.  The *payload* sweep
    echoes 1/4 MiB blobs through a single worker with the shared-memory
    path disabled (``cpu-pipe-*``, buffers copied through the pipe) and
    enabled (``cpu-shm-*``).

    ``extra`` records the visible ``cpu_count`` — the thread-vs-process
    speedups are physically bounded by it, so a 1-core box reports ~1×
    where a 4-core CI runner reports ~3-4× (the gate normalizes within
    each family for exactly that reason, see :func:`compare_cpu_reports`).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.rmi import AsyncioTransport, Skeleton, Stub
    from repro.rmi.cpu import DEFAULT_SHM_MIN, CpuExecutor
    from repro.rmi.future import gather

    if scale is None:
        scale = bench_scale()
    burner_cls = _cpu_burner_class()
    burner = burner_cls()
    records: list[BenchRecord] = []
    extra: dict[str, Any] = {} if extra_out is None else extra_out
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    extra["cpu_count"] = cores
    extra["workers"] = CPU_BENCH_WORKERS
    extra["concurrency"] = CPU_CONCURRENCY
    extra["shm_min_default"] = DEFAULT_SHM_MIN

    spin_per_ms = _calibrate_spin(1e-3)
    throughput: dict[str, float] = {}

    def leg(name: str, config: dict[str, Any], submit, calls: int) -> None:
        submit().result()  # warm: spawn pool threads / touch the pipe
        durations, wall = _run_cpu_waves(submit, calls, CPU_CONCURRENCY)
        record = summarize_wall(name, config, durations, wall)
        record.calls = len(durations) * CPU_CONCURRENCY
        record.calls_per_sec = record.calls / wall if wall > 0 else 0.0
        records.append(record)
        throughput[name] = record.calls_per_sec

    for cost_ms in CPU_COSTS_MS:
        iters = spin_per_ms * cost_ms
        calls = max(2 * CPU_CONCURRENCY, int(240 * scale) // cost_ms)
        config = {
            "cost_ms": cost_ms,
            "workers": CPU_BENCH_WORKERS,
            "concurrency": CPU_CONCURRENCY,
        }
        pool = ThreadPoolExecutor(max_workers=CPU_BENCH_WORKERS)
        try:
            leg(
                f"cpu-thread-{cost_ms}ms",
                dict(config, executor="thread"),
                lambda: pool.submit(burner.burn, iters),
                calls,
            )
        finally:
            pool.shutdown(wait=True)
        executor = CpuExecutor(
            workers=CPU_BENCH_WORKERS, shm_min=DEFAULT_SHM_MIN
        )
        try:
            leg(
                f"cpu-proc-{cost_ms}ms",
                dict(config, executor="process"),
                lambda: executor.submit_call(burner, "burn", (iters,), {}),
                calls,
            )
        finally:
            executor.shutdown()

    # The 5 ms point again, through the full stack: asyncio transport,
    # skeleton dispatch, marshalling, and the awaited worker future.
    transport = AsyncioTransport(timeout=None)
    executor = CpuExecutor(workers=CPU_BENCH_WORKERS, shm_min=DEFAULT_SHM_MIN)
    transport.set_cpu_executor(executor)
    try:
        endpoint = transport.add_endpoint("cpu-bench")
        skeleton = Skeleton(burner, transport, endpoint.endpoint_id)
        stub = Stub(transport, skeleton.ref())
        iters = spin_per_ms * 5
        calls = max(2 * CPU_CONCURRENCY, int(240 * scale) // 5)
        clock = time.perf_counter
        gather([stub.invoke_async("burn", iters)])  # warm the path
        durations = []
        begun = clock()
        for _ in range(max(1, calls // CPU_CONCURRENCY)):
            started = clock()
            gather([
                stub.invoke_async("burn", iters)
                for _ in range(CPU_CONCURRENCY)
            ])
            durations.append(clock() - started)
        wall = clock() - begun
        record = summarize_wall(
            "cpu-aio-proc-5ms",
            {
                "cost_ms": 5,
                "workers": CPU_BENCH_WORKERS,
                "concurrency": CPU_CONCURRENCY,
                "executor": "process",
                "transport": "aio",
            },
            durations,
            wall,
        )
        record.calls = len(durations) * CPU_CONCURRENCY
        record.calls_per_sec = record.calls / wall if wall > 0 else 0.0
        records.append(record)
        throughput[record.name] = record.calls_per_sec
    finally:
        transport.shutdown()
        executor.shutdown()

    # Payload sweep: one worker, echo both directions, shm on vs off.
    for mib in CPU_PAYLOAD_MIB:
        blob = bytes(range(256)) * (4096 * mib)  # mib MiB
        calls = max(4, int(24 * scale) // mib)
        for kind, shm_min in (("pipe", 1 << 62), ("shm", 1)):
            executor = CpuExecutor(workers=1, shm_min=shm_min)
            try:
                executor.run_call(burner, "echo", (blob,), {})  # warm
                durations = time_calls(
                    lambda: executor.run_call(burner, "echo", (blob,), {}),
                    calls,
                    warmup=1,
                )
            finally:
                executor.shutdown()
            record = summarize(
                f"cpu-{kind}-{mib}mib",
                {"payload_mib": mib, "transfer": kind, "workers": 1},
                durations,
            )
            records.append(record)
            throughput[record.name] = record.calls_per_sec

    def ratio(a: str, b: str) -> float:
        return round(
            throughput[a] / throughput[b] if throughput.get(b) else 0.0, 2
        )

    extra["speedup"] = {
        f"proc_vs_thread_{cost}ms": ratio(
            f"cpu-proc-{cost}ms", f"cpu-thread-{cost}ms"
        )
        for cost in CPU_COSTS_MS
    }
    extra["speedup"]["aio_proc_vs_thread_5ms"] = ratio(
        "cpu-aio-proc-5ms", "cpu-thread-5ms"
    )
    extra["zero_copy"] = {
        f"shm_vs_pipe_{mib}mib": ratio(f"cpu-shm-{mib}mib", f"cpu-pipe-{mib}mib")
        for mib in CPU_PAYLOAD_MIB
    }
    return records


# The gate families for compare_cpu_reports: thread-vs-process ratios
# depend on the core count of the measuring machine (a 1-core box shows
# ~1x where a 4-core runner shows ~4x), so a single-anchor normalization
# would flag cross-family drift that is pure topology.  Within a family
# every record scales with the same resource, so those ratios are stable
# across machines and still catch real regressions.
CPU_COMPARE_FAMILIES = (
    ("thread", ("cpu-thread-",), "cpu-thread-5ms"),
    ("process", ("cpu-proc-", "cpu-aio-proc-"), "cpu-proc-5ms"),
    ("payload", ("cpu-pipe-", "cpu-shm-"), "cpu-pipe-1mib"),
)

# Within the process family the 1 ms leg is the one record whose cost is
# IPC-dominated rather than compute-dominated: adding cores (or shrinking
# the per-leg call count) moves it relative to the 5/20 ms anchors even
# when nothing regressed.  It stays in the report and in the ``speedup``
# extra, but is not gated.
CPU_COMPARE_EXCLUDE = frozenset({"cpu-proc-1ms"})


def compare_cpu_reports(
    baseline: dict[str, Any] | list[BenchRecord],
    current: dict[str, Any] | list[BenchRecord],
    tolerance: float = 0.30,
) -> CompareResult:
    """The cpu suite's baseline gate: per-family normalized comparison.

    Same contract as :func:`compare_reports` with ``normalize=True``,
    except each record is normalized by *its family's* anchor (see
    :data:`CPU_COMPARE_FAMILIES`) instead of one global anchor.  Records
    only in ``current`` pass; records only in ``baseline`` are missing.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1): {tolerance}")
    base = _record_throughputs(baseline)
    cur = _record_throughputs(current)
    lines = [
        f"{'config':<20} {'baseline':>12} {'current':>12} {'delta':>8}"
    ]
    regressions: list[str] = []
    missing: list[str] = []
    matched: set[str] = set()
    for family, prefixes, anchor in CPU_COMPARE_FAMILIES:
        family_names = [
            name
            for name in base
            if name.startswith(prefixes) and name not in CPU_COMPARE_EXCLUDE
        ]
        if not family_names:
            continue
        base_anchor = base.get(anchor, 0.0)
        cur_anchor = cur.get(anchor, 0.0)
        if base_anchor <= 0.0 or cur_anchor <= 0.0:
            raise ValueError(
                f"cannot normalize cpu family {family!r}: anchor "
                f"{anchor!r} missing or zero"
            )
        for name in family_names:
            matched.add(name)
            base_value = base[name] / base_anchor
            if name not in cur:
                missing.append(name)
                lines.append(
                    f"{name:<20} {base_value:>12.2f} {'MISSING':>12}"
                )
                continue
            cur_value = cur[name] / cur_anchor
            delta = (
                (cur_value - base_value) / base_value
                if base_value > 0 else 0.0
            )
            verdict = ""
            if delta < -tolerance:
                regressions.append(name)
                verdict = "  REGRESSION"
            lines.append(
                f"{name:<20} {base_value:>12.2f} {cur_value:>12.2f} "
                f"{delta:>+7.1%}{verdict}  (x {anchor})"
            )
    for name in base:
        if name not in matched:
            lines.append(f"{name:<20} (not in a cpu gate family; skipped)")
    return CompareResult(lines=lines, regressions=regressions, missing=missing)


# ----------------------------------------------------------------------
# BENCH_*.json reporting
# ----------------------------------------------------------------------


def build_report(
    suite: str,
    records: list[BenchRecord],
    extra: dict[str, Any] | None = None,
    deterministic: bool = False,
) -> dict[str, Any]:
    """The JSON document for one suite run (schema in README.md).

    ``deterministic`` omits the environment stamps (``created_unix``,
    ``python``, ``platform``) so two runs with identical measurements
    serialize byte-identically — the scenario suite's replay contract,
    where every metric is virtual-time and therefore machine-independent.
    """
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "suite": suite,
    }
    if deterministic:
        doc["deterministic"] = True
    else:
        doc["created_unix"] = time.time()
        doc["python"] = platform.python_version()
        doc["platform"] = platform.platform()
    doc["records"] = [asdict(record) for record in records]
    if extra:
        doc["extra"] = extra
    return doc


def write_report(
    path: str,
    suite: str,
    records: list[BenchRecord],
    extra: dict[str, Any] | None = None,
    deterministic: bool = False,
) -> dict[str, Any]:
    """Write (and return) the ``BENCH_*.json`` document."""
    doc = build_report(
        suite, records, extra=extra, deterministic=deterministic
    )
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return doc


def load_report(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def validate_report(doc: dict[str, Any]) -> list[str]:
    """Schema check; returns a list of problems (empty when valid)."""
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("suite"), str) or not doc.get("suite"):
        problems.append("suite missing")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        problems.append("records missing or empty")
        return problems
    required = {
        "name": str,
        "config": dict,
        "calls": int,
        "elapsed_s": (int, float),
        "calls_per_sec": (int, float),
        "p50_us": (int, float),
        "p99_us": (int, float),
        "mean_us": (int, float),
    }
    for i, record in enumerate(records):
        for fieldname, types in required.items():
            if not isinstance(record.get(fieldname), types):
                problems.append(f"records[{i}].{fieldname} invalid")
    return problems


@dataclass
class CompareResult:
    """Outcome of one baseline comparison (``repro bench --check``)."""

    lines: list[str]
    regressions: list[str]
    missing: list[str]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing


def _record_throughputs(
    report_or_records: dict[str, Any] | list[BenchRecord],
) -> dict[str, float]:
    """name → calls_per_sec, from a report document or live records."""
    if isinstance(report_or_records, dict):
        records = report_or_records.get("records", [])
        return {r["name"]: float(r["calls_per_sec"]) for r in records}
    return {r.name: r.calls_per_sec for r in report_or_records}


def compare_reports(
    baseline: dict[str, Any] | list[BenchRecord],
    current: dict[str, Any] | list[BenchRecord],
    tolerance: float = 0.30,
    normalize: bool = False,
    anchor: str = "marshal-pickle",
) -> CompareResult:
    """Flag records whose throughput dropped more than ``tolerance``.

    With ``normalize`` each record is divided by its own run's
    ``anchor`` record throughput first (``marshal-pickle`` for the
    hot-path suite, ``batch-off-c1`` for the batching suite), so the
    comparison is in units of "times the anchor" — absorbing absolute
    machine-speed differences between the committed baseline and the CI
    runner while still catching *relative* regressions.  The trade-off:
    a slowdown that hits every record equally (including the anchor
    itself) is invisible to the normalized check, which is why the
    benchmark suites' own ratio assertions (e.g. zerocopy ≥ 3× pickle,
    batched ≥ 2× unbatched) stay in place alongside it.

    Records present only in ``current`` (newly added benches) pass;
    records present only in ``baseline`` are reported as missing.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1): {tolerance}")
    base = _record_throughputs(baseline)
    cur = _record_throughputs(current)
    if normalize:
        for series in (base, cur):
            anchor_value = series.get(anchor, 0.0)
            if anchor_value <= 0.0:
                raise ValueError(
                    f"cannot normalize: {anchor!r} record missing or zero"
                )
            for name in series:
                series[name] = series[name] / anchor_value
    unit = f"x {anchor}" if normalize else "calls/s"
    lines = [
        f"{'config':<20} {'baseline':>12} {'current':>12} {'delta':>8}"
    ]
    regressions: list[str] = []
    missing: list[str] = []
    for name, base_value in base.items():
        if name not in cur:
            missing.append(name)
            lines.append(f"{name:<20} {base_value:>12.2f} {'MISSING':>12}")
            continue
        cur_value = cur[name]
        delta = (
            (cur_value - base_value) / base_value if base_value > 0 else 0.0
        )
        verdict = ""
        if delta < -tolerance:
            regressions.append(name)
            verdict = "  REGRESSION"
        lines.append(
            f"{name:<20} {base_value:>12.2f} {cur_value:>12.2f} "
            f"{delta:>+7.1%}{verdict}  ({unit})"
        )
    return CompareResult(lines=lines, regressions=regressions, missing=missing)


def format_table(records: list[BenchRecord]) -> str:
    """Human-readable summary of one suite run."""
    lines = [
        f"{'config':<20} {'calls':>8} {'calls/s':>12} "
        f"{'p50 µs':>10} {'p99 µs':>10}",
    ]
    for record in records:
        lines.append(
            f"{record.name:<20} {record.calls:>8} "
            f"{record.calls_per_sec:>12.0f} "
            f"{record.p50_us:>10.1f} {record.p99_us:>10.1f}"
        )
    return "\n".join(lines)
