"""Scaling dynamics: step-response analysis.

Average agility compresses a whole trace into one number; this analysis
looks at the *transient*: after the abrupt workload jump to point A
(minute 205 of the Figure 7a trace), how long does each deployment take
to provision the new requirement?  The convergence lag is the mechanism
behind the Figure 7 averages — fine-grained multi-member votes close a
13-member gap in a couple of burst intervals, ±1 threshold steps take
over an hour, and the overprovisioning oracle was never short at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.appmodels import APP_MODELS
from repro.experiments.harness import run_deployment

#: The abrupt pattern's rapid increase completes at minute 205.
STEP_AT_MIN = 205.0


@dataclass(frozen=True)
class StepResponse:
    """Convergence behaviour after the jump to point A."""

    deployment: str
    requirement: int            # members required at the peak
    converged_at_min: float | None  # first sample meeting the requirement
    lag_min: float | None       # minutes from the step to convergence
    worst_shortage: float       # deepest capacity deficit during the climb


def step_response(
    app_name: str = "marketcetera",
    deployment: str = "elasticrmi",
    seed: int = 0,
    window_min: float = 150.0,
) -> StepResponse:
    """Measure one deployment's response to the abrupt jump."""
    result = run_deployment(app_name, "abrupt", deployment, seed=seed)
    requirement = max(req for _, req in result.req_series)
    caps = dict(result.capacity_series)
    reqs = dict(result.req_series)
    step_s = STEP_AT_MIN * 60.0
    window_end = step_s + window_min * 60.0

    converged_at = None
    worst_shortage = 0.0
    for t in sorted(caps):
        if t < step_s or t > window_end:
            continue
        shortage = max(0, reqs[t] - caps[t])
        worst_shortage = max(worst_shortage, shortage)
        if converged_at is None and caps[t] >= reqs[t]:
            converged_at = t / 60.0
    lag = None if converged_at is None else converged_at - STEP_AT_MIN
    return StepResponse(
        deployment=deployment,
        requirement=requirement,
        converged_at_min=converged_at,
        lag_min=lag,
        worst_shortage=worst_shortage,
    )


def step_response_comparison(
    app_name: str = "marketcetera", seed: int = 0
) -> dict[str, StepResponse]:
    """Step responses for all four deployments on one application."""
    return {
        name: step_response(app_name, name, seed=seed)
        for name in (
            "elasticrmi",
            "elasticrmi-cpumem",
            "cloudwatch",
            "overprovisioning",
        )
    }
