"""The experiment harness: one (application, workload, deployment) run.

The harness replays a workload trace in virtual time:

- every ``control_interval`` (30 s): compute the offered rate from the
  pattern and feed it to the deployment (utilization observations for
  threshold systems, the rate hint for fine-grained scaling);
- every ``sample_interval`` (600 s — the paper's 10-minute sampling):
  record one SPEC agility sample (Cap_prov vs Req_min).

The ElasticRMI deployments run the real runtime on the same kernel, so
burst ticks, provisioning delays, sentinel duties, and policy votes all
interleave with the driver exactly as they would in a live system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.appmodels import APP_MODELS, AppModel
from repro.experiments.deployments import build_deployment
from repro.metrics.agility import AgilityTracker
from repro.sim.kernel import Kernel
from repro.workloads.patterns import (
    AbruptPattern,
    CyclicPattern,
    WorkloadPattern,
)

CONTROL_INTERVAL_S = 30.0
SAMPLE_INTERVAL_S = 600.0


@dataclass
class DeploymentResult:
    """Everything Figure 7/8 needs from one run."""

    app: str
    workload: str
    deployment: str
    tracker: AgilityTracker
    capacity_series: list[tuple[float, int]] = field(default_factory=list)
    req_series: list[tuple[float, int]] = field(default_factory=list)
    provisioning: list[tuple[float, float]] = field(default_factory=list)

    @property
    def average_agility(self) -> float:
        return self.tracker.average_agility()

    @property
    def max_agility(self) -> float:
        return self.tracker.max_agility()

    @property
    def zero_fraction(self) -> float:
        return self.tracker.zero_fraction()

    def agility_series(self) -> list[tuple[float, float]]:
        return self.tracker.series()


def pattern_for(app: AppModel, workload: str) -> WorkloadPattern:
    if workload == "abrupt":
        return AbruptPattern(app.point_a)
    if workload == "cyclic":
        return CyclicPattern(app.point_a * 1.2)
    raise ValueError(f"unknown workload: {workload}")


def run_deployment(
    app_name: str,
    workload: str,
    deployment_name: str,
    seed: int = 0,
    control_interval: float = CONTROL_INTERVAL_S,
    sample_interval: float = SAMPLE_INTERVAL_S,
) -> DeploymentResult:
    """Run one full trace and return the agility/provisioning results."""
    return run_custom(
        app_name,
        workload,
        factory=lambda kernel, app, pattern, s: build_deployment(
            deployment_name, kernel, app, pattern, s
        ),
        seed=seed,
        control_interval=control_interval,
        sample_interval=sample_interval,
    )


def run_custom(
    app_name: str,
    workload: str,
    factory,
    seed: int = 0,
    control_interval: float = CONTROL_INTERVAL_S,
    sample_interval: float = SAMPLE_INTERVAL_S,
) -> DeploymentResult:
    """Like :func:`run_deployment`, but with a caller-supplied deployment
    factory ``factory(kernel, app, pattern, seed)`` — the entry point the
    ablation studies use to vary burst intervals, provisioners, and
    policy parameters."""
    if app_name not in APP_MODELS:
        raise ValueError(f"unknown application: {app_name}")
    app = APP_MODELS[app_name]
    pattern = pattern_for(app, workload)
    kernel = Kernel()
    deployment = factory(kernel, app, pattern, seed)
    result = DeploymentResult(
        app=app_name,
        workload=workload,
        deployment=deployment.name,
        tracker=AgilityTracker(),
    )

    def control_step() -> None:
        t = kernel.clock.now()
        if t > pattern.duration_s:
            return
        deployment.on_control_step(t, pattern.rate(t))
        kernel.call_after(control_interval, control_step)

    def sample_step() -> None:
        t = kernel.clock.now()
        if t > pattern.duration_s:
            return
        cap = deployment.capacity()
        req = app.req_min(pattern.rate(t), t)
        result.tracker.record(t, cap_prov=cap, req_min=req)
        result.capacity_series.append((t, cap))
        result.req_series.append((t, req))
        kernel.call_after(sample_interval, sample_step)

    # Let the initial pool members activate before the first observation.
    kernel.call_after(5.0, control_step)
    kernel.call_after(sample_interval, sample_step)
    kernel.run_until(pattern.duration_s + 1.0)
    result.provisioning = deployment.provisioning_latencies()
    deployment.stop()
    return result
