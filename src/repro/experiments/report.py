"""Full-evaluation report generation.

Runs every figure of the paper's evaluation and renders one markdown
report (the machine-generated core of EXPERIMENTS.md): the Figure 7
agility table with deployment ratios, the Figure 8 provisioning table,
and the shape-claim checklist.  Used by ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.figures import (
    FIGURE7_PANELS,
    AgilityPanel,
    ProvisioningFigure,
    figure7_agility,
    figure8_provisioning,
)


@dataclass
class EvaluationReport:
    """All measured results for one seed."""

    seed: int
    panels: dict[str, AgilityPanel] = field(default_factory=dict)
    provisioning: dict[str, ProvisioningFigure] = field(default_factory=dict)

    def claims(self) -> list[tuple[str, bool]]:
        """The paper's shape claims, each checked against this run."""
        checks: list[tuple[str, bool]] = []
        panels = self.panels.values()
        checks.append((
            "ElasticRMI has the lowest average agility in every panel",
            all(
                p.averages()["elasticrmi"] == min(p.averages().values())
                for p in panels
            ),
        ))
        checks.append((
            "Overprovisioning has the highest average agility in every panel",
            all(
                p.averages()["overprovisioning"] == max(p.averages().values())
                for p in panels
            ),
        ))
        checks.append((
            "ElasticRMI-CPUMem tracks CloudWatch within 35% everywhere",
            all(
                abs(
                    p.averages()["elasticrmi-cpumem"]
                    - p.averages()["cloudwatch"]
                )
                <= 0.35 * max(p.averages()["cloudwatch"], 1e-9)
                for p in panels
            ),
        ))
        checks.append((
            "CloudWatch is at least 2x worse than ElasticRMI in every panel",
            all(p.ratio_to_elasticrmi("cloudwatch") >= 2.0 for p in panels),
        ))
        checks.append((
            "Overprovisioning reaches up to ~24x ElasticRMI somewhere",
            any(
                p.ratio_to_elasticrmi("overprovisioning") >= 12.0
                for p in panels
            ),
        ))
        checks.append((
            "ElasticRMI provisioning latency stays below 30 s",
            all(
                fig.max_latency(app) < 30.0
                for fig in self.provisioning.values()
                for app in fig.series
                if fig.series[app]
            ),
        ))
        return checks

    def to_markdown(self) -> str:
        lines = [
            f"# ElasticRMI evaluation report (seed {self.seed})",
            "",
            "## Figure 7: average agility per deployment",
            "",
            "| Fig | App | Workload | ElasticRMI | CPUMem | CloudWatch |"
            " Overprov. | CW ratio |",
            "|-----|-----|----------|-----------:|-------:|-----------:|"
            "----------:|---------:|",
        ]
        for fig, panel in sorted(self.panels.items()):
            averages = panel.averages()
            lines.append(
                f"| {fig} | {panel.app} | {panel.workload} "
                f"| {averages['elasticrmi']:.2f} "
                f"| {averages['elasticrmi-cpumem']:.2f} "
                f"| {averages['cloudwatch']:.2f} "
                f"| {averages['overprovisioning']:.2f} "
                f"| {panel.ratio_to_elasticrmi('cloudwatch'):.2f}x |"
            )
        lines += ["", "## Figure 8: ElasticRMI provisioning latency", ""]
        lines += [
            "| Workload | App | Scale-ups | Mean (s) | Max (s) |",
            "|----------|-----|----------:|---------:|--------:|",
        ]
        for workload, fig in sorted(self.provisioning.items()):
            for app, points in sorted(fig.series.items()):
                if not points:
                    continue
                lines.append(
                    f"| {workload} | {app} | {len(points)} "
                    f"| {fig.mean_latency(app):.1f} "
                    f"| {fig.max_latency(app):.1f} |"
                )
        lines += ["", "## Shape claims", ""]
        for claim, held in self.claims():
            lines.append(f"- [{'x' if held else ' '}] {claim}")
        lines.append("")
        return "\n".join(lines)


def run_full_evaluation(seed: int = 0) -> EvaluationReport:
    """Run all 8 agility panels and both provisioning figures."""
    report = EvaluationReport(seed=seed)
    for fig in FIGURE7_PANELS:
        report.panels[fig] = figure7_agility(fig, seed=seed)
    for workload in ("abrupt", "cyclic"):
        report.provisioning[workload] = figure8_provisioning(
            workload, seed=seed
        )
    return report
