"""Low-level concurrency primitives shared by the hot paths.

CPython has no atomic integer: ``self.counter += 1`` compiles to a
load/add/store triple, so two threads incrementing concurrently can lose
updates.  The classic fixes are a lock (contention on every call — the
exact overhead the fast-path work removes) or striping.  We stripe:

- :class:`StripedCounter` — every thread owns a private cell it alone
  writes, so increments are contention-free and never lost; reads sum
  the cells (a consistent-enough snapshot for metrics).
- :class:`ThreadStripes` — the same sharding generalized to arbitrary
  per-thread stripe objects, for state richer than one integer (e.g. the
  skeleton's per-method call statistics).  Writers touch only their own
  stripe; readers enumerate all stripes and merge.  Unlike the counter,
  a stripe may carry its own lock when readers must *reset* it exactly
  once (windowed statistics) — that lock is still uncontended on the hot
  path, because no two writer threads ever share a stripe.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

S = TypeVar("S")


class StripedCounter:
    """A contention-free monotonic counter.

    Each thread increments a cell only it writes; :meth:`value` sums all
    cells.  Cells are kept alive after their thread exits so the total
    never loses history (the cell list grows with the number of distinct
    threads that ever incremented — bounded in practice by pool sizes).
    """

    __slots__ = ("_cells", "_local", "_register_lock")

    def __init__(self) -> None:
        self._cells: list[list[int]] = []
        self._local = threading.local()
        self._register_lock = threading.Lock()

    def increment(self, delta: int = 1) -> None:
        try:
            cell = self._local.cell
        except AttributeError:
            cell = [0]
            with self._register_lock:
                self._cells.append(cell)
            self._local.cell = cell
        # Only the owning thread writes this cell: no lost updates.
        cell[0] += delta

    def value(self) -> int:
        with self._register_lock:
            cells = list(self._cells)
        return sum(cell[0] for cell in cells)

    def __int__(self) -> int:
        return self.value()

    def __repr__(self) -> str:
        return f"StripedCounter({self.value()})"


class ThreadStripes(Generic[S]):
    """A registry of per-thread stripe objects.

    ``factory`` builds one stripe the first time each thread calls
    :meth:`stripe`; after that the thread reaches its stripe through a
    ``threading.local`` lookup with no shared-lock acquisition.  Stripes
    outlive their threads (like :class:`StripedCounter` cells) so merged
    reads never lose history; the registry grows with the number of
    distinct writer threads, bounded in practice by pool/executor sizes.

    Readers call :meth:`stripes` for a point-in-time list of every
    stripe ever created and merge/reset them under whatever per-stripe
    discipline the stripe type provides.
    """

    __slots__ = ("_factory", "_stripes", "_local", "_register_lock")

    def __init__(self, factory: Callable[[], S]) -> None:
        self._factory = factory
        self._stripes: list[S] = []
        self._local = threading.local()
        self._register_lock = threading.Lock()

    def stripe(self) -> S:
        """The calling thread's stripe (created and registered on first
        use)."""
        try:
            return self._local.stripe
        except AttributeError:
            stripe = self._factory()
            with self._register_lock:
                self._stripes.append(stripe)
            self._local.stripe = stripe
            return stripe

    def stripes(self) -> list[S]:
        """Every stripe ever registered (snapshot copy)."""
        with self._register_lock:
            return list(self._stripes)
