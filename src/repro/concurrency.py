"""Low-level concurrency primitives shared by the hot paths.

CPython has no atomic integer: ``self.counter += 1`` compiles to a
load/add/store triple, so two threads incrementing concurrently can lose
updates.  The classic fixes are a lock (contention on every call — the
exact overhead the fast-path work removes) or striping.  We stripe:

- :class:`StripedCounter` — every thread owns a private cell it alone
  writes, so increments are contention-free and never lost; reads sum
  the cells (a consistent-enough snapshot for metrics).
"""

from __future__ import annotations

import threading


class StripedCounter:
    """A contention-free monotonic counter.

    Each thread increments a cell only it writes; :meth:`value` sums all
    cells.  Cells are kept alive after their thread exits so the total
    never loses history (the cell list grows with the number of distinct
    threads that ever incremented — bounded in practice by pool sizes).
    """

    __slots__ = ("_cells", "_local", "_register_lock")

    def __init__(self) -> None:
        self._cells: list[list[int]] = []
        self._local = threading.local()
        self._register_lock = threading.Lock()

    def increment(self, delta: int = 1) -> None:
        try:
            cell = self._local.cell
        except AttributeError:
            cell = [0]
            with self._register_lock:
                self._cells.append(cell)
            self._local.cell = cell
        # Only the owning thread writes this cell: no lost updates.
        cell[0] += delta

    def value(self) -> int:
        with self._register_lock:
            cells = list(self._cells)
        return sum(cell[0] for cell in cells)

    def __int__(self) -> int:
        return self.value()

    def __repr__(self) -> str:
        return f"StripedCounter({self.value()})"
