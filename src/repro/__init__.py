"""ElasticRMI — elastic remote methods middleware.

A from-scratch Python reproduction of *"Elastic Remote Methods"*
(K. R. Jayaram, MIDDLEWARE 2013).  The package provides:

- :mod:`repro.core` — the paper's contribution: elastic classes whose
  instances form a pool that looks like one remote object, with implicit,
  coarse-grained, fine-grained, and application-level scaling policies;
- :mod:`repro.cluster` — a Mesos-like cluster manager (slices, offers,
  partial grants, provisioning-latency models);
- :mod:`repro.kvstore` — a HyperDex-like strongly consistent in-memory
  store with distributed locks for shared pool state;
- :mod:`repro.rmi` — the stub/skeleton RMI substrate;
- :mod:`repro.groupcomm` — JGroups-like broadcast and leader election;
- :mod:`repro.apps` — the four evaluation applications (Marketcetera
  order routing, Hedwig pub/sub, Paxos, DCS coordination service);
- :mod:`repro.baselines` — Overprovisioning, CloudWatch+AutoScaling, and
  the ElasticRMI-CPUMem variant;
- :mod:`repro.metrics` / :mod:`repro.workloads` /
  :mod:`repro.experiments` — SPEC elasticity metrics, the paper's workload
  patterns, and the drivers that regenerate every evaluation figure.

Quickstart::

    from repro import ElasticRuntime, ElasticObject, elastic_field

    class Cache(ElasticObject):
        hits = elastic_field(default=0)

        def get(self, key): ...

    runtime = ElasticRuntime.local(nodes=8)
    pool = runtime.new_pool(Cache, min_size=2, max_size=8)
    stub = pool.stub()
    stub.get("hot-key")   # load-balanced across the pool
"""

from repro.core.api import Decider, Elastic, ElasticObject
from repro.core.fields import elastic_field, synchronized
from repro.core.runtime import ElasticRuntime

__version__ = "1.0.0"

__all__ = [
    "Decider",
    "Elastic",
    "ElasticObject",
    "ElasticRuntime",
    "elastic_field",
    "synchronized",
    "__version__",
]
