"""The RMI registry: a name service mapping strings to remote references.

Mirrors ``java.rmi.registry``: bind refuses to overwrite, rebind replaces,
lookup of an unbound name raises :class:`NotBoundError`.  In ElasticRMI a
registry entry for an elastic class points at the pool's *sentinel*; the
elastic stub bootstraps member discovery from there.
"""

from __future__ import annotations

import threading

from repro.errors import AlreadyBoundError, NotBoundError
from repro.rmi.remote import RemoteRef


class Registry:
    """Thread-safe name -> RemoteRef table."""

    def __init__(self) -> None:
        self._bindings: dict[str, RemoteRef] = {}
        self._lock = threading.RLock()

    def bind(self, name: str, ref: RemoteRef) -> None:
        with self._lock:
            if name in self._bindings:
                raise AlreadyBoundError(name)
            self._bindings[name] = ref

    def rebind(self, name: str, ref: RemoteRef) -> None:
        with self._lock:
            self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise NotBoundError(name)
            del self._bindings[name]

    def lookup(self, name: str) -> RemoteRef:
        with self._lock:
            if name not in self._bindings:
                raise NotBoundError(name)
            return self._bindings[name]

    def list(self) -> list[str]:
        with self._lock:
            return sorted(self._bindings)
