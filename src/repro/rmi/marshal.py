"""Pass-by-value marshalling.

Java RMI serializes arguments and return values, so the server always sees
a *copy* — mutations on one side never leak to the other.  We reproduce
that with :mod:`pickle` round-trips (the closest Python analogue of Java
serialization) and surface failures as :class:`MarshalError` /
:class:`UnmarshalError` the way RMI does.

Remote references are the exception: a :class:`RemoteRef` in an argument
list passes by reference (the receiver gets a stub), exactly as remote
objects do in Java RMI.  The transport handles that: refs are pickleable
value objects, so they survive the round-trip unchanged.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import MarshalError, UnmarshalError


# Protocol 5 (the highest on every supported interpreter): framed output,
# out-of-band buffer support, and measurably faster dumps for the large
# bytes payloads the hot path carries.  Unpickling is
# backward-compatible, so wire payloads produced by older protocols
# still unmarshal (asserted in tests/rmi/test_marshal.py).
PROTOCOL = pickle.HIGHEST_PROTOCOL


def marshal_value(value: Any) -> bytes:
    """Serialize a value for the wire; raises MarshalError when the value
    is not serializable (mirrors java.rmi.MarshalException)."""
    try:
        return pickle.dumps(value, protocol=PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise MarshalError(f"cannot marshal {type(value).__name__}: {exc}") from exc


def unmarshal_value(payload: bytes) -> Any:
    """Deserialize a wire payload; raises UnmarshalError on corrupt data."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise UnmarshalError(f"cannot unmarshal payload: {exc}") from exc


def roundtrip(value: Any) -> Any:
    """Marshal-then-unmarshal: the deep copy every RMI call performs."""
    return unmarshal_value(marshal_value(value))
