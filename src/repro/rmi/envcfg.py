"""Validated parsing of the ``ERMI_*`` tuning environment variables.

Every knob is read once, at construction time (stub, batcher, or
transport ``__init__``) — never on the invocation path — so a malformed
value must fail *there*, loudly, naming the variable.  Before this
module each reader called ``int()``/``float()`` bare, and a typo like
``ERMI_BATCH_MAX=64k`` surfaced as an anonymous ``ValueError: invalid
literal for int()`` from deep inside a stub constructor (or, for
transports built lazily, mid-call), with nothing pointing at the
environment as the culprit.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int, minimum: int = 1) -> int:
    """``int(os.environ[name])`` clamped to ``minimum``, or ``default``.

    Raises a :class:`ValueError` that names the variable when the value
    is set but not an integer.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return max(minimum, value)


_SIZE_SUFFIXES = {
    "k": 1024, "kb": 1024, "kib": 1024,
    "m": 1024 ** 2, "mb": 1024 ** 2, "mib": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1024 ** 3, "gib": 1024 ** 3,
}


def env_bytes(name: str, default: int, minimum: int = 0) -> int:
    """A byte-size knob: plain integer or ``k``/``m``/``g`` suffixed.

    ``ERMI_CPU_SHM_MIN=256k`` reads better than ``=262144``; the binary
    suffixes (``kib``/``mib``/``gib`` and their short forms) all mean
    powers of 1024.  Same failure contract as :func:`env_int`: a value
    that parses under neither form raises a :class:`ValueError` naming
    the variable.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    text = raw.strip().lower()
    multiplier = 1
    # Longest suffix first, so "1mib" never parses as "1mi" + "b".
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if text.endswith(suffix) and len(text) > len(suffix):
            multiplier = _SIZE_SUFFIXES[suffix]
            text = text[: -len(suffix)].strip()
            break
    try:
        value = int(text)
    except ValueError:
        raise ValueError(
            f"{name} must be a byte size (integer, optionally "
            f"k/m/g-suffixed), got {raw!r}"
        ) from None
    return max(minimum, value * multiplier)


def env_float(name: str, default: float, minimum: float = 0.0) -> float:
    """``float(os.environ[name])`` clamped to ``minimum``, or ``default``.

    Raises a :class:`ValueError` that names the variable when the value
    is set but not a number (NaN included — a NaN window or linger
    would poison every comparison downstream).
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if value != value:  # NaN
        raise ValueError(f"{name} must be a number, got {raw!r}")
    return max(minimum, value)
