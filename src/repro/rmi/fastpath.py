"""Zero-copy marshalling fast path.

:mod:`repro.rmi.marshal` reproduces Java-RMI pass-by-value with a pickle
round-trip on both ends of every call.  That copy exists to stop
mutations leaking between caller and callee — but a payload that is
*provably immutable* cannot be mutated by anyone, so sharing the object
itself preserves pass-by-value semantics exactly while skipping four
pickle operations per call (marshal/unmarshal of the arguments, then of
the result).

Three marshalling modes, selectable at runtime:

- ``zerocopy`` (default) — provably-immutable payloads travel as
  :class:`FastPayload` wrappers holding the live object; everything else
  falls back to pickling.
- ``cache`` — payloads are always real bytes, but pickles of immutable
  payloads are memoized in an LRU keyed on the payload value (exact
  types included, so ``1``/``1.0``/``True`` never collide).  Repeated
  idempotent calls with equal arguments skip re-pickling.
- ``pickle`` — the seed behaviour, kept as the measured baseline for
  ``BENCH_rmi_hotpath.json``.

What counts as provably immutable: ``str``, ``int``, ``float``,
``bool``, ``bytes``, ``complex``, ``None``, and ``tuple``/``frozenset``
of immutables — *exact* types only, since a subclass may add mutable
state.  Frozen value types (e.g. :class:`~repro.rmi.remote.RemoteRef`)
opt in via :func:`register_immutable`; a RemoteRef in an argument list
thereby still passes by reference, as remote objects do in Java RMI.

Error behaviour is unchanged: the pickled fallback raises
:class:`MarshalError`/:class:`UnmarshalError` exactly as before, and
exceptions (mutable) always take the pickled path.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.rmi.marshal import marshal_value, unmarshal_value

_SCALAR_TYPES = frozenset(
    {str, int, float, bool, bytes, complex, type(None)}
)
_registered_immutable: set[type] = set()

MODES = ("zerocopy", "cache", "pickle")
_mode = os.environ.get("ERMI_FASTPATH", "zerocopy")
if _mode not in MODES:  # unknown value: fail safe to the seed behaviour
    _mode = "pickle"


def register_immutable(cls: type) -> type:
    """Declare a frozen value type safe to pass by reference.

    The caller vouches that instances are deeply immutable (all fields
    immutable, no mutable __dict__ use).  Returns ``cls`` so it can be
    used as a decorator.
    """
    _registered_immutable.add(cls)
    return cls


def set_mode(mode: str) -> str:
    """Switch marshalling mode; returns the previous mode."""
    global _mode
    if mode not in MODES:
        raise ValueError(f"unknown fastpath mode: {mode!r} (use {MODES})")
    previous = _mode
    _mode = mode
    return previous


def mode() -> str:
    return _mode


def is_immutable(value: Any) -> bool:
    """True when ``value`` is provably deeply immutable.

    Exact-type checks on purpose: a ``str`` subclass can carry mutable
    attributes, so only the builtin types themselves qualify.  Iterative
    (worklist) rather than recursive — this runs on every invocation, so
    per-element cost is kept to one type lookup.
    """
    scalars = _SCALAR_TYPES
    registered = _registered_immutable
    t = type(value)
    if t in scalars or t in registered:
        return True
    if t is not tuple and t is not frozenset:
        return False
    stack = [value]
    while stack:
        for item in stack.pop():
            ti = type(item)
            if ti in scalars or ti in registered:
                continue
            if ti is tuple or ti is frozenset:
                stack.append(item)
                continue
            return False
    return True


class FastPayload:
    """An immutable payload passed by reference (zero-copy).

    Wrapping (rather than passing the raw object) keeps the wire
    contract unambiguous: transports and skeletons can tell a fast-path
    payload from pickled ``bytes`` without guessing.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"FastPayload({self.value!r})"


# Wire payloads are pickled bytes or a zero-copy wrapper.
Payload = "bytes | FastPayload"


def is_zero_copy(payload: Any) -> bool:
    """True when a wire payload rides the zero-copy fast path.

    The request batcher (and its tests) use this to assert passthrough:
    entries coalesced into a batch must carry the very payload object
    the stub marshalled — batching never re-wraps, re-pickles, or copies
    a :class:`FastPayload`.
    """
    return type(payload) is FastPayload


class MarshalCache:
    """LRU of pickled bytes for immutable payloads.

    Keys embed the exact type of every component, so values that compare
    equal across types (``1 == 1.0 == True``) occupy distinct entries
    and unmarshal to the type that was marshalled.  Only immutable
    payloads are cached — their bytes can never go stale.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Any, bytes] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def cache_key(value: Any) -> Any:
        """A hashable, type-exact key for an immutable value (or None
        when the value is not provably immutable / not cacheable)."""
        t = type(value)
        if t in _SCALAR_TYPES:
            return (t, value)
        if t is tuple or t is frozenset:
            parts = []
            for item in value:
                key = MarshalCache.cache_key(item)
                if key is None:
                    return None
                parts.append(key)
            return (t, tuple(parts))
        if t in _registered_immutable:
            try:
                hash(value)
            except TypeError:
                return None
            return (t, value)
        return None

    def dumps(self, value: Any) -> bytes:
        """Pickle ``value``, memoizing when it is provably immutable."""
        key = self.cache_key(value)
        if key is None:
            return marshal_value(value)
        return self._memoized(("value", key), lambda: marshal_value(value))

    def dumps_call(self, args: tuple) -> bytes:
        """Pickle an empty-kwargs invocation payload ``(args, {})``,
        memoized on the (immutable) args alone — the kwargs dict never
        reaches the key, and each unpickle yields a fresh dict."""
        key = self.cache_key(args)
        if key is None:
            return marshal_value((args, {}))
        return self._memoized(
            ("call", key), lambda: marshal_value((args, {}))
        )

    def _memoized(self, key: Any, produce: Callable[[], bytes]) -> bytes:
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return data
        data = produce()
        with self._lock:
            self.misses += 1
            self._entries[key] = data
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return data

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


_cache = MarshalCache()


def marshal_cache() -> MarshalCache:
    """The process-wide marshal cache (for stats and tests)."""
    return _cache


def _call_is_fast(args: tuple, kwargs: dict) -> bool:
    # The args tuple is shared as-is (immutable elements make that safe);
    # kwargs values must be immutable too — the dict itself is copied on
    # the receiving side before the callee sees it.  Inlined scan over
    # the top level: the overwhelmingly common all-scalar argument list
    # must not pay a recursive call per element.
    scalars = _SCALAR_TYPES
    registered = _registered_immutable
    for item in args:
        t = type(item)
        if t in scalars or t in registered:
            continue
        if (t is tuple or t is frozenset) and is_immutable(item):
            continue
        return False
    if kwargs:
        for item in kwargs.values():
            t = type(item)
            if t in scalars or t in registered:
                continue
            if (t is tuple or t is frozenset) and is_immutable(item):
                continue
            return False
    return True


def marshal_call(args: tuple, kwargs: dict) -> Any:
    """Marshal an invocation's ``(args, kwargs)`` for the wire."""
    if _mode == "zerocopy" and _call_is_fast(args, kwargs):
        return FastPayload((args, kwargs))
    if _mode == "cache" and not kwargs:
        return _cache.dumps_call(args)
    return marshal_value((args, kwargs))


def unmarshal_call(payload: Any) -> tuple[tuple, dict]:
    """Recover ``(args, kwargs)`` on the server side."""
    if type(payload) is FastPayload:
        args, kwargs = payload.value
        # Fresh dict per delivery: a redirected/retried request must not
        # let one callee's **kwargs view alias another's.
        return args, dict(kwargs)
    return unmarshal_value(payload)


def marshal_result(value: Any) -> Any:
    """Marshal a return value (or exception) for the reply."""
    if _mode == "zerocopy" and is_immutable(value):
        return FastPayload(value)
    if _mode == "cache":
        return _cache.dumps(value)
    return marshal_value(value)


def marshal_error(exc: BaseException) -> Any:
    """Marshal an exception for an ``error`` reply, never failing.

    An application exception that is itself unpicklable (it captured a
    lock, a socket, a thread) must not escape the skeleton as a raw
    :class:`MarshalError` — that would turn an application failure into
    what looks like a transport failure and feed the client's retry
    loop a call that will fail identically everywhere.  Fall back to a
    picklable :class:`RemoteError` describing the original.
    """
    from repro.errors import MarshalError, RemoteError

    try:
        return marshal_result(exc)
    except MarshalError:
        fallback = RemoteError(
            f"remote raised unmarshallable {type(exc).__name__}: {exc}"
        )
        return marshal_result(fallback)


def unmarshal_result(payload: Any) -> Any:
    """Recover the return value on the client side."""
    if type(payload) is FastPayload:
        return payload.value
    return unmarshal_value(payload)


# ----------------------------------------------------------------------
# protocol-5 out-of-band buffers (the cross-process zero-copy path)
# ----------------------------------------------------------------------
#
# pickle protocol 5 only emits *PickleBuffer* objects out-of-band — a
# plain ``bytes``/``bytearray`` still serializes in-band even when a
# ``buffer_callback`` is supplied.  :func:`dumps_oob` therefore
# *promotes* large byte payloads to PickleBuffer wrappers first (a
# shallow walk over the common container shapes), so their storage is
# handed to the caller as raw buffer views instead of being copied into
# the pickle body.  :mod:`repro.rmi.cpu` packs those views into one
# shared-memory segment per message; the receiving process maps the
# segment and feeds slices back to :func:`loads_oob`.
#
# Semantics are preserved either way: promotion wraps the payload in
# :class:`_OobBuffer`, whose reconstructor (``bytes``/``bytearray``)
# copies out of whatever buffer the unpickler is handed — a bare
# PickleBuffer would reconstruct as a *memoryview over the supplied
# buffer*, pinning the shared-memory segment for the value's lifetime
# and leaking a view of someone else's storage into the handler.  The
# one copy-out restores pass-by-value exactly, and pickling a promoted
# payload *without* a buffer callback falls back to in-band data with
# the same reconstruction.

# Containers are walked at most this deep when hunting for promotable
# byte payloads; anything deeper rides in-band (correct, just copied).
_OOB_WALK_DEPTH = 3


class _OobBuffer:
    """A byte payload marked for out-of-band transfer.

    Reduces to ``factory(<buffer>)``: under a ``buffer_callback`` the
    inner :class:`pickle.PickleBuffer` travels out-of-band and the
    factory copies the receiver-side view into an owned ``bytes`` /
    ``bytearray``; without one, pickle inlines the data and the factory
    is a cheap no-op copy.  Either way the caller may release the
    backing buffer the moment ``loads`` returns.
    """

    __slots__ = ("buffer", "factory")

    def __init__(self, data: Any, factory: type) -> None:
        import pickle

        self.buffer = pickle.PickleBuffer(data)
        self.factory = factory

    def __reduce_ex__(self, protocol: int) -> Any:
        return (self.factory, (self.buffer,))


def _promote_buffers(value: Any, min_bytes: int, depth: int) -> Any:
    """Rebuild ``value`` with large byte payloads wrapped for out-of-band
    transfer; returns ``value`` itself when nothing qualified."""
    t = type(value)
    if t is bytes or t is bytearray:
        if len(value) >= min_bytes:
            return _OobBuffer(value, t)
        return value
    if depth <= 0:
        return value
    if t is tuple or t is list:
        promoted = [
            _promote_buffers(item, min_bytes, depth - 1) for item in value
        ]
        if all(new is old for new, old in zip(promoted, value)):
            return value
        return t(promoted)
    if t is dict:
        promoted_dict = {
            key: _promote_buffers(item, min_bytes, depth - 1)
            for key, item in value.items()
        }
        if all(
            promoted_dict[key] is item for key, item in value.items()
        ):
            return value
        return promoted_dict
    return value


def dumps_oob(value: Any, min_bytes: int) -> "tuple[bytes, list]":
    """Pickle ``value`` with large byte payloads split out-of-band.

    Returns ``(body, buffers)`` where ``buffers`` is the list of
    :class:`pickle.PickleBuffer` views (in stream order) that
    :func:`loads_oob` must be handed back.  ``bytes``/``bytearray``
    payloads of at least ``min_bytes`` are promoted; everything else
    rides in the body.  Raises :class:`MarshalError` like
    :func:`~repro.rmi.marshal.marshal_value`.
    """
    import pickle

    from repro.errors import MarshalError

    buffers: list = []
    try:
        body = pickle.dumps(
            _promote_buffers(value, min_bytes, _OOB_WALK_DEPTH),
            protocol=5,
            buffer_callback=buffers.append,
        )
    except Exception as exc:
        raise MarshalError(
            f"cannot marshal {type(value).__name__}: {exc}"
        ) from exc
    return body, buffers


def loads_oob(body: bytes, buffers: "list | None") -> Any:
    """Inverse of :func:`dumps_oob`; ``buffers`` may hold any
    buffer-likes (bytes, memoryviews over shared memory, ...)."""
    import pickle

    from repro.errors import UnmarshalError

    try:
        return pickle.loads(body, buffers=buffers or ())
    except Exception as exc:
        raise UnmarshalError(f"cannot unmarshal payload: {exc}") from exc
