"""Adaptive client-side request batching (the stub's coalescing layer).

Every call used to be one wire message.  The batcher sits between the
stub's retry loop and the transport and coalesces concurrent calls bound
for the *same endpoint* into one :class:`BatchRequest`, amortizing
per-message overhead (fault-hook consultation, message accounting,
executor submission) across many logical invocations — the JCloudScale/
Swift observation that elastic-RMI cost is dominated by per-message
setup, not by payload bytes.

Three dispatch disciplines, chosen by the transport's capabilities:

- **combiner** (live, :class:`ThreadedTransport`) — an arriving caller
  enqueues its entry and, if fewer than ``inflight_limit`` *senders*
  are active for the endpoint, becomes one: it loops taking batches of
  up to ``max_batch`` entries off the queue and flying them, retiring
  only once the queue is empty.  Everyone else parks on their own
  future alone — no shared condition, so a batch completion wakes
  exactly the callers it resolved.  The sender cap is the bounded
  in-flight window: backpressure, and the mechanism that grows batches
  (while every sender slot is busy, arrivals accumulate and the next
  take sweeps them all).  A lone caller elects itself, flies a
  singleton, finds the queue empty and retires — one lock handoff over
  the unbatched path.
- **deferred** (deterministic, :class:`DirectTransport`) — nothing runs
  on other threads.  ``submit`` queues the entry and returns a future
  whose *wait hook* flushes the queue: the batch is sent in the waiting
  thread the moment someone calls ``result()`` (or the queue reaches
  ``max_batch``, or the stub flushes on drain).  Single-threaded and
  reproducible, which keeps the obs determinism gate honest.
- **loop drain** (asynchronous, :class:`~repro.rmi.aio.AsyncioTransport`)
  — nobody's thread becomes a sender.  Enqueues schedule one deduped
  drain sweep *on the transport's event loop*; the sweep takes batches
  off the queue up to the in-flight window (``flying`` tracks wire
  batches, completions re-kick while entries remain) and submits them
  via the transport's callback API.  Entries settle on the loop, so a
  full pipeline — submit window, coalesce, fly, complete — runs without
  parking a single thread.

Per-call semantics are preserved exactly: each entry's future resolves
to that entry's own :class:`Response` (result / error / redirect /
drained), which the stub interprets just as it would an unbatched reply.
A whole-batch transport failure (an injected drop, a dead endpoint, a
batch timeout) fails every entry's future with the same exception, so
every logical call re-enters its own retry loop independently.  An
``unresolved`` entry (object not exported at the endpoint) is converted
here to the :class:`ConnectError` the unbatched path would have raised.

Entry payloads — pickled bytes or zero-copy ``FastPayload`` — ride the
batch exactly as marshalled; the batcher never touches them.

Configuration (all read once, at stub construction):

- ``ERMI_BATCH_MAX`` — max entries per batch; ``1`` (default) disables
  batching entirely (stubs skip the batcher, zero new branches hot).
- ``ERMI_BATCH_LINGER_MS`` — how long an elected sender waits for the
  queue to fill before flying a partial batch; ``0`` (default) never
  waits.
- ``ERMI_BATCH_INFLIGHT`` — in-flight batch window per endpoint
  (default 2: one on the wire, one forming).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConnectError, RemoteError
from repro.rmi.envcfg import env_float, env_int
from repro.rmi.future import RmiFuture
from repro.rmi.transport import BatchRequest, Request, Response, Transport

DEFAULT_INFLIGHT = 2

# A completer owns finishing one entry's future: called by the sender
# thread with exactly one of (response, error) non-None, it must call
# set_result/set_exception itself.  Stubs use completers to interpret
# the raw Response (unmarshal, follow redirects, feed the retry loop)
# without a second chained future per call.
Completer = Callable[
    [RmiFuture, "Response | None", "BaseException | None"], None
]

# One queued logical call: its wire request, the future the caller
# holds, and the optional completer that finishes it.
_Entry = tuple[Request, RmiFuture, "Completer | None"]


def batch_max_from_env() -> int:
    return env_int("ERMI_BATCH_MAX", 1)


def batch_linger_from_env() -> float:
    """Linger in *seconds* (the env var is milliseconds)."""
    return env_float("ERMI_BATCH_LINGER_MS", 0.0) / 1e3


def batch_inflight_from_env() -> int:
    return env_int("ERMI_BATCH_INFLIGHT", DEFAULT_INFLIGHT)


@dataclass
class BatcherStats:
    """Counters a batcher accumulates (cheap: touched once per *batch*)."""

    batches: int = 0
    entries: int = 0
    inflight_hwm: int = 0

    def coalesce_ratio(self) -> float:
        """Mean logical calls per wire message; 1.0 when nothing coalesced."""
        return 1.0 if self.batches == 0 else self.entries / self.batches


class _EndpointQueue:
    """Pending entries + active senders for one endpoint.

    ``senders`` counts the caller threads currently draining this queue
    (each has at most one batch on the wire, so it is also the in-flight
    batch window).  Invariant, maintained under ``cond``: a pending
    entry implies at least one active sender — an enqueuer that sees a
    free sender slot takes it, and a sender only retires after finding
    the queue empty under the same lock.

    The loop drain discipline uses ``scheduled`` (a sweep is queued on
    the event loop; dedups kicks) and ``flying`` (wire batches in
    flight; the loop-side in-flight window) instead of ``senders``.
    """

    __slots__ = ("cond", "pending", "senders", "scheduled", "flying")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.pending: list[_Entry] = []
        self.senders = 0
        self.scheduled = False
        self.flying = 0


class RequestBatcher:
    """Coalesces same-endpoint invocations into batch wire messages."""

    def __init__(
        self,
        transport: Transport,
        max_batch: int | None = None,
        linger: float | None = None,
        inflight_limit: int | None = None,
        caller: str = "client",
        obs: Any = None,
    ) -> None:
        self._transport = transport
        self._max_batch = batch_max_from_env() if max_batch is None else max_batch
        self._linger = batch_linger_from_env() if linger is None else linger
        self._inflight_limit = (
            batch_inflight_from_env() if inflight_limit is None
            else max(1, inflight_limit)
        )
        self._caller = caller
        self._obs = obs
        # Asynchronous transports drain on their event loop; callers
        # never become senders and never park while a batch flies.
        self._loop_native = bool(getattr(transport, "asynchronous", False))
        self.stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._queues: dict[str, _EndpointQueue] = {}
        self._admin_lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._max_batch > 1

    # -- entry points ------------------------------------------------------

    def dispatch(self, endpoint_id: str, request: Request) -> Response:
        """Send one call through the batcher and block for its reply.

        This is the drop-in replacement for ``transport.invoke`` on the
        stub's synchronous path; raises whatever the wire raised.
        """
        if self._max_batch <= 1:
            return self._transport.invoke(endpoint_id, request)
        if self._loop_native:
            # The loop drains; this thread only waits (guarded: waiting
            # *on* the loop thread would deadlock and raises instead).
            future = self._enqueue(endpoint_id, request)
            future.bind_wait_guard(self._transport.wait_guard)
            self._kick_loop(endpoint_id)
            return future.result()
        if not self._transport.concurrent:
            # Deterministic transport: a sync call flushes whatever
            # deferred entries are already queued for this endpoint,
            # pipelined together with its own entry — in this thread.
            future = self._enqueue(endpoint_id, request)
            self.flush(endpoint_id)
            return future.result()
        return self._combine(endpoint_id, request)

    def submit(
        self,
        endpoint_id: str,
        request: Request,
        completer: Completer | None = None,
    ) -> RmiFuture:
        """Deferred enqueue (the async path).

        Without a ``completer`` the returned future resolves to this
        entry's raw :class:`Response`.  With one, the sender thread
        calls ``completer(future, response, error)`` instead — exactly
        one of ``response``/``error`` is non-None — and the completer
        owns completing the future (stubs use this to interpret the
        response in place, so one future carries the call end to end).

        The entry is sent when the queue reaches ``max_batch``, when the
        owning stub flushes (drain, membership change), or — via the
        bound wait hook — the moment anyone waits on the future.  The
        submitting thread never parks, so a caller can pipeline a
        window of submissions and gather once; on concurrent transports
        active combiner senders may also sweep deferred entries into
        their batches.
        """
        future = self._enqueue(endpoint_id, request, completer)
        future.bind_wait_hook(lambda: self.pump(endpoint_id))
        if self._loop_native:
            future.bind_wait_guard(self._transport.wait_guard)
            q = self._queue(endpoint_id)
            with q.cond:
                full = len(q.pending) >= self._max_batch
            if full:
                self._kick_loop(endpoint_id)
        elif self._transport.concurrent:
            # Waiters *kick* rather than force-flush: at most
            # ``inflight_limit`` senders fly concurrently, and each
            # sweeps every gatherer's entries into shared batches.
            self.kick(endpoint_id, only_if_full=True)
        else:
            q = self._queue(endpoint_id)
            with q.cond:
                full = len(q.pending) >= self._max_batch
            if full:
                self.flush(endpoint_id)
        return future

    def pump(self, endpoint_id: str) -> None:
        """What a waiter does to get its entry moving: a windowed
        :meth:`kick` on concurrent transports, a forced :meth:`flush`
        on deterministic ones (nobody else will send).  This is the
        wait hook stubs bind on deferred futures.
        """
        if self._loop_native:
            # A sweep moves what the window allows now; completions
            # re-kick until the waiter's entry has flown.
            self._kick_loop(endpoint_id)
        elif self._transport.concurrent:
            self.kick(endpoint_id)
        else:
            self.flush(endpoint_id)

    def kick(self, endpoint_id: str, only_if_full: bool = False) -> None:
        """Elect this thread as a sender if the window has room.

        Unlike :meth:`flush` this respects the in-flight window: when
        every sender slot is busy the caller returns immediately and
        relies on the active senders' drain loops, which by invariant
        sweep the queue before retiring.
        """
        q = self._queues.get(endpoint_id)
        if q is None:
            return
        with q.cond:
            if not q.pending or q.senders >= self._inflight_limit:
                return
            if only_if_full and len(q.pending) < self._max_batch:
                return
            q.senders += 1
        self._drain(endpoint_id, q, forced=False)

    def flush(self, endpoint_id: str | None = None) -> None:
        """Send every pending entry now (drain protocol / wait hooks).

        Forced: ignores the in-flight window so a draining stub can
        never strand queued calls behind backpressure.
        """
        if endpoint_id is None:
            with self._admin_lock:
                queued = list(self._queues)
            for eid in queued:
                self.flush(eid)
            return
        q = self._queues.get(endpoint_id)
        if q is None:
            return
        if self._loop_native:
            self._kick_loop(endpoint_id, forced=True)
            return
        with q.cond:
            if not q.pending:
                return
            q.senders += 1  # forced: may exceed the window
        self._drain(endpoint_id, q, forced=True)

    def pending_count(self, endpoint_id: str | None = None) -> int:
        with self._admin_lock:
            queues = (
                list(self._queues.values()) if endpoint_id is None
                else [q for eid, q in self._queues.items() if eid == endpoint_id]
            )
        total = 0
        for q in queues:
            with q.cond:
                total += len(q.pending)
        return total

    # -- combiner (live mode) ----------------------------------------------

    def _combine(self, endpoint_id: str, request: Request) -> Response:
        q = self._queue(endpoint_id)
        future = RmiFuture()
        serve = False
        with q.cond:
            q.pending.append((request, future, None))
            if q.senders < self._inflight_limit:
                q.senders += 1
                serve = True
            elif self._linger > 0:
                q.cond.notify()  # a lingering sender is holding the door
        if serve:
            self._drain(endpoint_id, q, forced=False)
        return future.result()

    def _drain(self, endpoint_id: str, q: _EndpointQueue, forced: bool) -> None:
        """Sender loop: fly batches until the queue is empty, then retire.

        The empty-check and the sender-slot release are atomic (under
        ``q.cond``), so an enqueuer can never observe an active sender
        that will not see its entry — pending work always has a sender.
        A sender's own future typically resolves in its first batch; it
        keeps serving whatever accumulated behind it, which is exactly
        the back-to-back pipelining that amortizes per-message cost.
        """
        retired = False
        try:
            while True:
                with q.cond:
                    if (
                        not forced
                        and self._linger > 0
                        and q.pending
                        and len(q.pending) < self._max_batch
                    ):
                        # Hold the door for concurrent enqueuers
                        # (they notify when a sender might be lingering).
                        q.cond.wait(self._linger)
                    batch = q.pending[: self._max_batch]
                    if not batch:
                        q.senders -= 1
                        q.cond.notify_all()
                        retired = True
                        return
                    del q.pending[: len(batch)]
                    inflight = q.senders
                self._deliver(endpoint_id, batch, inflight)
        finally:
            if not retired:  # exception unwound past the loop
                with q.cond:
                    q.senders -= 1
                    q.cond.notify_all()

    # -- loop drain (asynchronous mode) ------------------------------------

    def _kick_loop(self, endpoint_id: str, forced: bool = False) -> None:
        """Schedule one drain sweep on the transport's event loop.

        Deduped via ``q.scheduled``: a burst of submitters costs one
        loop callback, and that sweep takes everything the in-flight
        window allows.  ``forced`` sweeps past the window (the drain
        protocol's flush must never strand entries behind backpressure)
        and bypasses the dedup — a plain sweep may already be queued,
        but only a forced one is guaranteed to move everything.
        """
        q = self._queues.get(endpoint_id)
        if q is None:
            return
        with q.cond:
            if not q.pending:
                return
            if q.scheduled and not forced:
                return
            q.scheduled = True
        self._transport.schedule(
            lambda: self._loop_drain(endpoint_id, q, forced)
        )

    def _loop_drain(
        self, endpoint_id: str, q: _EndpointQueue, forced: bool
    ) -> None:
        """One sweep, on the event loop: fly batches up to the window.

        Unlike a combiner sender this never parks — it takes what the
        window allows, submits via the transport's callback API, and
        returns to the loop.  Completions re-kick while entries remain,
        so pending work always has a sweep coming.
        """
        batches: list[tuple[list[_Entry], int]] = []
        with q.cond:
            q.scheduled = False
            while q.pending and (forced or q.flying < self._inflight_limit):
                batch = q.pending[: self._max_batch]
                del q.pending[: len(batch)]
                q.flying += 1
                batches.append((batch, q.flying))
        for batch, inflight in batches:
            self._deliver_loop(endpoint_id, q, batch, inflight)

    def _deliver_loop(
        self,
        endpoint_id: str,
        q: _EndpointQueue,
        batch: list[_Entry],
        inflight: int,
    ) -> None:
        """Fly one batch via the callback API; settle on the loop."""
        self._note_batch(endpoint_id, len(batch), inflight)

        def on_done(result, error: BaseException | None) -> None:
            # Runs on the event loop.  Completers must not block here;
            # stubs offload anything that re-dispatches synchronously.
            with q.cond:
                q.flying -= 1
                repend = bool(q.pending)
            if error is not None:
                self._settle(endpoint_id, batch, None, error)
            elif len(batch) == 1:
                self._settle(endpoint_id, batch, (result,), None)
            else:
                self._settle(endpoint_id, batch, result.entries, None)
            if repend:
                self._kick_loop(endpoint_id)

        if len(batch) == 1:
            # A singleton is wire-identical to the unbatched path.
            self._transport.submit(endpoint_id, batch[0][0], on_done)
        else:
            requests = tuple(request for request, _, _ in batch)
            self._transport.submit_batch(
                endpoint_id,
                BatchRequest(entries=requests, caller=self._caller),
                on_done,
            )

    # -- the wire ----------------------------------------------------------

    def _deliver(
        self,
        endpoint_id: str,
        batch: list[_Entry],
        inflight: int,
    ) -> None:
        self._note_batch(endpoint_id, len(batch), inflight)
        try:
            if len(batch) == 1:
                # A singleton is wire-identical to the unbatched path.
                responses: tuple[Response, ...] = (
                    self._transport.invoke(endpoint_id, batch[0][0]),
                )
            else:
                requests = tuple(request for request, _, _ in batch)
                responses = self._transport.invoke_batch(
                    endpoint_id,
                    BatchRequest(entries=requests, caller=self._caller),
                ).entries
        except BaseException as exc:  # noqa: BLE001 - relayed per entry
            self._settle(endpoint_id, batch, None, exc)
            return
        self._settle(endpoint_id, batch, responses, None)

    def _settle(
        self,
        endpoint_id: str,
        batch: list[_Entry],
        responses: "tuple[Response, ...] | None",
        error: BaseException | None,
    ) -> None:
        """Complete every entry of one delivered (or failed) batch.

        Per-call semantics live here, shared by the sender-thread and
        loop-drain paths: a whole-batch failure (drop, dead endpoint,
        timeout) fails every entry identically so each logical call
        re-enters its own retry loop; a shape mismatch is a wire-protocol
        error for all; an ``unresolved`` entry becomes the ConnectError
        the unbatched resolve path would have raised.
        """
        if error is not None:
            for _, future, completer in batch:
                self._resolve(future, completer, None, error)
            return
        if len(responses) != len(batch):
            mismatch = RemoteError(
                f"batch reply shape mismatch: {len(batch)} entries, "
                f"{len(responses)} responses"
            )
            for _, future, completer in batch:
                self._resolve(future, completer, None, mismatch)
            return
        for (request, future, completer), response in zip(batch, responses):
            if response.kind == "unresolved":
                missing = ConnectError(
                    f"no object {request.object_id!r} at endpoint "
                    f"{self._endpoint_name(endpoint_id)}"
                )
                self._resolve(future, completer, None, missing)
            else:
                self._resolve(future, completer, response, None)

    @staticmethod
    def _resolve(
        future: RmiFuture,
        completer: Completer | None,
        response: Response | None,
        error: BaseException | None,
    ) -> None:
        """Complete one entry, delegating to its completer when bound.

        Completers own the future and must not raise; a defensive catch
        keeps one bad completion from failing the whole batch's
        remaining entries.
        """
        try:
            if completer is not None:
                completer(future, response, error)
            elif error is not None:
                future.set_exception(error)
            else:
                future.set_result(response)
        except BaseException as exc:  # noqa: BLE001 - last-resort relay
            if not future.done():
                future.set_exception(exc)

    # -- plumbing ----------------------------------------------------------

    def _queue(self, endpoint_id: str) -> _EndpointQueue:
        q = self._queues.get(endpoint_id)
        if q is not None:
            return q
        with self._admin_lock:
            q = self._queues.get(endpoint_id)
            if q is None:
                q = _EndpointQueue()
                # Copy-on-write, matching the transports' read-mostly maps.
                queues = dict(self._queues)
                queues[endpoint_id] = q
                self._queues = queues
            return q

    def _enqueue(
        self,
        endpoint_id: str,
        request: Request,
        completer: Completer | None = None,
    ) -> RmiFuture:
        q = self._queue(endpoint_id)
        future = RmiFuture()
        with q.cond:
            q.pending.append((request, future, completer))
            if self._linger > 0:
                q.cond.notify()  # a lingering sender may be waiting for us
        return future

    def _endpoint_name(self, endpoint_id: str) -> str:
        try:
            return self._transport.endpoint(endpoint_id).name
        except ConnectError:
            return endpoint_id

    def _note_batch(self, endpoint_id: str, size: int, inflight: int) -> None:
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.entries += size
            hwm = self.stats.inflight_hwm = max(
                self.stats.inflight_hwm, inflight
            )
        obs = self._obs
        if obs is None:
            return
        registry = obs.registry
        registry.counter("rmi.client.batches").inc()
        registry.counter("rmi.client.batched_entries").inc(size)
        registry.histogram("rmi.client.batch_size").observe(float(size))
        registry.gauge("rmi.client.batch_inflight").set(float(inflight))
        registry.gauge("rmi.client.batch_inflight_hwm").set(float(hwm))
        obs.tracer.emit(
            "batcher", "batch",
            endpoint=self._endpoint_name(endpoint_id),
            size=size, inflight=inflight, caller=self._caller,
        )
