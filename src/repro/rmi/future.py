"""Client-side invocation futures for the asynchronous RMI surface.

``stub.invoke_async(...)`` returns an :class:`RmiFuture` — the handle a
caller polls, waits on, or chains callbacks to while the invocation is
in flight.  The class is deliberately smaller than
:class:`concurrent.futures.Future`: there is no cancellation (a remote
call that has left the stub cannot be recalled) and no run/notify state
machine, just pending → done with either a value or an exception.

Two execution styles feed an RmiFuture:

- **threaded** — live runtimes complete the future from whatever thread
  carried the invocation (an async-invoker worker or a batch sender);
- **deferred** — deterministic runtimes queue the invocation in the
  request batcher and complete the future *when someone waits on it*
  (or the batch fills, or the stub is flushed).  The wait hook installed
  via :meth:`bind_wait_hook` is what lets :meth:`result` force the flush
  instead of deadlocking on a call that was never sent.

A shared :func:`async_executor` carries ``invoke_async`` bodies in live
mode.  It is created lazily, sized for stub fan-out rather than CPU
count, and shared process-wide so a thousand stubs do not spawn a
thousand pools.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable

from repro.errors import RemoteError

_UNSET = object()


class InvocationTimeout(RemoteError):
    """Waiting on an :class:`RmiFuture` exceeded the caller's timeout.

    The invocation itself may still complete later — only the *wait*
    gave up, mirroring ``concurrent.futures.TimeoutError`` semantics
    while staying inside the :class:`~repro.errors.RemoteError` family
    RMI callers already handle.
    """


class RmiFuture:
    """The result of one asynchronous remote invocation.

    Thread-safe: any thread may wait while another completes.  Callbacks
    added with :meth:`add_done_callback` run exactly once, in the
    completing thread (or immediately in the caller's thread when the
    future is already done).

    Deliberately allocation-light: the pipelined batching path creates
    one future per logical call, so construction is a plain lock (a
    C-level primitive) and the park/wake machinery — a
    :class:`threading.Event` — is allocated lazily, only by a waiter
    that actually has to block.  A gathered window of pipelined calls
    typically parks on its *first* future at most; the rest are already
    done and never pay for an event.
    """

    __slots__ = (
        "_lock", "_event", "_done", "_value", "_error",
        "_callbacks", "_wait_hook", "_wait_guard",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event: threading.Event | None = None
        self._done = False
        self._value: Any = _UNSET
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["RmiFuture"], None]] | None = None
        self._wait_hook: Callable[[], None] | None = None
        self._wait_guard: Callable[[], None] | None = None

    # -- completion (producer side) ---------------------------------------

    def set_result(self, value: Any) -> None:
        self._finish(value=value)

    def set_exception(self, error: BaseException) -> None:
        self._finish(error=error)

    def _finish(
        self, value: Any = _UNSET, error: BaseException | None = None
    ) -> None:
        with self._lock:
            if self._done:
                raise RuntimeError("RmiFuture already completed")
            self._value = value
            self._error = error
            self._done = True
            event = self._event
            callbacks = self._callbacks
            self._callbacks = None
        if event is not None:
            event.set()
        if callbacks:
            for callback in callbacks:
                callback(self)

    # -- deferred-dispatch plumbing ---------------------------------------

    def bind_wait_hook(self, hook: Callable[[], None]) -> None:
        """Install the callable a blocking wait runs first.

        The deferred batcher binds a flush here, so ``result()`` on a
        queued-but-unsent invocation dispatches the pending batch
        instead of waiting forever.
        """
        self._wait_hook = hook

    def _run_wait_hook(self) -> None:
        hook = self._wait_hook
        if hook is not None:
            self._wait_hook = None  # flush once; re-entry would recurse
            hook()

    def bind_wait_guard(self, guard: Callable[[], None]) -> None:
        """Install a check every blocking wait runs before parking.

        The asyncio transport binds its loop-thread guard here: a
        ``result()`` from the event-loop thread would deadlock (the
        completion it waits for runs on that very thread), so the guard
        raises instead.  Waits from any other thread are untouched, and
        an already-done future never consults the guard.
        """
        self._wait_guard = guard

    # -- consumption (caller side) ----------------------------------------

    def done(self) -> bool:
        return self._done

    def wait(self, timeout: float | None = None) -> bool:
        """Block until completed (or ``timeout``); True when done."""
        if self._done:
            return True
        guard = self._wait_guard
        if guard is not None:
            guard()
        self._run_wait_hook()
        if self._done:  # the hook's flush often completes us right here
            return True
        with self._lock:
            if self._done:
                return True
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        event.wait(timeout)
        return self._done

    def result(self, timeout: float | None = None) -> Any:
        """The invocation's return value; re-raises its exception."""
        if not self.wait(timeout):
            raise InvocationTimeout(
                f"invocation result not ready within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The invocation's exception, or None if it succeeded."""
        if not self.wait(timeout):
            raise InvocationTimeout(
                f"invocation outcome not ready within {timeout}s"
            )
        return self._error

    def add_done_callback(self, fn: Callable[["RmiFuture"], None]) -> None:
        with self._lock:
            if not self._done:
                if self._callbacks is None:
                    self._callbacks = [fn]
                else:
                    self._callbacks.append(fn)
                return
        fn(self)

    @classmethod
    def completed(cls, value: Any) -> "RmiFuture":
        """An already-successful future (the eager-execution path)."""
        future = cls()
        future.set_result(value)
        return future

    @classmethod
    def failed(cls, error: BaseException) -> "RmiFuture":
        """An already-failed future (the eager-execution path)."""
        future = cls()
        future.set_exception(error)
        return future


def gather(
    futures: Iterable[RmiFuture], timeout: float | None = None
) -> list[Any]:
    """Results of ``futures`` in order; raises the first failure."""
    return [future.result(timeout) for future in futures]


# ----------------------------------------------------------------------
# the shared async-invoker pool (live mode)
# ----------------------------------------------------------------------

_executor: ThreadPoolExecutor | None = None
_executor_lock = threading.Lock()
ASYNC_WORKERS = 32


def async_executor() -> ThreadPoolExecutor:
    """The process-wide pool that runs ``invoke_async`` bodies live.

    Sized for I/O-shaped work (invocations spend their life blocked on
    the transport), created on first use, shared by every stub.
    """
    global _executor
    if _executor is None:
        with _executor_lock:
            if _executor is None:
                _executor = ThreadPoolExecutor(
                    max_workers=ASYNC_WORKERS,
                    thread_name_prefix="ermi-async",
                )
    return _executor


def run_async(fn: Callable[[], Any]) -> RmiFuture:
    """Run ``fn`` on the shared pool, bridging into an RmiFuture."""
    future = RmiFuture()

    def body() -> None:
        try:
            result = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed, not hidden
            future.set_exception(exc)
        else:
            future.set_result(result)

    async_executor().submit(body)
    return future
