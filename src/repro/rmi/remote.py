"""Remote objects, references, skeletons, and stubs.

The shapes follow Java RMI, with the two extra powers ElasticRMI's
preprocessor compiles into them (paper sections 2.3, 4.3):

- a :class:`Skeleton` keeps per-method call statistics (rate and latency
  over a window — the raw material for ``getMethodCallStats``), can be put
  into *drain* mode (reject new calls with a retry hint while pending ones
  finish) and can host a *redirect table* the sentinel installs to shed a
  fraction of its load onto other members;
- a :class:`Stub` is a dynamic proxy that marshals, invokes through the
  transport, follows redirects, and surfaces remote failures as
  :class:`RemoteError` subclasses.

``Stub`` here is the *unicast* stub (one fixed target, like plain RMI);
the pool-aware elastic stub with client-side load balancing lives in
:mod:`repro.core.balancer` and composes this one.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.concurrency import ThreadStripes
from repro.errors import (
    ApplicationError,
    CpuWorkerLostError,
    MemberDrainedError,
    NoSuchObjectError,
)
from repro.rmi.fastpath import (
    marshal_call,
    marshal_error,
    marshal_result,
    register_immutable,
    unmarshal_call,
    unmarshal_result,
)
from repro.rmi.future import RmiFuture, async_executor, run_async
from repro.rmi.transport import Request, Response, Transport
from repro.sim.clock import Clock, WallClock

_object_ids = itertools.count(1)


class Remote:
    """Marker base for remotely invocable classes (java.rmi.Remote)."""


@dataclass(frozen=True)
class RemoteRef:
    """A serializable pointer to one exported object: endpoint + object id.

    This is what registries store and what passes by reference in
    arguments.  ``uid`` is the pool-member unique identifier ElasticRMI
    assigns monotonically (used for sentinel election); plain RMI objects
    leave it at 0.
    """

    endpoint_id: str
    object_id: str
    uid: int = 0

    def describe(self) -> str:
        return f"{self.object_id}@{self.endpoint_id}(uid={self.uid})"


# A RemoteRef is a frozen value object: the zero-copy fast path may pass
# it by reference, which is precisely RMI's semantics for remote objects.
register_immutable(RemoteRef)


@dataclass
class MethodStats:
    """Aggregate statistics for one remote method over a window."""

    calls: int = 0
    total_latency: float = 0.0
    errors: int = 0

    def latency(self) -> float:
        """Mean latency per call (seconds); 0 when idle."""
        return 0.0 if self.calls == 0 else self.total_latency / self.calls


class _StatsStripe:
    """One writer thread's private window of per-method statistics.

    The stripe lock exists for the *reader* (window rolls must take each
    stripe exactly once); on the record path it is uncontended by
    construction — no two writer threads ever share a stripe."""

    __slots__ = ("lock", "methods")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.methods: dict[str, MethodStats] = {}


class CallStats:
    """Per-method statistics with window reset (burst-interval semantics).

    Thread-striped (:class:`~repro.concurrency.ThreadStripes`): the old
    implementation took one global lock per recorded call, which made the
    skeleton's stats the residual contention point on the dispatch hot
    path once the transports were striped.  Now each dispatcher thread
    records into its own stripe; the stripe lock it takes is never
    contended by another writer, only — briefly — by a window roll.
    Snapshots merge the stripes, and because a roll claims each stripe's
    window under that stripe's lock, every recorded call lands in exactly
    one window: nothing lost, nothing double-counted.
    """

    def __init__(self) -> None:
        self._stripes: ThreadStripes[_StatsStripe] = ThreadStripes(_StatsStripe)

    def record(self, method: str, latency: float, error: bool = False) -> None:
        stripe = self._stripes.stripe()
        with stripe.lock:
            stats = stripe.methods.setdefault(method, MethodStats())
            stats.calls += 1
            stats.total_latency += latency
            if error:
                stats.errors += 1

    @staticmethod
    def _merge(
        into: dict[str, MethodStats], window: dict[str, MethodStats]
    ) -> None:
        for name, stats in window.items():
            agg = into.setdefault(name, MethodStats())
            agg.calls += stats.calls
            agg.total_latency += stats.total_latency
            agg.errors += stats.errors

    def snapshot_and_reset(self) -> dict[str, MethodStats]:
        """Return the window's stats and start a fresh window."""
        merged: dict[str, MethodStats] = {}
        for stripe in self._stripes.stripes():
            with stripe.lock:
                window = stripe.methods
                stripe.methods = {}
            self._merge(merged, window)
        return merged

    def snapshot(self) -> dict[str, MethodStats]:
        merged: dict[str, MethodStats] = {}
        for stripe in self._stripes.stripes():
            with stripe.lock:
                window = {
                    name: MethodStats(s.calls, s.total_latency, s.errors)
                    for name, s in stripe.methods.items()
                }
            self._merge(merged, window)
        return merged

    def total_calls(self) -> int:
        total = 0
        for stripe in self._stripes.stripes():
            with stripe.lock:
                total += sum(s.calls for s in stripe.methods.values())
        return total


def _declares_cpu_bound(cls: type) -> bool:
    """Does any method in the class's surface carry ``@cpu_bound``?"""
    for name in dir(cls):
        if getattr(getattr(cls, name, None), "__ermi_cpu_bound__", False):
            return True
    return False


class Skeleton:
    """Server-side dispatcher for one exported object."""

    def __init__(
        self,
        impl: Any,
        transport: Transport,
        endpoint_id: str,
        clock: Clock | None = None,
        object_id: str | None = None,
        uid: int = 0,
        obs: Any = None,
    ) -> None:
        self.impl = impl
        self.transport = transport
        self.endpoint_id = endpoint_id
        self.object_id = object_id or f"obj-{next(_object_ids)}"
        self.uid = uid
        self.clock = clock or WallClock()
        # Observability (repro.obs.Observability): None keeps dispatch
        # at one extra branch per call.
        self._obs = obs
        # Cpu-bound dispatch, resolved once: implementations without a
        # single @cpu_bound method leave this None (no pool is created,
        # dispatch pays one identity check), and transports that decline
        # to provide a pool — DirectTransport — keep cpu-bound methods
        # inline and deterministic.
        self._cpu = None
        if _declares_cpu_bound(type(impl)):
            cpu_factory = getattr(transport, "cpu_executor", None)
            if cpu_factory is not None:
                self._cpu = cpu_factory()
        self.stats = CallStats()
        self.draining = False
        self.pending = 0
        self._pending_lock = threading.Lock()
        self._drained = threading.Event()
        self._drained.set()  # no pending work yet
        # Redirect table installed by the sentinel: a callable deciding,
        # per call, whether to bounce it to another member.
        self.redirect_policy: Callable[[Request], RemoteRef | None] | None = None
        transport.endpoint(endpoint_id).export(
            self.object_id, self.handle, self.handle_async
        )

    def ref(self) -> RemoteRef:
        return RemoteRef(self.endpoint_id, self.object_id, self.uid)

    # -- lifecycle -----------------------------------------------------------

    def start_drain(self) -> None:
        """Stop accepting new calls; pending calls run to completion.
        This is step one of the paper's graceful removal protocol."""
        self.draining = True
        with self._pending_lock:
            if self.pending == 0:
                self._drained.set()

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until all pending invocations finished (live mode)."""
        return self._drained.wait(timeout)

    @property
    def is_drained(self) -> bool:
        return self.draining and self._drained.is_set()

    def unexport(self) -> None:
        self.transport.endpoint(self.endpoint_id).unexport(self.object_id)

    # -- observability ------------------------------------------------------

    def _observe(self, method: str, latency: float, error: bool) -> None:
        """Record one completed dispatch into the observability layer.

        Only reached when an Observability is attached: the event carries
        the active fastpath mode (so a trace shows *how* payloads moved)
        and the latency lands in the per-method server histogram.
        """
        from repro.rmi.fastpath import mode

        self._obs.tracer.emit(
            "skeleton", "invoke",
            object=self.object_id, method=method,
            latency=round(latency, 9), error=error, mode=mode(),
        )
        self._obs.registry.histogram(
            f"rmi.server.latency.{self.object_id}.{method}"
        ).observe(latency)
        if error:
            self._obs.registry.counter("rmi.server.errors").inc()

    # -- dispatch ---------------------------------------------------------------

    def _admission(self, request: Request) -> Response | None:
        """Drain/redirect gate, shared by both dispatch paths."""
        if self.draining:
            return Response(kind="drained")
        if self.redirect_policy is not None:
            target = self.redirect_policy(request)
            if target is not None and target != self.ref():
                return Response(kind="redirect", value=target)
        return None

    def _resolve_method(
        self, request: Request
    ) -> tuple[Any, Response | None]:
        """Resolve the invocable method, or the refusal Response.

        Elastic-interface enforcement (paper section 3.1): when the
        class declares its remote surface, only those methods (plus the
        framework's stub-bootstrap call) are invocable.  Refusals are
        recorded as zero-latency errored calls here, once, for both
        dispatch paths.
        """
        declared = getattr(type(self.impl), "__elastic_interface__", None)
        if (
            declared is not None
            and request.method not in declared
            and request.method != "ermi_member_identities"
        ):
            refused = NoSuchObjectError(
                f"{request.method!r} is not declared in the elastic "
                f"interface of {type(self.impl).__name__}"
            )
            self.stats.record(request.method, 0.0, error=True)
            if self._obs is not None:
                self._observe(request.method, 0.0, error=True)
            return None, Response(kind="error", payload=marshal_result(refused))
        method = getattr(self.impl, request.method, None)
        if method is None or not callable(method):
            missing = NoSuchObjectError(
                f"{type(self.impl).__name__} has no remote method "
                f"{request.method!r}"
            )
            self.stats.record(request.method, 0.0, error=True)
            if self._obs is not None:
                self._observe(request.method, 0.0, error=True)
            return None, Response(kind="error", payload=marshal_result(missing))
        return method, None

    def handle(self, request: Request) -> Response:
        refusal = self._admission(request)
        if refusal is not None:
            return refusal
        with self._pending_lock:
            self.pending += 1
            self._drained.clear()
        started = self.clock.now()
        try:
            method, refusal = self._resolve_method(request)
            if refusal is not None:
                return refusal
            args, kwargs = unmarshal_call(request.payload)
            try:
                if self._cpu is not None and getattr(
                    method, "__ermi_cpu_bound__", False
                ):
                    result = self._cpu.run_call(
                        self.impl, request.method, args, kwargs
                    )
                else:
                    result = method(*args, **kwargs)
                    if inspect.iscoroutine(result):
                        # Coroutine remote methods stay invocable on the
                        # sync transports: the dispatch thread owns no
                        # loop, so a private one drives the coroutine to
                        # completion.
                        result = asyncio.run(result)
            except CpuWorkerLostError:
                # Worker death is a transport-level failure, not an
                # application error: let it propagate past the error-
                # Response fold below so the client's retry loop sees a
                # ConnectError (one attempt charged, then retried
                # against the respawned worker).
                elapsed = self.clock.now() - started
                self.stats.record(request.method, elapsed, error=True)
                if self._obs is not None:
                    self._observe(request.method, elapsed, error=True)
                raise
            except Exception as exc:
                elapsed = self.clock.now() - started
                self.stats.record(request.method, elapsed, error=True)
                if self._obs is not None:
                    self._observe(request.method, elapsed, error=True)
                return Response(kind="error", payload=marshal_error(exc))
            elapsed = self.clock.now() - started
            self.stats.record(request.method, elapsed)
            if self._obs is not None:
                self._observe(request.method, elapsed, error=False)
            return Response(kind="result", payload=marshal_result(result))
        finally:
            with self._pending_lock:
                self.pending -= 1
                if self.pending == 0 and self.draining:
                    self._drained.set()

    async def handle_async(self, request: Request) -> Response:
        """Loop-native dispatch (the asyncio transport's path).

        Mirrors :meth:`handle` exactly — drain, redirect, pending
        accounting, statistics, observability — but awaits coroutine
        remote methods in place and offloads methods marked with
        :func:`repro.rmi.aio.blocking` to the loop's default executor.
        Plain unmarked methods run inline on the loop and must be
        CPU-light (the offload rules DESIGN.md documents).
        """
        refusal = self._admission(request)
        if refusal is not None:
            return refusal
        with self._pending_lock:
            self.pending += 1
            self._drained.clear()
        started = self.clock.now()
        try:
            method, refusal = self._resolve_method(request)
            if refusal is not None:
                return refusal
            args, kwargs = unmarshal_call(request.payload)
            try:
                if self._cpu is not None and getattr(
                    method, "__ermi_cpu_bound__", False
                ):
                    # Hand the call to a worker process and await its
                    # future without blocking the loop.
                    result = await asyncio.wrap_future(
                        self._cpu.submit_call(
                            self.impl, request.method, args, kwargs
                        )
                    )
                elif getattr(method, "__ermi_blocking__", False):
                    loop = asyncio.get_running_loop()
                    result = await loop.run_in_executor(
                        None, lambda: method(*args, **kwargs)
                    )
                else:
                    result = method(*args, **kwargs)
                    if inspect.iscoroutine(result):
                        result = await result
            except CpuWorkerLostError:
                # Same contract as the sync path: propagate as a
                # transport-level ConnectError for the retry machinery.
                elapsed = self.clock.now() - started
                self.stats.record(request.method, elapsed, error=True)
                if self._obs is not None:
                    self._observe(request.method, elapsed, error=True)
                raise
            except Exception as exc:
                elapsed = self.clock.now() - started
                self.stats.record(request.method, elapsed, error=True)
                if self._obs is not None:
                    self._observe(request.method, elapsed, error=True)
                return Response(kind="error", payload=marshal_error(exc))
            elapsed = self.clock.now() - started
            self.stats.record(request.method, elapsed)
            if self._obs is not None:
                self._observe(request.method, elapsed, error=False)
            return Response(kind="result", payload=marshal_result(result))
        finally:
            with self._pending_lock:
                self.pending -= 1
                if self.pending == 0 and self.draining:
                    self._drained.set()


class Stub:
    """Client-side proxy bound to one remote reference.

    Attribute access returns invokers: ``stub.put(k, v)`` marshals
    ``(k, v)``, ships a Request, and unmarshals the Response.  Redirects
    are followed (bounded); ``drained`` responses raise
    :class:`MemberDrainedError` for the elastic stub above to catch.
    """

    _MAX_REDIRECTS = 8

    def __init__(
        self,
        transport: Transport,
        ref: RemoteRef,
        caller: str = "client",
        batcher: Any = None,
    ):
        self._transport = transport
        self._ref = ref
        self._caller = caller
        # Optional repro.rmi.batching.RequestBatcher: when attached,
        # sends route through it and may coalesce with concurrent calls
        # to the same endpoint.  None keeps the path identical to seed.
        self._batcher = batcher
        # Asynchronous transports complete via loop callbacks — an
        # in-flight call costs a task, not a parked thread.
        self._loop_native = bool(getattr(transport, "asynchronous", False))

    @property
    def ref(self) -> RemoteRef:
        return self._ref

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def invoker(*args: Any, **kwargs: Any) -> Any:
            return self._invoke(method, args, kwargs)

        invoker.__name__ = method
        return invoker

    def invoke_async(self, method: str, *args: Any, **kwargs: Any) -> RmiFuture:
        """Start ``method(*args, **kwargs)`` and return its future.

        The synchronous proxy surface is equivalent to
        ``invoke_async(...).result()``: both interpret the same
        :class:`Response`, the sync form simply short-circuits the
        future allocation.  With a batcher attached the entry is
        *pipelined*: it joins the batch queue without parking this
        thread and flies when the queue fills or the caller gathers —
        so a window of async calls (and any concurrent callers' calls)
        shares wire messages.  Otherwise, on a concurrent transport the
        invocation runs on the shared async pool; on a deterministic
        transport it runs eagerly in the caller thread and an
        already-completed future is returned.
        """
        batcher = self._batcher
        if batcher is not None and batcher.enabled:
            return self._invoke_deferred(method, args, kwargs)
        if self._loop_native:
            return self._invoke_loop(method, args, kwargs)
        if getattr(self._transport, "concurrent", False):
            return run_async(lambda: self._invoke(method, args, kwargs))
        try:
            return RmiFuture.completed(self._invoke(method, args, kwargs))
        except Exception as exc:
            return RmiFuture.failed(exc)

    def _invoke_loop(self, method: str, args: tuple, kwargs: dict) -> RmiFuture:
        """Loop-native invocation: no thread parks while in flight.

        The request is submitted straight to the asyncio transport; the
        future completes from the transport's completion callback on the
        event loop.  Redirects re-submit from the callback (still
        non-blocking, still bounded), so a 10k-call window costs 10k
        tasks and zero waiting threads.
        """
        transport = self._transport
        payload = marshal_call(args, kwargs)
        future = RmiFuture()
        future.bind_wait_guard(transport.wait_guard)
        hops = {"n": 0}

        def send(ref: RemoteRef) -> None:
            request = Request(
                object_id=ref.object_id,
                method=method,
                payload=payload,
                caller=self._caller,
            )
            transport.submit(
                ref.endpoint_id,
                request,
                lambda response, error, ref=ref: on_done(ref, response, error),
            )

        def on_done(
            ref: RemoteRef,
            response: Response | None,
            error: BaseException | None,
        ) -> None:  # runs on the event loop; must not block
            if error is not None:
                future.set_exception(error)
                return
            if response.kind == "redirect":
                hops["n"] += 1
                if hops["n"] > self._MAX_REDIRECTS:
                    future.set_exception(ApplicationError(
                        f"redirect loop invoking {method!r} "
                        f"(> {self._MAX_REDIRECTS} hops)"
                    ))
                    return
                send(response.value)
                return
            try:
                future.set_result(
                    self._interpret_terminal(method, ref, response)
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                future.set_exception(exc)

        send(self._ref)
        return future

    def _invoke_deferred(self, method: str, args: tuple, kwargs: dict) -> RmiFuture:
        payload = marshal_call(args, kwargs)
        ref = self._ref
        request = Request(
            object_id=ref.object_id,
            method=method,
            payload=payload,
            caller=self._caller,
        )
        def finish(
            future: RmiFuture, response: Response | None
        ) -> None:
            try:
                future.set_result(self._interpret(method, payload, response))
            except BaseException as exc:  # noqa: BLE001 - relayed to waiter
                future.set_exception(exc)

        def complete(
            future: RmiFuture,
            response: Response | None,
            error: BaseException | None,
        ) -> None:
            if error is not None:
                future.set_exception(error)
                return
            if self._loop_native and response.kind == "redirect":
                # Following a redirect re-dispatches through the batcher
                # and blocks on the hop's result — never on the event
                # loop (this completer runs there under the loop drain
                # discipline); the shared async pool carries it.
                async_executor().submit(finish, future, response)
                return
            finish(future, response)

        return self._batcher.submit(ref.endpoint_id, request, complete)

    def _send(self, endpoint_id: str, request: Request) -> Response:
        batcher = self._batcher
        if batcher is not None:
            return batcher.dispatch(endpoint_id, request)
        return self._transport.invoke(endpoint_id, request)

    def _invoke(self, method: str, args: tuple, kwargs: dict) -> Any:
        return self._interpret(method, marshal_call(args, kwargs))

    def _interpret(
        self, method: str, payload: Any, response: Response | None = None
    ) -> Any:
        """Interpret a response, following redirects (bounded).

        With ``response=None`` this is the full sync path: build the
        request, send, interpret.  A deferred completion passes the
        already-received first-hop response and resumes from there.
        """
        ref = self._ref
        for _ in range(self._MAX_REDIRECTS):
            if response is None:
                request = Request(
                    object_id=ref.object_id,
                    method=method,
                    payload=payload,
                    caller=self._caller,
                )
                response = self._send(ref.endpoint_id, request)
            if response.kind == "redirect":
                ref = response.value
                response = None  # re-dispatch at the redirect target
                continue
            return self._interpret_terminal(method, ref, response)
        raise ApplicationError(
            f"redirect loop invoking {method!r} (> {self._MAX_REDIRECTS} hops)"
        )

    def _interpret_terminal(
        self, method: str, ref: RemoteRef, response: Response
    ) -> Any:
        """Interpret a non-redirect response (shared by every path)."""
        if response.kind == "result":
            return unmarshal_result(response.payload)
        if response.kind == "error":
            cause = unmarshal_result(response.payload)
            raise ApplicationError(
                f"remote method {method!r} raised "
                f"{type(cause).__name__}: {cause}",
                cause=cause,
            )
        if response.kind == "drained":
            raise MemberDrainedError(
                f"member {ref.describe()} is draining; retry elsewhere"
            )
        raise ApplicationError(f"unknown response kind: {response.kind}")
