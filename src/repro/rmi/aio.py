"""Asyncio-native transport: one event loop drives every endpoint.

:class:`ThreadedTransport` charges one blocked OS thread per in-flight
call (an async-invoker worker parked on ``future.result()`` plus a
dispatch-pool worker running the handler), so its concurrency ceiling is
thread count — a few hundred calls at best.  :class:`AsyncioTransport`
removes that ceiling: sends are loop callbacks, dispatches are
coroutines, and an in-flight call costs one ``asyncio.Task`` (~KBs, no
stack, no scheduler pressure), so one process sustains tens of
thousands of concurrent calls.

Loop ownership
    The process owns exactly one transport event loop, created lazily on
    a daemon thread (mirroring :func:`repro.rmi.future.async_executor`)
    and shared by every :class:`AsyncioTransport` instance.  Transport
    ``shutdown()`` cancels that transport's outstanding dispatches but
    leaves the loop running — it is process infrastructure, like the
    async-invoker pool.

Dispatch rules
    Each endpoint's skeleton dispatches *on the loop* via its
    ``handle_async`` coroutine: coroutine remote methods are awaited in
    place, plain methods run inline (they must be CPU-light), and
    methods marked with the :func:`blocking` decorator are offloaded to
    a small default executor so they never stall the loop.

Bridging
    ``submit()``/``submit_batch()`` are the native, callback-based API
    (the stub's loop-native path and the batcher's loop drain discipline
    use them).  ``invoke()``/``invoke_batch()`` bridge synchronously for
    Transport-protocol compatibility; calling them *from* the loop
    thread raises immediately instead of deadlocking, and
    :meth:`wait_guard` gives futures the same protection.

The in-flight window (``ERMI_AIO_INFLIGHT``, generous by default) is an
``asyncio.Semaphore`` bounding concurrent dispatches — backpressure
against unbounded task pileup, not a throttle.  With an
:class:`~repro.obs.Observability` attached the transport exports an
in-flight gauge (plus high-water mark) and an event-loop lag histogram
sampled by a periodic loop task.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.errors import ConnectError, RemoteError
from repro.rmi.envcfg import env_int
from repro.rmi.transport import (
    BatchRequest,
    BatchResponse,
    Endpoint,
    Request,
    Response,
    _TransportBase,
    batch_envelope,
)

# Callback invoked on the loop when one submitted call (or batch)
# completes: exactly one of (result, error) is non-None.  It must not
# block — anything that would park the loop thread belongs on a pool.
DoneCallback = Callable[[Any, "BaseException | None"], None]

DEFAULT_INFLIGHT_WINDOW = 16_384
DEFAULT_OFFLOAD_WORKERS = 8
LAG_SAMPLE_INTERVAL_S = 0.05


def aio_inflight_from_env() -> int:
    """Dispatch-window size from ``ERMI_AIO_INFLIGHT`` (default 16384)."""
    return env_int("ERMI_AIO_INFLIGHT", DEFAULT_INFLIGHT_WINDOW)


def blocking_workers_from_env() -> int:
    """Offload-pool size from ``ERMI_BLOCKING_WORKERS`` (default 8).

    Sizes the shared default executor that ``@blocking`` handlers run
    on.  Read once, when the process-wide loop runtime is created —
    raising here (malformed value) is deliberate and names the variable.
    """
    return env_int("ERMI_BLOCKING_WORKERS", DEFAULT_OFFLOAD_WORKERS)


def blocking(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark a remote method as genuinely blocking (file/socket/sleep).

    The asyncio skeleton dispatch offloads marked methods to the loop's
    small default executor instead of running them inline — the *only*
    sanctioned way to block inside a loop-dispatched handler.  Sync
    transports ignore the marker (their dispatch threads may block).
    """
    fn.__ermi_blocking__ = True
    return fn


# ----------------------------------------------------------------------
# the process-wide loop runtime
# ----------------------------------------------------------------------


class _LoopRuntime:
    """The shared event loop, its thread, and the offload executor."""

    def __init__(self, offload_workers: int) -> None:
        self.loop = asyncio.new_event_loop()
        self.offload = ThreadPoolExecutor(
            max_workers=offload_workers,
            thread_name_prefix="ermi-aio-offload",
        )
        # Blocking-marked handlers and fault hooks run on the *default*
        # executor, so skeletons stay transport-agnostic
        # (``run_in_executor(None, ...)``).
        self.loop.set_default_executor(self.offload)
        self.thread = threading.Thread(
            target=self._run, name="ermi-aio-loop", daemon=True
        )
        self.thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def is_loop_thread(self) -> bool:
        return threading.current_thread() is self.thread

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` on the loop; safe from any thread."""
        self.loop.call_soon_threadsafe(fn, *args)


_runtime: _LoopRuntime | None = None
_runtime_lock = threading.Lock()


def loop_runtime() -> _LoopRuntime:
    """The process-wide loop runtime, created on first use."""
    global _runtime
    if _runtime is None:
        with _runtime_lock:
            if _runtime is None:
                _runtime = _LoopRuntime(blocking_workers_from_env())
    return _runtime


# ----------------------------------------------------------------------
# the transport
# ----------------------------------------------------------------------


class AsyncioTransport(_TransportBase):
    """Live transport: every endpoint dispatches on one shared loop.

    ``timeout`` bounds each dispatch (None disables the deadline —
    deterministic tests use that to keep dispatch coroutines
    suspension-free).  ``inflight_limit`` is the dispatch window.
    """

    concurrent = True
    # Capability flag the stub/batcher layers key on: completions are
    # loop-native callbacks, so callers must never block the loop thread.
    asynchronous = True

    def __init__(
        self,
        timeout: float | None = 30.0,
        inflight_limit: int | None = None,
    ) -> None:
        super().__init__()
        self._timeout = timeout
        self._runtime = loop_runtime()
        self.inflight_limit = (
            aio_inflight_from_env() if inflight_limit is None
            else max(1, inflight_limit)
        )
        self._sema = asyncio.Semaphore(self.inflight_limit)
        # Loop-thread-only state (no lock needed): admitted dispatches.
        self._inflight = 0
        self._inflight_hwm = 0
        self._tasks: set[asyncio.Task] = set()
        self._lag_task: asyncio.Task | None = None
        self._closed = False

    # -- capability surface -------------------------------------------------

    @property
    def inflight(self) -> int:
        """Calls currently inside the dispatch window (monitoring)."""
        return self._inflight

    @property
    def inflight_hwm(self) -> int:
        """High-water mark of concurrent in-flight calls."""
        return self._inflight_hwm

    def schedule(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the event loop; safe from any thread.

        The batcher's loop drain discipline schedules its sweeps here.
        """
        self._runtime.call_soon(fn)

    def wait_guard(self) -> None:
        """Raise when the calling thread must not block on a future.

        Stubs bind this on loop-native futures: a ``result()`` from the
        loop thread itself can only deadlock (the completion it waits
        for would run on the very thread it parked), so it fails fast.
        """
        if self._runtime.is_loop_thread():
            raise RemoteError(
                "blocking wait on the asyncio transport's event-loop "
                "thread would deadlock; complete via callbacks or wait "
                "from another thread"
            )

    # -- observability ------------------------------------------------------

    def set_obs(self, obs: Any) -> None:
        super().set_obs(obs)
        if obs is not None:
            self._runtime.call_soon(self._ensure_lag_sampler)

    def _ensure_lag_sampler(self) -> None:  # loop thread
        if self._lag_task is not None and not self._lag_task.done():
            return
        self._lag_task = self._runtime.loop.create_task(
            self._sample_loop_lag()
        )

    async def _sample_loop_lag(self) -> None:
        """Periodic loop-lag probe: how late a timer actually fires.

        The overshoot of a plain ``sleep`` is scheduling latency — the
        time runnable callbacks waited behind whatever held the loop.
        Only runs while an Observability is attached.
        """
        loop = asyncio.get_running_loop()
        while self._obs is not None and not self._closed:
            before = loop.time()
            await asyncio.sleep(LAG_SAMPLE_INTERVAL_S)
            lag_ms = max(
                0.0, (loop.time() - before - LAG_SAMPLE_INTERVAL_S) * 1e3
            )
            obs = self._obs
            if obs is None:
                break
            obs.registry.histogram("rmi.aio.loop_lag_ms").observe(lag_ms)

    def _note_inflight(self, delta: int) -> None:  # loop thread
        self._inflight += delta
        if self._inflight > self._inflight_hwm:
            self._inflight_hwm = self._inflight
        obs = self._obs
        if obs is not None:
            registry = obs.registry
            registry.gauge("rmi.aio.inflight").set(float(self._inflight))
            registry.gauge("rmi.aio.inflight_hwm").set(
                float(self._inflight_hwm)
            )

    # -- native (loop-callback) API -----------------------------------------

    def submit(
        self, endpoint_id: str, request: Request, on_done: DoneCallback
    ) -> None:
        """Start one call; ``on_done(response, error)`` runs on the loop.

        Thread-safe and non-blocking: the caller never parks, which is
        what lets one thread keep thousands of calls in flight.
        """
        self._runtime.call_soon(self._start, endpoint_id, request, on_done)

    def submit_batch(
        self, endpoint_id: str, batch: BatchRequest, on_done: DoneCallback
    ) -> None:
        """Batch analogue of :meth:`submit`; completes with a
        :class:`BatchResponse`."""
        self._runtime.call_soon(self._start_batch, endpoint_id, batch, on_done)

    def _start(
        self, endpoint_id: str, request: Request, on_done: DoneCallback
    ) -> None:  # loop thread
        self._spawn(self._run_one(endpoint_id, request, on_done))

    def _start_batch(
        self, endpoint_id: str, batch: BatchRequest, on_done: DoneCallback
    ) -> None:  # loop thread
        self._spawn(self._run_batch(endpoint_id, batch, on_done))

    def _spawn(self, coro: Any) -> None:  # loop thread
        # Tasks need a strong reference until done; _reap also surfaces
        # completion-callback bugs via the loop's exception handler
        # instead of a silent "exception never retrieved".
        task = self._runtime.loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._reap)

    def _reap(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self._runtime.loop.call_exception_handler(
                {"message": "ermi aio completion callback failed",
                 "exception": exc}
            )

    async def _run_one(
        self, endpoint_id: str, request: Request, on_done: DoneCallback
    ) -> None:
        try:
            response = await self._invoke_async(endpoint_id, request)
        except asyncio.CancelledError:
            on_done(None, ConnectError("asyncio transport shut down"))
        except BaseException as exc:  # noqa: BLE001 - relayed to completer
            on_done(None, exc)
        else:
            on_done(response, None)

    async def _run_batch(
        self, endpoint_id: str, batch: BatchRequest, on_done: DoneCallback
    ) -> None:
        try:
            response = await self._invoke_batch_async(endpoint_id, batch)
        except asyncio.CancelledError:
            on_done(None, ConnectError("asyncio transport shut down"))
        except BaseException as exc:  # noqa: BLE001 - relayed to completer
            on_done(None, exc)
        else:
            on_done(response, None)

    # -- dispatch coroutines ------------------------------------------------

    def _resolve_aio(
        self, endpoint_id: str, request: Request
    ) -> tuple[Endpoint, Any]:
        """Resolve to the endpoint's *async* handler when exported, the
        raw sync handler otherwise (tests export plain callables)."""
        ep = self.endpoint(endpoint_id)
        if not ep.alive:
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        handler = ep.ahandlers.get(request.object_id)
        if handler is None:
            handler = ep.handlers.get(request.object_id)
            if handler is None:
                raise ConnectError(
                    f"no object {request.object_id!r} at endpoint {ep.name}"
                )
        return ep, handler

    async def _invoke_async(
        self, endpoint_id: str, request: Request
    ) -> Response:
        if self._closed:
            raise ConnectError("asyncio transport shut down")
        ep, handler = self._resolve_aio(endpoint_id, request)
        async with self._sema:
            self._note_inflight(+1)
            try:
                hook = self._fault_hook
                if hook is not None:
                    # Hooks may sleep (injected delays); keep the loop
                    # live by consulting them on the offload executor.
                    await self._runtime.loop.run_in_executor(
                        None, hook, endpoint_id, request
                    )
                self._messages.increment()
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(
                        "transport", "message",
                        endpoint=ep.name, method=request.method,
                        caller=request.caller,
                    )
                return await self._timed(
                    self._call_handler(handler, request),
                    f"invocation of {request.method!r}",
                )
            finally:
                self._note_inflight(-1)

    async def _invoke_batch_async(
        self, endpoint_id: str, batch: BatchRequest
    ) -> BatchResponse:
        if self._closed:
            raise ConnectError("asyncio transport shut down")
        ep = self._resolve_endpoint(endpoint_id)
        async with self._sema:  # one wire message, one window slot
            self._note_inflight(+len(batch.entries))
            try:
                hook = self._fault_hook
                if hook is not None:
                    await self._runtime.loop.run_in_executor(
                        None, hook, endpoint_id, batch_envelope(batch)
                    )
                self._messages.increment()
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(
                        "transport", "batch-message",
                        endpoint=ep.name, size=len(batch.entries),
                        caller=batch.caller,
                    )
                return await self._timed(
                    self._dispatch_batch(ep, batch),
                    f"batch of {len(batch.entries)} invocations",
                )
            finally:
                self._note_inflight(-len(batch.entries))

    async def _timed(self, coro: Any, what: str) -> Any:
        if self._timeout is None:
            return await coro
        try:
            async with asyncio.timeout(self._timeout):
                return await coro
        except TimeoutError as exc:
            raise RemoteError(
                f"{what} timed out after {self._timeout}s"
            ) from exc

    @staticmethod
    async def _call_handler(handler: Any, request: Request) -> Response:
        result = handler(request)
        if asyncio.iscoroutine(result):
            return await result
        return result

    async def _dispatch_batch(
        self, ep: Endpoint, batch: BatchRequest
    ) -> BatchResponse:
        """Unbatch on the loop: entries dispatch concurrently, results
        reassemble in entry order (the loop-native analogue of the
        threaded transport's chunked parallel dispatch)."""
        responses = await asyncio.gather(
            *(self._dispatch_entry_async(ep, request)
              for request in batch.entries)
        )
        return BatchResponse(entries=tuple(responses))

    async def _dispatch_entry_async(
        self, ep: Endpoint, request: Request
    ) -> Response:
        handler = ep.ahandlers.get(request.object_id)
        if handler is None:
            handler = ep.handlers.get(request.object_id)
            if handler is None:
                return Response(kind="unresolved", value=request.object_id)
        return await self._call_handler(handler, request)

    # -- sync bridges (Transport protocol) ----------------------------------

    def invoke(self, endpoint_id: str, request: Request) -> Response:
        self.wait_guard()
        waiter: Future[Response] = Future()
        self.submit(endpoint_id, request, _bridge(waiter))
        return self._bridge_result(waiter, request.method)

    def invoke_batch(
        self, endpoint_id: str, batch: BatchRequest
    ) -> BatchResponse:
        self.wait_guard()
        waiter: Future[BatchResponse] = Future()
        self.submit_batch(endpoint_id, batch, _bridge(waiter))
        return self._bridge_result(waiter, f"batch[{len(batch.entries)}]")

    def _bridge_result(self, waiter: Future, what: str) -> Any:
        # The dispatch deadline lives on the loop; the grace period only
        # covers a loop that died and can never complete the waiter.
        grace = None if self._timeout is None else self._timeout + 5.0
        try:
            return waiter.result(timeout=grace)
        except TimeoutError as exc:
            raise RemoteError(
                f"invocation of {what} got no completion within {grace}s"
            ) from exc

    # -- lifecycle ----------------------------------------------------------

    def cpu_executor(self):
        return self._ensure_cpu_executor()

    def shutdown(self) -> None:
        """Cancel this transport's outstanding dispatches.

        The shared loop and offload executor keep running — they are
        process infrastructure, reused by the next transport.  The cpu
        pool, by contrast, is transport-owned: its worker processes stop
        here so a finished session never strands children.
        """
        self._closed = True
        self._runtime.call_soon(self._cancel_all)
        self._shutdown_cpu_executor()

    def _cancel_all(self) -> None:  # loop thread
        if self._lag_task is not None:
            self._lag_task.cancel()
            self._lag_task = None
        for task in list(self._tasks):
            task.cancel()


def _bridge(waiter: Future) -> DoneCallback:
    """Adapt a completion callback onto a concurrent future."""

    def on_done(result: Any, error: BaseException | None) -> None:
        if error is not None:
            waiter.set_exception(error)
        else:
            waiter.set_result(result)

    return on_done
