"""Classic RMI substrate: registry, marshalling, stubs, and skeletons.

ElasticRMI layers elasticity *on top of* Java RMI's stub/skeleton
machinery; this package rebuilds that machinery in Python:

- :class:`Registry` — bind/lookup of names to remote references.
- :mod:`repro.rmi.marshal` — pass-by-value serialization of arguments and
  results (deep copies, like Java serialization), with remote references
  passing by reference.
- :class:`Endpoint` / transports — each pool member lives at an endpoint
  ("a JVM"); :class:`DirectTransport` delivers calls synchronously and
  deterministically (unit tests, simulation), :class:`ThreadedTransport`
  gives every endpoint a real dispatch thread (live examples), and
  :class:`AsyncioTransport` dispatches every endpoint on one shared
  event loop (high fan-out live mode: thousands of in-flight calls).
- :class:`Skeleton` — server-side dispatcher: per-method call statistics,
  drain state (reject-with-retry while shutting down) and redirect tables
  (the hooks ElasticRMI's sentinel drives for load balancing).
- :class:`Stub` — client-side dynamic proxy raising
  :class:`~repro.errors.RemoteError` subclasses.
- :class:`RmiFuture` / :class:`RequestBatcher` — the asynchronous
  surface: ``invoke_async`` futures, and the adaptive batcher that
  coalesces concurrent same-endpoint calls into single
  :class:`BatchRequest` wire messages.
"""

from repro.rmi.aio import AsyncioTransport, blocking
from repro.rmi.batching import BatcherStats, RequestBatcher
from repro.rmi.cpu import CpuExecutor, cpu_bound
from repro.rmi.fastpath import (
    FastPayload,
    MarshalCache,
    is_immutable,
    is_zero_copy,
    marshal_call,
    marshal_result,
    register_immutable,
    unmarshal_call,
    unmarshal_result,
)
from repro.rmi.future import InvocationTimeout, RmiFuture, gather
from repro.rmi.marshal import marshal_value, unmarshal_value
from repro.rmi.registry import Registry
from repro.rmi.remote import (
    CallStats,
    MethodStats,
    Remote,
    RemoteRef,
    Skeleton,
    Stub,
)
from repro.rmi.transport import (
    BatchRequest,
    BatchResponse,
    DirectTransport,
    Endpoint,
    ThreadedTransport,
    Transport,
)

__all__ = [
    "AsyncioTransport",
    "BatchRequest",
    "BatchResponse",
    "BatcherStats",
    "CallStats",
    "CpuExecutor",
    "DirectTransport",
    "Endpoint",
    "FastPayload",
    "InvocationTimeout",
    "MarshalCache",
    "MethodStats",
    "Registry",
    "Remote",
    "RemoteRef",
    "RequestBatcher",
    "RmiFuture",
    "Skeleton",
    "Stub",
    "ThreadedTransport",
    "Transport",
    "blocking",
    "cpu_bound",
    "gather",
    "is_immutable",
    "is_zero_copy",
    "marshal_call",
    "marshal_result",
    "marshal_value",
    "register_immutable",
    "unmarshal_call",
    "unmarshal_result",
    "unmarshal_value",
]
