"""Multi-core skeleton execution: a process pool for ``@cpu_bound`` methods.

The GIL caps every in-process transport at one core of Python compute,
no matter how many dispatch threads :class:`~repro.rmi.transport.
ThreadedTransport` runs or how many calls :class:`~repro.rmi.aio.
AsyncioTransport` keeps in flight — threads help only while a handler is
*blocked*, not while it is *computing*.  The paper's skeletons are whole
JVM processes and scale across cores for free; this module restores that
property for the in-process reproduction.

Mark a method with :func:`cpu_bound` and the owning skeleton dispatches
it onto a :class:`CpuExecutor` — a small pool of worker *processes*
(``ERMI_CPU_WORKERS``, default ``cpu_count() - 1``) owned by the
transport.  Three design points matter:

- **zero-copy payloads** — arguments and results are pickled with
  protocol-5 out-of-band buffers (:func:`~repro.rmi.fastpath.dumps_oob`)
  and large ``bytes``/``bytearray`` payloads cross the process boundary
  through one :class:`multiprocessing.shared_memory.SharedMemory`
  segment per message instead of being copied through a pipe.  Payloads
  below ``ERMI_CPU_SHM_MIN`` (default 256 KiB) ride the pipe inline,
  where a segment's setup cost would dominate.
- **per-call crash containment** — a worker dying mid-call fails *that
  call* with :class:`~repro.errors.CpuWorkerLostError` (a
  :class:`~repro.errors.ConnectError`, so the client's retry machinery
  charges one attempt and retries), the worker is respawned, and every
  other in-flight call is untouched.  This is exactly why the pool is
  hand-rolled: :class:`concurrent.futures.ProcessPoolExecutor` shares
  one call queue across workers and declares the whole pool broken when
  any worker dies, nuking unrelated in-flight calls.
- **pass-by-value is preserved** — the implementation object's state is
  snapshotted per call and rebuilt in the worker, so a ``@cpu_bound``
  method sees a copy and its mutations do not persist (document this:
  cpu-bound methods should be pure compute).  Out-of-band buffers
  reconstruct as owned ``bytes``/``bytearray`` copies, never as views
  into the shared segment.

Shared-memory hygiene (POSIX): ``SharedMemory`` registers every segment
with the ``resource_tracker`` on both create *and* attach.  The protocol
here keeps the tracker's cache balanced — the creator unregisters
immediately after creating (the receiver owns cleanup), the receiver's
``unlink`` unregisters, and crash-path cleanup always attaches before
unlinking.  Segments are named ``ermi-cpu-p<pid>-*`` (parent-created
requests) and ``ermi-cpu-w<pid>-*`` (worker-created results) so orphans
from a killed worker can be swept from ``/dev/shm`` by prefix on
respawn.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue
import threading
import time
import weakref
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import CpuWorkerLostError, MarshalError, RemoteError
from repro.rmi.envcfg import env_bytes, env_int
from repro.rmi.fastpath import dumps_oob, loads_oob

DEFAULT_SHM_MIN = 256 * 1024
_SEGMENT_PREFIX = "ermi-cpu"
_SHM_DIR = "/dev/shm"


def cpu_bound(fn: Callable) -> Callable:
    """Mark a remote method as CPU-bound compute.

    Skeletons dispatch marked methods onto the transport's
    :class:`CpuExecutor` (when it has one — :class:`~repro.rmi.
    transport.DirectTransport` stays inline for determinism).  The
    method runs against a per-call *snapshot* of the implementation
    object, so it must not rely on mutating ``self``; its class must be
    importable (module-level) in the worker process.
    """
    fn.__ermi_cpu_bound__ = True
    return fn


def cpu_workers_from_env() -> int:
    """``ERMI_CPU_WORKERS``, default ``cpu_count() - 1`` (min 1).

    One core is left for the dispatching parent so marshalling and the
    event loop are not starved by the workers.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 2
    return env_int("ERMI_CPU_WORKERS", max(1, cores - 1))


def cpu_shm_min_from_env() -> int:
    """``ERMI_CPU_SHM_MIN``, default 256 KiB (0 = always shared memory).

    The crossover below which payload buffers ride the pipe inline
    instead of a shared-memory segment.  Accepts ``k``/``m``/``g``
    suffixes (``ERMI_CPU_SHM_MIN=64k``).
    """
    return env_bytes("ERMI_CPU_SHM_MIN", DEFAULT_SHM_MIN, minimum=0)


# ----------------------------------------------------------------------
# payload packing: pickle body + buffers via shared memory or inline
# ----------------------------------------------------------------------
#
# Wire spec (both directions over the worker pipe):
#     (body, inline, shm)
# where exactly one of ``inline`` / ``shm`` is set when out-of-band
# buffers exist:  ``inline`` is a list of raw buffer bytes;  ``shm`` is
# ``(segment_name, [(offset, length), ...])`` describing one packed
# segment holding every buffer.  Writability does not need to travel:
# the _OobBuffer reconstructor copies through ``bytes``/``bytearray``
# factories recorded in the pickle body itself.


def _unregister_created(shm: Any) -> None:
    # The creator registered the segment in __init__; hand ownership to
    # the receiver by cancelling that registration (uses the private
    # slash-prefixed name the stdlib registered under).
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _pack_payload(
    value: Any, shm_min: int, name_prefix: str, seq: "itertools.count"
) -> "tuple[tuple, str | None]":
    """Serialize ``value`` for the pipe; returns ``(spec, segment_name)``.

    ``segment_name`` (when not None) names a shared-memory segment the
    *receiver* must unlink; the sender keeps it only for crash cleanup.
    """
    body, buffers = dumps_oob(value, shm_min if shm_min > 0 else 1)
    if not buffers:
        return (body, None, None), None
    raws = [b.raw() for b in buffers]
    total = sum(r.nbytes for r in raws)
    segment = None
    if total >= shm_min:
        segment = _create_segment(total, name_prefix, seq)
    if segment is None:
        # No shared memory available (or payload under the crossover):
        # copy the buffers through the pipe.
        spec = (body, [bytes(r) for r in raws], None)
        for r in raws:
            r.release()
        return spec, None
    layout = []
    offset = 0
    try:
        for r in raws:
            segment.buf[offset : offset + r.nbytes] = r
            layout.append((offset, r.nbytes))
            offset += r.nbytes
    finally:
        for r in raws:
            r.release()
    name = segment.name
    segment.close()
    return (body, None, (name, layout)), name


def _create_segment(size: int, name_prefix: str, seq: "itertools.count"):
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return None
    for _ in range(16):  # name collisions: stale segments from old runs
        name = f"{name_prefix}-{next(seq)}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, size)
            )
        except FileExistsError:
            continue
        except OSError:
            return None
        _unregister_created(segment)
        return segment
    return None


def _unpack_payload(spec: "tuple") -> Any:
    """Inverse of :func:`_pack_payload`; unlinks the segment if any."""
    body, inline, shm_descr = spec
    if shm_descr is None:
        return loads_oob(body, inline)
    from multiprocessing import shared_memory

    name, layout = shm_descr
    segment = shared_memory.SharedMemory(name=name)
    views = []
    try:
        views = [
            segment.buf[offset : offset + length] for offset, length in layout
        ]
        return loads_oob(body, views)
    finally:
        for view in views:
            view.release()
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _unlink_segment(name: str) -> bool:
    """Best-effort removal of a segment by name (crash cleanup).

    Attach-then-unlink keeps the resource tracker's cache balanced: the
    attach registers, the unlink unregisters, and any stale registration
    left by a killed receiver is cancelled by the same unlink.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return False
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    return True


def _sweep_segments(prefix: str) -> int:
    """Unlink every ``/dev/shm`` segment with ``prefix`` (orphans left
    by a killed worker); returns how many were removed."""
    removed = 0
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return 0
    for entry in entries:
        if entry.startswith(prefix) and _unlink_segment(entry):
            removed += 1
    return removed


def live_segments() -> "list[str]":
    """Names of every live ``ermi-cpu-*`` segment (leak checks)."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(_SEGMENT_PREFIX))


# ----------------------------------------------------------------------
# implementation snapshots
# ----------------------------------------------------------------------


def _snapshot_impl(impl: Any) -> "tuple[type, dict]":
    """``(class, state)`` shipped per call.

    Elastic wrappers hang unpicklable runtime context off ``_ermi*``
    attributes (contexts, locks, transports); those never travel.  The
    worker rebuilds with ``cls.__new__`` + ``__dict__.update``, skipping
    ``__init__`` the way pickle itself does.
    """
    state = {
        key: value
        for key, value in vars(impl).items()
        if not key.startswith("_ermi")
    }
    return type(impl), state


def _rebuild_impl(cls: type, state: dict) -> Any:
    impl = cls.__new__(cls)
    impl.__dict__.update(state)
    return impl


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _worker_main(conn: Any, shm_min: int) -> None:
    """Worker loop: receive ``("call", job_id, spec)``, run, reply.

    Replies ``("ok"|"err", job_id, spec)``.  Result segments are named
    ``ermi-cpu-w<pid>-<seq>`` so the parent can sweep them if this
    process is killed before the parent reads the reply.
    """
    import signal

    # The parent's lifecycle owns this process; a Ctrl-C aimed at the
    # parent must not race its orderly shutdown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    name_prefix = f"{_SEGMENT_PREFIX}-w{os.getpid()}"
    seq = itertools.count()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        _, job_id, spec = message
        try:
            cls, state, method_name, args, kwargs = _unpack_payload(spec)
            impl = _rebuild_impl(cls, state)
            result = getattr(impl, method_name)(*args, **kwargs)
            reply = ("ok", _pack_payload(result, shm_min, name_prefix, seq)[0])
        except BaseException as exc:  # noqa: BLE001 - must reach the parent
            try:
                packed = _pack_payload(exc, shm_min, name_prefix, seq)[0]
            except Exception:
                fallback = RemoteError(
                    f"cpu worker raised unmarshallable "
                    f"{type(exc).__name__}: {exc}"
                )
                packed = _pack_payload(fallback, shm_min, name_prefix, seq)[0]
            reply = ("err", packed)
        try:
            conn.send((reply[0], job_id, reply[1]))
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

_live_executors: "weakref.WeakSet[CpuExecutor]" = weakref.WeakSet()


@atexit.register
def _shutdown_leftover_executors() -> None:
    for executor in list(_live_executors):
        executor.shutdown(wait=False)


class _Job:
    __slots__ = ("job_id", "spec", "future", "segment", "submitted_at")

    def __init__(self, job_id, spec, future, segment, submitted_at):
        self.job_id = job_id
        self.spec = spec
        self.future = future
        self.segment = segment
        self.submitted_at = submitted_at


class CpuExecutor:
    """A crash-contained pool of worker processes for cpu-bound calls.

    One manager thread per worker pulls jobs from a shared queue, ships
    them over that worker's pipe, and watches the pipe *and* the process
    sentinel together (:func:`multiprocessing.connection.wait`) so a
    worker death is detected the moment it happens, not at a timeout.
    """

    def __init__(
        self,
        workers: int | None = None,
        shm_min: int | None = None,
        obs: Any = None,
        mp_context: Any = None,
    ) -> None:
        import multiprocessing

        self.workers = workers if workers is not None else cpu_workers_from_env()
        if self.workers < 1:
            raise ValueError("CpuExecutor needs at least one worker")
        self.shm_min = (
            shm_min if shm_min is not None else cpu_shm_min_from_env()
        )
        if mp_context is None:
            # spawn, not fork: executors are created lazily from transports
            # that already run dispatch/offload/event-loop threads, and a
            # fork taken while any of those threads holds an interpreter or
            # allocator lock leaves the child deadlocked on the inherited
            # lock (observed in practice as workers frozen on a futex before
            # their first recv).  A spawned worker boots a fresh interpreter
            # and is immune; the ~100ms boot is paid once per worker (and
            # once per respawn after a crash), never per call.
            mp_context = multiprocessing.get_context("spawn")
        self._ctx = mp_context
        self._queue: "queue.SimpleQueue[_Job | None]" = queue.SimpleQueue()
        self._seq = itertools.count()
        self._segment_seq = itertools.count()
        self._segment_prefix = f"{_SEGMENT_PREFIX}-p{os.getpid()}"
        self._closed = False
        self._lock = threading.Lock()
        self._obs: Any = None
        self.respawns = 0
        self._threads: "list[threading.Thread]" = []
        self._procs: "list[Any]" = [None] * self.workers
        if obs is not None:
            self.set_obs(obs)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._manage,
                args=(index,),
                name=f"ermi-cpu-mgr-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        _live_executors.add(self)

    # -- observability --------------------------------------------------

    def set_obs(self, obs: Any) -> None:
        self._obs = obs
        if obs is not None:
            obs.registry.gauge("rmi.cpu.workers").set(float(self.workers))
            obs.registry.gauge("rmi.cpu.respawns").set(float(self.respawns))

    def _note_inflight(self, delta: int) -> None:
        obs = self._obs
        if obs is not None:
            obs.registry.gauge("rmi.cpu.inflight").add(float(delta))

    def _note_respawn(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.registry.gauge("rmi.cpu.respawns").set(float(self.respawns))

    def _note_latency(self, seconds: float) -> None:
        obs = self._obs
        if obs is not None:
            obs.registry.histogram("rmi.cpu.dispatch_latency").observe(seconds)

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, index: int) -> "tuple[Any, Any]":
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.shm_min),
            name=f"ermi-cpu-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        return proc, parent_conn

    def worker_pids(self) -> "list[int]":
        """Live worker pids (crash tests kill one of these)."""
        return [
            proc.pid
            for proc in self._procs
            if proc is not None and proc.is_alive()
        ]

    def _await_reply(self, proc: Any, conn: Any) -> "tuple":
        from multiprocessing import connection

        while True:
            ready = connection.wait([conn, proc.sentinel])
            if conn in ready:
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    raise _WorkerDied() from None
            if proc.sentinel in ready:
                # Sentinel fired with nothing buffered on the pipe: the
                # worker is gone mid-call.
                raise _WorkerDied()

    def _manage(self, index: int) -> None:
        proc, conn = self._spawn(index)
        while True:
            job = self._queue.get()
            if job is None:
                break
            if not job.future.set_running_or_notify_cancel():
                if job.segment is not None:
                    _unlink_segment(job.segment)
                continue
            self._note_inflight(1)
            try:
                try:
                    # send raises once the kernel notices the dead peer;
                    # treat it exactly like a death seen mid-wait.
                    conn.send(("call", job.job_id, job.spec))
                    kind, job_id, spec = self._await_reply(proc, conn)
                except (_WorkerDied, BrokenPipeError, OSError):
                    dead_pid = proc.pid
                    if job.segment is not None:
                        _unlink_segment(job.segment)
                    try:
                        conn.close()
                    except OSError:
                        pass
                    proc.join(timeout=5.0)
                    _sweep_segments(f"{_SEGMENT_PREFIX}-w{dead_pid}")
                    job.future.set_exception(
                        CpuWorkerLostError(
                            f"cpu worker {dead_pid} died executing the call"
                        )
                    )
                    with self._lock:
                        closed = self._closed
                        self.respawns += 1
                    self._note_respawn()
                    if closed:
                        break
                    proc, conn = self._spawn(index)
                    continue
                try:
                    value = _unpack_payload(spec)
                except Exception as exc:  # unmarshal failure is per-call
                    job.future.set_exception(exc)
                    continue
                self._note_latency(time.perf_counter() - job.submitted_at)
                if kind == "ok":
                    job.future.set_result(value)
                elif isinstance(value, BaseException):
                    job.future.set_exception(value)
                else:
                    job.future.set_exception(
                        RemoteError(f"cpu worker error reply: {value!r}")
                    )
            finally:
                self._note_inflight(-1)
        # orderly exit: release the worker
        self._stop_worker(proc, conn)

    def _stop_worker(self, proc: Any, conn: Any) -> None:
        try:
            conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)

    # -- submission ------------------------------------------------------

    def submit_call(
        self, impl: Any, method_name: str, args: "tuple", kwargs: "dict"
    ) -> "Future":
        """Ship ``method_name(*args, **kwargs)`` against a snapshot of
        ``impl`` to a worker; returns a future."""
        with self._lock:
            if self._closed:
                raise RuntimeError("CpuExecutor is shut down")
            job_id = next(self._seq)
        cls, state = _snapshot_impl(impl)
        try:
            spec, segment = _pack_payload(
                (cls, state, method_name, args, kwargs),
                self.shm_min,
                self._segment_prefix,
                self._segment_seq,
            )
        except MarshalError:
            raise
        except Exception as exc:
            raise MarshalError(
                f"cannot marshal cpu-bound call {method_name!r}: {exc}"
            ) from exc
        future: "Future" = Future()
        self._queue.put(
            _Job(job_id, spec, future, segment, time.perf_counter())
        )
        return future

    def run_call(
        self, impl: Any, method_name: str, args: "tuple", kwargs: "dict"
    ) -> Any:
        """Blocking form of :meth:`submit_call` (threaded dispatch path)."""
        return self.submit_call(impl, method_name, args, kwargs).result()

    # -- shutdown --------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop every worker; idempotent.

        Queued-but-unstarted jobs fail with :class:`CpuWorkerLostError`
        (their request segments are unlinked); in-flight jobs complete —
        each manager sees its sentinel only after finishing the job in
        hand.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        # Anything still queued was behind the sentinels and will never
        # run (managers exit on their sentinel).
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            if job.segment is not None:
                _unlink_segment(job.segment)
            if job.future.set_running_or_notify_cancel():
                job.future.set_exception(
                    CpuWorkerLostError("CpuExecutor shut down")
                )
        _live_executors.discard(self)


class _WorkerDied(Exception):
    """Internal: the pipe/sentinel watch saw the worker exit."""
