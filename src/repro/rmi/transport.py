"""In-process transports: how requests travel between "JVMs".

Every pool member (and every client) lives at an :class:`Endpoint`, the
stand-in for one JVM at one IP:port.  Two transports move
:class:`Request`/:class:`Response` pairs between endpoints:

- :class:`DirectTransport` — synchronous delivery in the caller's thread.
  Deterministic; used by unit tests and by the simulation experiments.
- :class:`ThreadedTransport` — each endpoint owns a dispatch pool, calls
  block the caller until the remote worker responds (or a timeout trips).
  This is the live mode the runnable examples use: real concurrency, real
  blocking semantics.

Endpoints can be killed to model JVM crashes; invoking a dead or unknown
endpoint raises :class:`ConnectError`, which the elastic stub's retry loop
feeds on (paper section 4.3: "if the sending itself fails, the remote
method invocation throws an exception which is intercepted by the client
stub").
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import ConnectError, RemoteError

_endpoint_ids = itertools.count(1)


@dataclass(frozen=True)
class Request:
    """One remote method invocation on the wire."""

    object_id: str
    method: str
    payload: bytes  # marshalled (args, kwargs)
    caller: str = "?"


@dataclass(frozen=True)
class Response:
    """The server's reply.

    ``kind``:
      - ``result`` — payload is the marshalled return value;
      - ``error`` — payload is the marshalled application exception;
      - ``redirect`` — value is a RemoteRef the caller should retry at
        (server-side load balancing, paper section 4.3);
      - ``drained`` — the member is shutting down; retry elsewhere.
    """

    kind: str
    payload: bytes = b""
    value: Any = None


RequestHandler = Callable[[Request], Response]


@dataclass
class Endpoint:
    """One process/JVM: an address plus the objects exported from it."""

    name: str
    endpoint_id: str = field(
        default_factory=lambda: f"ep-{next(_endpoint_ids)}"
    )
    handlers: dict[str, RequestHandler] = field(default_factory=dict)
    alive: bool = True

    def export(self, object_id: str, handler: RequestHandler) -> None:
        if object_id in self.handlers:
            raise ValueError(f"object already exported: {object_id}")
        self.handlers[object_id] = handler

    def unexport(self, object_id: str) -> None:
        self.handlers.pop(object_id, None)


class Transport(Protocol):
    """Moves requests between endpoints."""

    def add_endpoint(self, name: str) -> Endpoint: ...

    def invoke(self, endpoint_id: str, request: Request) -> Response: ...

    def kill(self, endpoint_id: str) -> None: ...

    def endpoint(self, endpoint_id: str) -> Endpoint: ...


class _TransportBase:
    def __init__(self) -> None:
        self._endpoints: dict[str, Endpoint] = {}
        self._lock = threading.RLock()

    def add_endpoint(self, name: str) -> Endpoint:
        ep = Endpoint(name=name)
        with self._lock:
            self._endpoints[ep.endpoint_id] = ep
        return ep

    def endpoint(self, endpoint_id: str) -> Endpoint:
        with self._lock:
            ep = self._endpoints.get(endpoint_id)
        if ep is None:
            raise ConnectError(f"unknown endpoint: {endpoint_id}")
        return ep

    def kill(self, endpoint_id: str) -> None:
        """Crash an endpoint: subsequent invokes raise ConnectError."""
        with self._lock:
            ep = self._endpoints.get(endpoint_id)
            if ep is not None:
                ep.alive = False

    def revive(self, endpoint_id: str) -> None:
        with self._lock:
            ep = self._endpoints.get(endpoint_id)
            if ep is not None:
                ep.alive = True

    def _resolve(self, endpoint_id: str, request: Request) -> RequestHandler:
        ep = self.endpoint(endpoint_id)
        if not ep.alive:
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        handler = ep.handlers.get(request.object_id)
        if handler is None:
            raise ConnectError(
                f"no object {request.object_id!r} at endpoint {ep.name}"
            )
        return handler


class DirectTransport(_TransportBase):
    """Synchronous, deterministic delivery in the caller's thread.

    ``on_message`` (optional) observes every request — the hook used for
    latency accounting in simulation and message tracing in tests.
    """

    def __init__(
        self, on_message: Callable[[str, Request], None] | None = None
    ) -> None:
        super().__init__()
        self._on_message = on_message
        self.messages_sent = 0

    def invoke(self, endpoint_id: str, request: Request) -> Response:
        handler = self._resolve(endpoint_id, request)
        self.messages_sent += 1
        if self._on_message is not None:
            self._on_message(endpoint_id, request)
        return handler(request)


class ThreadedTransport(_TransportBase):
    """Live transport: per-endpoint dispatch pools, blocking invocations."""

    def __init__(self, workers_per_endpoint: int = 4, timeout: float = 30.0):
        super().__init__()
        self._workers = workers_per_endpoint
        self._timeout = timeout
        self._executors: dict[str, ThreadPoolExecutor] = {}
        self.messages_sent = 0

    def add_endpoint(self, name: str) -> Endpoint:
        ep = super().add_endpoint(name)
        with self._lock:
            self._executors[ep.endpoint_id] = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix=f"erm-{name}",
            )
        return ep

    def invoke(self, endpoint_id: str, request: Request) -> Response:
        handler = self._resolve(endpoint_id, request)
        with self._lock:
            executor = self._executors.get(endpoint_id)
        if executor is None:
            raise ConnectError(f"endpoint {endpoint_id} has no dispatcher")
        self.messages_sent += 1
        future = executor.submit(handler, request)
        try:
            return future.result(timeout=self._timeout)
        except TimeoutError as exc:
            raise RemoteError(
                f"invocation of {request.method!r} timed out after "
                f"{self._timeout}s"
            ) from exc

    def kill(self, endpoint_id: str) -> None:
        super().kill(endpoint_id)
        with self._lock:
            executor = self._executors.pop(endpoint_id, None)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Stop every dispatcher (end of a live session)."""
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.shutdown(wait=False, cancel_futures=True)
