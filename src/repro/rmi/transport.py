"""In-process transports: how requests travel between "JVMs".

Every pool member (and every client) lives at an :class:`Endpoint`, the
stand-in for one JVM at one IP:port.  Two transports move
:class:`Request`/:class:`Response` pairs between endpoints:

- :class:`DirectTransport` — synchronous delivery in the caller's thread.
  Deterministic; used by unit tests and by the simulation experiments.
- :class:`ThreadedTransport` — each endpoint owns a dispatch pool, calls
  block the caller until the remote worker responds (or a timeout trips).
  This is the live mode the runnable examples use: real concurrency, real
  blocking semantics.

The invoke path is engineered to be contention-free (the fast-path
invariants DESIGN.md documents):

- the endpoint and dispatcher maps are *read-mostly*: lookups read a
  plain dict with no lock; membership changes copy-on-write a fresh dict
  under the admin lock and publish it with one atomic reference store;
- per-endpoint state (alive flag, exported handlers) is guarded by that
  endpoint's own lock, so killing one endpoint never stalls traffic to
  the others;
- ``messages_sent`` is a :class:`~repro.concurrency.StripedCounter`, so
  concurrent callers never lose counts and never serialize on it.

Endpoints can be killed to model JVM crashes; invoking a dead or unknown
endpoint raises :class:`ConnectError`, which the elastic stub's retry loop
feeds on (paper section 4.3: "if the sending itself fails, the remote
method invocation throws an exception which is intercepted by the client
stub").  A killed endpoint stays *resolvable*: its dispatcher is gone but
the endpoint record remains, so the failure always surfaces as the
"endpoint ... is down" ConnectError the retry loop expects, never as a
missing-dispatcher internal error.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Protocol

from repro.concurrency import StripedCounter
from repro.errors import ConnectError, RemoteError
from repro.rmi.fastpath import FastPayload

_endpoint_ids = itertools.count(1)


@dataclass(frozen=True)
class Request:
    """One remote method invocation on the wire.

    ``payload`` is the marshalled ``(args, kwargs)``: pickled bytes on
    the pass-by-value path, a :class:`FastPayload` on the zero-copy path.
    """

    object_id: str
    method: str
    payload: bytes | FastPayload
    caller: str = "?"


@dataclass(frozen=True)
class Response:
    """The server's reply.

    ``kind``:
      - ``result`` — payload is the marshalled return value;
      - ``error`` — payload is the marshalled application exception;
      - ``redirect`` — value is a RemoteRef the caller should retry at
        (server-side load balancing, paper section 4.3);
      - ``drained`` — the member is shutting down; retry elsewhere;
      - ``unresolved`` — batch-only: this entry's object was not
        exported at the endpoint.  The client batcher converts it to the
        same :class:`ConnectError` a non-batched call would have raised,
        so the elastic retry loop treats both identically.
    """

    kind: str
    payload: bytes | FastPayload = b""
    value: Any = None


@dataclass(frozen=True)
class BatchRequest:
    """One wire message carrying several logical invocations.

    The client-side batcher coalesces concurrent calls bound for the
    same endpoint into one of these; the transport delivers it as a
    *single* message — one fault-hook consultation, one
    ``messages_sent`` increment — and unbatches on the server side,
    dispatching every entry through its own exported handler so drain,
    redirect, statistics, and errors stay per logical call.

    Entry payloads travel exactly as they were marshalled (pickled
    bytes or zero-copy :class:`FastPayload`); batching never re-wraps
    or copies them.
    """

    entries: tuple[Request, ...]
    caller: str = "?"

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class BatchResponse:
    """Per-entry replies for one :class:`BatchRequest`, in entry order."""

    entries: tuple[Response, ...]

    def __len__(self) -> int:
        return len(self.entries)


RequestHandler = Callable[[Request], Response]
AsyncRequestHandler = Callable[[Request], Awaitable[Response]]


@dataclass
class Endpoint:
    """One process/JVM: an address plus the objects exported from it.

    Each endpoint carries its own lock for state transitions (export,
    unexport, kill, revive); the handler maps are copy-on-write so the
    invoke path reads them without locking.  ``ahandlers`` holds the
    optional coroutine dispatch path a skeleton also exports — only the
    asyncio transport reads it; sync transports use ``handlers`` alone.
    """

    name: str
    endpoint_id: str = field(
        default_factory=lambda: f"ep-{next(_endpoint_ids)}"
    )
    handlers: dict[str, RequestHandler] = field(default_factory=dict)
    ahandlers: dict[str, AsyncRequestHandler] = field(default_factory=dict)
    alive: bool = True
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def export(
        self,
        object_id: str,
        handler: RequestHandler,
        async_handler: AsyncRequestHandler | None = None,
    ) -> None:
        with self.lock:
            if object_id in self.handlers:
                raise ValueError(f"object already exported: {object_id}")
            handlers = dict(self.handlers)
            handlers[object_id] = handler
            self.handlers = handlers
            if async_handler is not None:
                ahandlers = dict(self.ahandlers)
                ahandlers[object_id] = async_handler
                self.ahandlers = ahandlers

    def unexport(self, object_id: str) -> None:
        with self.lock:
            handlers = dict(self.handlers)
            handlers.pop(object_id, None)
            self.handlers = handlers
            if object_id in self.ahandlers:
                ahandlers = dict(self.ahandlers)
                ahandlers.pop(object_id, None)
                self.ahandlers = ahandlers


class Transport(Protocol):
    """Moves requests between endpoints."""

    # True when invocations really block OS threads (the live threaded
    # transport); False for deterministic in-thread delivery.  The
    # batcher picks its dispatch discipline from this.
    concurrent: bool

    def add_endpoint(self, name: str) -> Endpoint: ...

    def invoke(self, endpoint_id: str, request: Request) -> Response: ...

    def invoke_batch(
        self, endpoint_id: str, batch: BatchRequest
    ) -> BatchResponse: ...

    def kill(self, endpoint_id: str) -> None: ...

    def endpoint(self, endpoint_id: str) -> Endpoint: ...


# A fault hook sees every request about to be delivered and may raise
# (ConnectError for a drop, RemoteError for an injected timeout) or sleep
# to model network faults.  Returning normally lets the request through.
FaultHook = Callable[[str, Request], None]


class _TransportBase:
    concurrent = False

    def __init__(self) -> None:
        # Read-mostly map: reads are lock-free, mutations copy-on-write
        # under the admin lock and publish atomically.
        self._endpoints: dict[str, Endpoint] = {}
        self._admin_lock = threading.RLock()
        self._messages = StripedCounter()
        self._fault_hook: FaultHook | None = None
        # Observability: None keeps the invoke path at one extra branch.
        self._tracer = None
        self._obs = None
        # Process pool for @cpu_bound methods; created lazily by the
        # concurrent transports, permanently None on DirectTransport so
        # deterministic tests stay single-process.
        self._cpu_executor = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a :class:`repro.obs.Tracer`.

        Message events record endpoint *names*, never process-global
        ``ep-N`` ids, so seeded traces are identical across runs."""
        self._tracer = tracer

    def set_obs(self, obs) -> None:
        """Attach (or detach, with None) a full observability context.

        Beyond the tracer this unlocks transport-owned metrics —
        dispatch-pool saturation gauges here, loop-lag histograms on the
        asyncio transport.  ``set_tracer`` alone stays available for
        trace-only consumers (determinism tests)."""
        self._obs = obs
        self.set_tracer(None if obs is None else obs.tracer)
        executor = self._cpu_executor
        if executor is not None:
            executor.set_obs(obs)

    def cpu_executor(self):
        """The transport's :class:`~repro.rmi.cpu.CpuExecutor`, or None.

        The base returns whatever was injected with
        :meth:`set_cpu_executor`; skeletons treat None as "run
        ``@cpu_bound`` methods inline" (the DirectTransport behaviour).
        """
        return self._cpu_executor

    def set_cpu_executor(self, executor) -> None:
        """Inject a (possibly shared) cpu executor; None detaches it.

        The transport does not take ownership of an injected executor —
        :meth:`shutdown` only stops pools the transport created itself.
        """
        self._cpu_executor = executor
        self._owns_cpu_executor = False

    def _ensure_cpu_executor(self):
        """Create the pool on first use — endpoints that never export a
        ``@cpu_bound`` method never pay for worker processes."""
        executor = self._cpu_executor
        if executor is None:
            with self._admin_lock:
                executor = self._cpu_executor
                if executor is None:
                    from repro.rmi.cpu import CpuExecutor

                    executor = CpuExecutor(obs=self._obs)
                    self._cpu_executor = executor
                    self._owns_cpu_executor = True
        return executor

    def _shutdown_cpu_executor(self) -> None:
        with self._admin_lock:
            executor = self._cpu_executor
            owned = getattr(self, "_owns_cpu_executor", False)
            self._cpu_executor = None
        if executor is not None and owned:
            executor.shutdown()

    def install_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or clear, with None) a fault-injection hook.

        The hook runs after the endpoint resolves but before delivery
        counts, so an injected drop is indistinguishable on the wire
        from a message that never arrived.
        """
        self._fault_hook = hook

    @property
    def messages_sent(self) -> int:
        """Total requests delivered (exact even under concurrency)."""
        return self._messages.value()

    def add_endpoint(self, name: str) -> Endpoint:
        ep = Endpoint(name=name)
        with self._admin_lock:
            endpoints = dict(self._endpoints)
            endpoints[ep.endpoint_id] = ep
            self._endpoints = endpoints
        return ep

    def endpoint(self, endpoint_id: str) -> Endpoint:
        ep = self._endpoints.get(endpoint_id)
        if ep is None:
            raise ConnectError(f"unknown endpoint: {endpoint_id}")
        return ep

    def kill(self, endpoint_id: str) -> None:
        """Crash an endpoint: subsequent invokes raise ConnectError.

        The endpoint record is kept (dead but resolvable), so callers
        racing the kill still get the "is down" ConnectError."""
        ep = self._endpoints.get(endpoint_id)
        if ep is not None:
            with ep.lock:
                ep.alive = False

    def revive(self, endpoint_id: str) -> None:
        ep = self._endpoints.get(endpoint_id)
        if ep is not None:
            with ep.lock:
                ep.alive = True

    def _resolve(
        self, endpoint_id: str, request: Request
    ) -> tuple[Endpoint, RequestHandler]:
        ep = self.endpoint(endpoint_id)
        if not ep.alive:
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        handler = ep.handlers.get(request.object_id)
        if handler is None:
            raise ConnectError(
                f"no object {request.object_id!r} at endpoint {ep.name}"
            )
        return ep, handler

    def _resolve_endpoint(self, endpoint_id: str) -> Endpoint:
        """Endpoint-level resolution for a batch: alive or ConnectError.

        Per-entry object lookup is deferred to dispatch time so one
        stale entry cannot fail the whole wire message."""
        ep = self.endpoint(endpoint_id)
        if not ep.alive:
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        return ep

    def _batch_prologue(
        self, endpoint_id: str, ep: Endpoint, batch: BatchRequest
    ) -> None:
        """The one-wire-message bookkeeping shared by both transports.

        A batch is a single message: the fault hook is consulted once
        (an injected drop loses the whole batch, exactly as a lost
        packet would), ``messages_sent`` advances by one, and one
        transport trace event records the coalesced size.
        """
        hook = self._fault_hook
        if hook is not None:
            hook(endpoint_id, batch_envelope(batch))
        self._messages.increment()
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport", "batch-message",
                endpoint=ep.name, size=len(batch.entries),
                caller=batch.caller,
            )

    @staticmethod
    def _dispatch_entry(ep: Endpoint, request: Request) -> Response:
        handler = ep.handlers.get(request.object_id)
        if handler is None:
            return Response(kind="unresolved", value=request.object_id)
        return handler(request)


def batch_envelope(batch: BatchRequest) -> Request:
    """The Request-shaped view of a batch that fault hooks observe.

    Hooks see one message per batch (drop rates are per wire message,
    not per logical call); ``method`` carries the coalesced size so
    injector traces stay readable.
    """
    return Request(
        object_id="ermi.batch",
        method=f"ermi.batch[{len(batch.entries)}]",
        payload=b"",
        caller=batch.caller,
    )


class DirectTransport(_TransportBase):
    """Synchronous, deterministic delivery in the caller's thread.

    ``on_message`` (optional) observes every request — the hook used for
    latency accounting in simulation and message tracing in tests.
    """

    def __init__(
        self, on_message: Callable[[str, Request], None] | None = None
    ) -> None:
        super().__init__()
        self._on_message = on_message

    def invoke(self, endpoint_id: str, request: Request) -> Response:
        ep, handler = self._resolve(endpoint_id, request)
        hook = self._fault_hook
        if hook is not None:
            hook(endpoint_id, request)
        self._messages.increment()
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport", "message",
                endpoint=ep.name, method=request.method, caller=request.caller,
            )
        if self._on_message is not None:
            self._on_message(endpoint_id, request)
        return handler(request)

    def invoke_batch(
        self, endpoint_id: str, batch: BatchRequest
    ) -> BatchResponse:
        """Deliver a batch deterministically, one entry at a time.

        Entries dispatch sequentially in the caller's thread and in
        entry order — the deterministic analogue of pipelining: one wire
        message, then per-call processing, with ``on_message`` still
        observing every logical invocation for simulation accounting.
        """
        ep = self._resolve_endpoint(endpoint_id)
        self._batch_prologue(endpoint_id, ep, batch)
        on_message = self._on_message
        responses = []
        for request in batch.entries:
            if on_message is not None:
                on_message(endpoint_id, request)
            responses.append(self._dispatch_entry(ep, request))
        return BatchResponse(entries=tuple(responses))


class _DispatchStats:
    """Saturation counters for one endpoint's dispatch pool.

    Three monotone striped counters; the derived views are
    ``queued = submitted - started`` (jobs waiting for a worker) and
    ``busy = started - finished`` (workers running a job).  Reading
    them is racy by nature — each counter is exact, the difference is a
    point-in-time estimate, clamped at zero for the read-skew case.
    """

    __slots__ = ("submitted", "started", "finished")

    def __init__(self) -> None:
        self.submitted = StripedCounter()
        self.started = StripedCounter()
        self.finished = StripedCounter()

    def queued(self) -> int:
        return max(0, self.submitted.value() - self.started.value())

    def busy(self) -> int:
        return max(0, self.started.value() - self.finished.value())


class ThreadedTransport(_TransportBase):
    """Live transport: per-endpoint dispatch pools, blocking invocations."""

    concurrent = True

    def __init__(self, workers_per_endpoint: int = 4, timeout: float = 30.0):
        super().__init__()
        self._workers = workers_per_endpoint
        self._timeout = timeout
        # Read-mostly, like the endpoint map.
        self._executors: dict[str, ThreadPoolExecutor] = {}
        self._dispatch: dict[str, _DispatchStats] = {}

    def add_endpoint(self, name: str) -> Endpoint:
        ep = super().add_endpoint(name)
        executor = ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=f"erm-{name}",
        )
        with self._admin_lock:
            executors = dict(self._executors)
            executors[ep.endpoint_id] = executor
            self._executors = executors
            dispatch = dict(self._dispatch)
            dispatch[ep.endpoint_id] = _DispatchStats()
            self._dispatch = dispatch
        return ep

    def dispatch_stats(self, endpoint_id: str) -> dict[str, int] | None:
        """Point-in-time saturation view of one endpoint's pool.

        ``queued`` is jobs waiting for a worker, ``busy`` is workers
        running one; ``queued > 0`` with ``busy == workers`` is the
        saturation signature that motivates the asyncio transport.
        """
        stats = self._dispatch.get(endpoint_id)
        if stats is None:
            return None
        return {
            "queued": stats.queued(),
            "busy": stats.busy(),
            "workers": self._workers,
        }

    def _submit_job(
        self,
        executor: ThreadPoolExecutor,
        stats: _DispatchStats | None,
        ep: Endpoint,
        job: Callable[[], Any],
    ):
        """Submit one dispatch job, tracking pool saturation.

        Gauges are refreshed at submit time — the moment queue depth can
        only have grown — so a saturated pool is visible in the metrics
        timeline even between scrapes.
        """
        if stats is None:
            return executor.submit(job)
        stats.submitted.increment()

        def run() -> Any:
            stats.started.increment()
            try:
                return job()
            finally:
                stats.finished.increment()

        future = executor.submit(run)
        obs = self._obs
        if obs is not None:
            registry = obs.registry
            registry.gauge(f"rmi.server.dispatch_queued.{ep.name}").set(
                float(stats.queued())
            )
            registry.gauge(f"rmi.server.dispatch_busy.{ep.name}").set(
                float(stats.busy())
            )
        return future

    def invoke(self, endpoint_id: str, request: Request) -> Response:
        ep, handler = self._resolve(endpoint_id, request)
        executor = self._executors.get(endpoint_id)
        if executor is None:
            # The dispatcher is gone but the endpoint resolved: we raced
            # a kill()/shutdown().  Surface the same ConnectError a dead
            # endpoint raises so retry loops treat both identically.
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        hook = self._fault_hook
        if hook is not None:
            hook(endpoint_id, request)
        self._messages.increment()
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport", "message",
                endpoint=ep.name, method=request.method, caller=request.caller,
            )
        future = self._submit_job(
            executor,
            self._dispatch.get(endpoint_id),
            ep,
            lambda: handler(request),
        )
        try:
            return future.result(timeout=self._timeout)
        except TimeoutError as exc:
            raise RemoteError(
                f"invocation of {request.method!r} timed out after "
                f"{self._timeout}s"
            ) from exc

    def invoke_batch(
        self, endpoint_id: str, batch: BatchRequest
    ) -> BatchResponse:
        """Deliver a batch and dispatch its entries in parallel.

        Entries are split into contiguous chunks, at most one per
        endpoint worker, so a 64-call batch costs ~4 executor
        submissions instead of 64 — that amortization (plus the single
        wire message) is where the batched-throughput win comes from.
        Chunk jobs run entries sequentially and results reassemble in
        entry order.  One deadline covers the whole batch; tripping it
        raises the same :class:`RemoteError` a single slow invocation
        would.
        """
        ep = self._resolve_endpoint(endpoint_id)
        executor = self._executors.get(endpoint_id)
        if executor is None:
            # Raced a kill()/shutdown(); same ConnectError as invoke().
            raise ConnectError(f"endpoint {endpoint_id} ({ep.name}) is down")
        self._batch_prologue(endpoint_id, ep, batch)
        requests = batch.entries
        chunk_count = min(self._workers, len(requests))
        size, extra = divmod(len(requests), chunk_count)
        chunks = []
        start = 0
        for i in range(chunk_count):
            stop = start + size + (1 if i < extra else 0)
            chunks.append(requests[start:stop])
            start = stop

        def run_chunk(chunk: tuple[Request, ...]) -> list[Response]:
            return [self._dispatch_entry(ep, request) for request in chunk]

        stats = self._dispatch.get(endpoint_id)
        futures = [
            self._submit_job(
                executor, stats, ep,
                lambda chunk=chunk: run_chunk(chunk),
            )
            for chunk in chunks
        ]
        deadline = time.monotonic() + self._timeout
        responses: list[Response] = []
        try:
            for future in futures:
                remaining = deadline - time.monotonic()
                responses.extend(future.result(timeout=max(0.0, remaining)))
        except TimeoutError as exc:
            raise RemoteError(
                f"batch of {len(requests)} invocations timed out after "
                f"{self._timeout}s"
            ) from exc
        return BatchResponse(entries=tuple(responses))

    def kill(self, endpoint_id: str) -> None:
        # Mark dead first so racing invokes fail in _resolve before they
        # ever look for the dispatcher.
        super().kill(endpoint_id)
        with self._admin_lock:
            executors = dict(self._executors)
            executor = executors.pop(endpoint_id, None)
            self._executors = executors
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def cpu_executor(self):
        return self._ensure_cpu_executor()

    def shutdown(self) -> None:
        """Stop every dispatcher and the cpu pool (end of a session)."""
        with self._admin_lock:
            executors = list(self._executors.values())
            self._executors = {}
        for executor in executors:
            executor.shutdown(wait=False, cancel_futures=True)
        self._shutdown_cpu_executor()
