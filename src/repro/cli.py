"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``figure 7a|7b|7c..7j|8a|8b`` — regenerate one evaluation figure and
  print its rows/series;
- ``ablation burst|step|policy|provisioning`` — run one ablation study;
- ``analyze <module>:<Class>`` — run the preprocessor's static analysis
  on an elastic class and print the report;
- ``transform <file.py>`` — apply the Figure 6 source rewrite and print
  (or write) the transformed module;
- ``bench`` — run the RMI benchmark suites (hot path + batching +
  async transport + sharded routing) and emit their ``BENCH_*.json``
  reports (schema documented in README.md);
- ``chaos`` — run the scripted fault-injection scenario and emit a
  ``CHAOS_report.json`` recovery-latency report (schema
  ``repro.chaos/v1``); exits non-zero if any failure leaked to the
  client or the pool did not recover to its minimum size.
- ``trace`` — run the seeded traced scenario (``repro.obs``) and write
  the structured event timeline as JSONL; byte-identical across runs
  with the same seed.
- ``metrics`` — fold a trace (a saved JSONL file, or a fresh seeded
  run) into the ``repro.obs/v1`` summary document, whose agility /
  provisioning / QoS numbers come from the same ``repro.metrics``
  trackers the experiments use.
- ``scenario`` — run one scenario from the open-loop matrix (or
  ``all``/``list``): seeded, replayable, emitting a ``repro.obs/v1``
  summary with tail-latency, agility, and QoS sections.  The same
  matrix feeds ``bench --suite scenario`` and its committed
  ``BENCH_scenario_*.json`` baselines.
"""

from __future__ import annotations

import argparse
import importlib
import sys


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import (
        FIGURE7_PANELS,
        figure7_agility,
        figure7a_workload,
        figure7b_workload,
        figure8_provisioning,
        print_agility_panel,
        print_provisioning_figure,
    )

    fig = args.id
    if fig in ("7a", "7b"):
        trace = (
            figure7a_workload(args.app)
            if fig == "7a"
            else figure7b_workload(args.app)
        )
        print(f"Figure {fig} ({args.app}): minute -> rate")
        for minute, rate in trace[:: max(1, len(trace) // 25)]:
            print(f"  {minute:6.0f}  {rate:12.0f}")
        return 0
    if fig in FIGURE7_PANELS:
        panel = figure7_agility(fig, seed=args.seed)
        print(print_agility_panel(panel))
        return 0
    if fig in ("8a", "8b"):
        workload = "abrupt" if fig == "8a" else "cyclic"
        print(print_provisioning_figure(
            figure8_provisioning(workload, seed=args.seed)
        ))
        return 0
    print(f"unknown figure: {fig}", file=sys.stderr)
    return 2


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    runners = {
        "burst": ablations.burst_interval_ablation,
        "step": ablations.max_step_ablation,
        "policy": ablations.policy_ablation,
        "provisioning": ablations.provisioning_ablation,
    }
    results = runners[args.which](
        app=args.app, workload=args.workload, seed=args.seed
    )
    print(f"{args.which} ablation ({args.app}, {args.workload}):")
    for key, result in results.items():
        print(f"  {str(key):<24} avg agility {result.average_agility:6.2f}  "
              f"max {result.max_agility:5.1f}  "
              f"zero {100 * result.zero_fraction:3.0f}%")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.preprocessor import analyze

    module_name, _, class_name = args.target.partition(":")
    if not class_name:
        print("target must be <module>:<Class>", file=sys.stderr)
        return 2
    module = importlib.import_module(module_name)
    cls = getattr(module, class_name)
    report = analyze(cls)
    print(report.summary())
    return 0 if report.ok() else 1


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.preprocessor import transform_source

    with open(args.file) as handle:
        source = handle.read()
    result = transform_source(source)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result + "\n")
        print(f"wrote {args.output}")
    else:
        print(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ElasticRMI reproduction: experiments and tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate an evaluation figure")
    figure.add_argument("id", help="7a, 7b, 7c-7j, 8a, or 8b")
    figure.add_argument("--app", default="marketcetera",
                        help="application for 7a/7b traces")
    figure.add_argument("--seed", type=int, default=0)
    figure.set_defaults(fn=_cmd_figure)

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument(
        "which", choices=("burst", "step", "policy", "provisioning")
    )
    ablation.add_argument("--app", default="marketcetera")
    ablation.add_argument("--workload", default="abrupt",
                          choices=("abrupt", "cyclic"))
    ablation.add_argument("--seed", type=int, default=0)
    ablation.set_defaults(fn=_cmd_ablation)

    analyze_cmd = sub.add_parser(
        "analyze", help="static analysis of an elastic class"
    )
    analyze_cmd.add_argument("target", help="<module>:<Class>")
    analyze_cmd.set_defaults(fn=_cmd_analyze)

    transform = sub.add_parser(
        "transform", help="apply the Figure 6 source rewrite"
    )
    transform.add_argument("file")
    transform.add_argument("-o", "--output", default=None)
    transform.set_defaults(fn=_cmd_transform)

    report = sub.add_parser(
        "report", help="run the full evaluation and emit a markdown report"
    )
    report.add_argument("-o", "--output", default=None)
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(fn=_cmd_report)

    bench_cmd = sub.add_parser(
        "bench",
        help="run the RMI benchmark suites "
        "(hot-path + batching + async + shard + store + cpu)",
    )
    bench_cmd.add_argument(
        "--suite",
        choices=(
            "all", "hotpath", "batching", "async", "shard", "store",
            "cpu", "scenario",
        ),
        default="all",
        help="which suite(s) to run (default: all)",
    )
    bench_cmd.add_argument(
        "-o", "--output", default="BENCH_rmi_hotpath.json",
        help="hot-path report path (default: BENCH_rmi_hotpath.json)",
    )
    bench_cmd.add_argument(
        "--batching-output", default="BENCH_rmi_batching.json",
        help="batching report path (default: BENCH_rmi_batching.json)",
    )
    bench_cmd.add_argument(
        "--async-output", default="BENCH_rmi_async.json",
        help="async-transport report path (default: BENCH_rmi_async.json)",
    )
    bench_cmd.add_argument(
        "--shard-output", default="BENCH_rmi_shard.json",
        help="sharded-routing report path (default: BENCH_rmi_shard.json)",
    )
    bench_cmd.add_argument(
        "--store-output", default="BENCH_rmi_store.json",
        help="store watch/cache report path (default: BENCH_rmi_store.json)",
    )
    bench_cmd.add_argument(
        "--cpu-output", default="BENCH_rmi_cpu.json",
        help="cpu process-pool report path (default: BENCH_rmi_cpu.json)",
    )
    bench_cmd.add_argument(
        "--scale", type=float, default=None,
        help="iteration scale factor (default: ERMI_BENCH_SCALE or 1.0)",
    )
    bench_cmd.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare the hot-path run against a committed baseline "
        "report; exit non-zero on a regression beyond the tolerance",
    )
    bench_cmd.add_argument(
        "--check-batching", metavar="BASELINE", default=None,
        help="compare the batching run against a committed baseline report",
    )
    bench_cmd.add_argument(
        "--check-async", metavar="BASELINE", default=None,
        help="compare the async-transport run against a committed baseline",
    )
    bench_cmd.add_argument(
        "--check-shard", metavar="BASELINE", default=None,
        help="compare the sharded-routing run against a committed baseline",
    )
    bench_cmd.add_argument(
        "--check-store", metavar="BASELINE", default=None,
        help="compare the store watch/cache run against a committed baseline",
    )
    bench_cmd.add_argument(
        "--check-cpu", metavar="BASELINE", default=None,
        help="compare the cpu process-pool run against a committed "
        "baseline (always normalized per gate family — thread / process "
        "/ payload — so 1-core and 4-core machines compare cleanly)",
    )
    bench_cmd.add_argument(
        "--scenario-dir", metavar="DIR", default=".",
        help="directory for BENCH_scenario_*.json reports (default: .)",
    )
    bench_cmd.add_argument(
        "--check-scenario", metavar="DIR", default=None,
        help="compare the scenario matrix against the committed "
        "BENCH_scenario_*.json baselines in DIR (raw comparison — "
        "scenario metrics are virtual-time and machine-independent)",
    )
    bench_cmd.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional throughput drop per record (default 0.30)",
    )
    bench_cmd.add_argument(
        "--normalize", action="store_true",
        help="normalize each record by the run's anchor record "
        "(marshal-pickle / batch-off-c1 / threaded-c64 / shard-flat-c256 "
        "/ epoch-poll-c1) before comparing — absorbs machine-speed "
        "differences in CI",
    )
    bench_cmd.set_defaults(fn=_cmd_bench)

    chaos_cmd = sub.add_parser(
        "chaos", help="run the scripted fault-injection scenario"
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--duration", type=float, default=60.0,
        help="virtual seconds to simulate (default: 60)",
    )
    chaos_cmd.add_argument(
        "-o", "--output", default="CHAOS_report.json",
        help="report path (default: CHAOS_report.json)",
    )
    chaos_cmd.set_defaults(fn=_cmd_chaos)

    trace_cmd = sub.add_parser(
        "trace", help="run the seeded traced scenario, write a JSONL trace"
    )
    trace_cmd.add_argument("--seed", type=int, default=0)
    trace_cmd.add_argument(
        "--duration", type=float, default=90.0,
        help="virtual seconds to simulate (default: 90)",
    )
    trace_cmd.add_argument(
        "-o", "--output", default="TRACE_events.jsonl",
        help="trace path (default: TRACE_events.jsonl)",
    )
    trace_cmd.add_argument(
        "--summary", default=None, metavar="PATH",
        help="also write the repro.obs/v1 summary JSON here",
    )
    trace_cmd.set_defaults(fn=_cmd_trace)

    metrics_cmd = sub.add_parser(
        "metrics", help="fold a trace into the repro.obs/v1 summary"
    )
    metrics_cmd.add_argument(
        "-i", "--input", default=None, metavar="TRACE",
        help="JSONL trace to summarize (default: run a fresh seeded scenario)",
    )
    metrics_cmd.add_argument("--seed", type=int, default=0)
    metrics_cmd.add_argument(
        "--duration", type=float, default=90.0,
        help="virtual seconds when running fresh (default: 90)",
    )
    metrics_cmd.add_argument(
        "-o", "--output", default=None,
        help="write the summary JSON here instead of stdout",
    )
    metrics_cmd.set_defaults(fn=_cmd_metrics)

    scenario_cmd = sub.add_parser(
        "scenario",
        help="run an open-loop load scenario (seeded, replayable)",
    )
    scenario_cmd.add_argument(
        "name",
        help="scenario name, 'all' for the whole matrix, or 'list'",
    )
    scenario_cmd.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's committed seed",
    )
    scenario_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="rate x scale, service / scale: same dynamics, fewer "
        "simulated events (default 1.0)",
    )
    scenario_cmd.add_argument(
        "--mode", choices=("sim", "live"), default="sim",
        help="virtual-time simulation (default) or wall-clock live run "
        "on the asyncio transport",
    )
    scenario_cmd.add_argument(
        "--live-duration", type=float, default=8.0,
        help="wall seconds the compressed live replay runs (default 8)",
    )
    scenario_cmd.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the repro.obs/v1 summary JSON here (single scenario)",
    )
    scenario_cmd.add_argument(
        "--summary-dir", default=None, metavar="DIR",
        help="write each scenario's summary to DIR/SCENARIO_<name>.json",
    )
    scenario_cmd.set_defaults(fn=_cmd_scenario)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import run_full_evaluation

    evaluation = run_full_evaluation(seed=args.seed)
    text = evaluation.to_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0 if all(held for _, held in evaluation.claims()) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.benchreport import (
        compare_cpu_reports,
        compare_reports,
        format_table,
        load_report,
        run_async_suite,
        run_batching_suite,
        run_cpu_suite,
        run_hotpath_suite,
        run_shard_suite,
        run_store_suite,
        write_report,
    )

    # Load baselines up front: when --output and --check name the same
    # file, writing first would silently compare the run to itself.
    runs = []  # (suite, records, extra, output, baseline, anchor)
    if args.suite in ("all", "hotpath"):
        baseline = None if args.check is None else load_report(args.check)
        records = run_hotpath_suite(scale=args.scale)
        runs.append(
            ("rmi_hotpath", records, None, args.output, baseline,
             "marshal-pickle")
        )
    if args.suite in ("all", "batching"):
        baseline = (
            None if args.check_batching is None
            else load_report(args.check_batching)
        )
        extra: dict = {}
        records = run_batching_suite(scale=args.scale, extra_out=extra)
        runs.append(
            ("rmi_batching", records, extra, args.batching_output, baseline,
             "batch-off-c1")
        )
    if args.suite in ("all", "async"):
        baseline = (
            None if args.check_async is None
            else load_report(args.check_async)
        )
        extra = {}
        records = run_async_suite(scale=args.scale, extra_out=extra)
        runs.append(
            ("rmi_async", records, extra, args.async_output, baseline,
             "threaded-c64")
        )
    if args.suite in ("all", "shard"):
        baseline = (
            None if args.check_shard is None
            else load_report(args.check_shard)
        )
        extra = {}
        records = run_shard_suite(scale=args.scale, extra_out=extra)
        runs.append(
            ("rmi_shard", records, extra, args.shard_output, baseline,
             "shard-flat-c256")
        )
    if args.suite in ("all", "store"):
        baseline = (
            None if args.check_store is None
            else load_report(args.check_store)
        )
        extra = {}
        records = run_store_suite(scale=args.scale, extra_out=extra)
        runs.append(
            ("rmi_store", records, extra, args.store_output, baseline,
             "epoch-poll-c1")
        )
    if args.suite in ("all", "cpu"):
        baseline = (
            None if args.check_cpu is None
            else load_report(args.check_cpu)
        )
        extra = {}
        records = run_cpu_suite(scale=args.scale, extra_out=extra)
        # anchor=None marks the family-normalized cpu comparison below.
        runs.append(
            ("rmi_cpu", records, extra, args.cpu_output, baseline, None)
        )

    status = 0
    for suite, records, extra, output, baseline, anchor in runs:
        write_report(output, suite, records, extra=extra)
        print(format_table(records))
        print(f"wrote {output}")
        if baseline is None:
            continue
        if anchor is None:
            # The cpu suite's thread-vs-process ratios depend on the
            # machine's core count, so its gate always normalizes
            # within each record family (--normalize is implied).
            result = compare_cpu_reports(
                baseline, records, tolerance=args.tolerance
            )
        else:
            result = compare_reports(
                baseline,
                records,
                tolerance=args.tolerance,
                normalize=args.normalize,
                anchor=anchor,
            )
        for line in result.lines:
            print(line)
        if not result.ok:
            failed = (
                result.regressions
                + [f"{m} (missing)" for m in result.missing]
            )
            print(
                f"REGRESSION ({suite}): {len(failed)} record(s) beyond "
                f"-{args.tolerance:.0%}: {', '.join(failed)}",
                file=sys.stderr,
            )
            status = 1
        else:
            print(f"bench check OK ({suite})")

    # The scenario suite writes one deterministic report per scenario
    # (BENCH_scenario_<name>.json under --scenario-dir), so it runs as
    # its own block rather than through the single-file loop above.
    if args.suite in ("all", "scenario"):
        from repro.scenarios.bench import (
            check_scenario_reports,
            run_scenario_suite,
            scenario_report_path,
        )

        results = run_scenario_suite(
            scale=args.scale, out_dir=args.scenario_dir
        )
        for name, result, _doc in results:
            print(result.describe())
            print(f"wrote {scenario_report_path(args.scenario_dir, name)}")
        if args.check_scenario is not None:
            ok, lines = check_scenario_reports(
                results, args.check_scenario, tolerance=args.tolerance
            )
            for line in lines:
                print(line)
            if ok:
                print("bench check OK (scenario)")
            else:
                print(
                    "REGRESSION (scenario): drift beyond "
                    f"-{args.tolerance:.0%} vs {args.check_scenario}",
                    file=sys.stderr,
                )
                status = 1
    return status


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily (like every command) — and scenario in particular
    # must stay out of repro.faults.__init__ to avoid an import cycle
    # with repro.core.
    from repro.faults.scenario import run_chaos_scenario

    report = run_chaos_scenario(seed=args.seed, duration=args.duration)
    with open(args.output, "w") as handle:
        handle.write(report.to_json() + "\n")
    print(report.summary())
    print(f"wrote {args.output}")
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    # Lazy import; repro.obs.scenario imports repro.core (layering note
    # in that module's docstring).
    from repro.obs.scenario import run_traced_scenario

    run = run_traced_scenario(seed=args.seed, duration=args.duration)
    with open(args.output, "w") as handle:
        handle.write(run.to_jsonl())
    if args.summary:
        with open(args.summary, "w") as handle:
            handle.write(run.summary_json() + "\n")
    print(run.describe())
    print(f"wrote {args.output}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import load_trace, summarize_trace, validate_summary

    if args.input is not None:
        events = load_trace(args.input)
        summary = summarize_trace(events)
    else:
        from repro.obs.scenario import run_traced_scenario

        run = run_traced_scenario(seed=args.seed, duration=args.duration)
        summary = run.summary()
    problems = validate_summary(summary)
    if problems:
        for problem in problems:
            print(f"invalid summary: {problem}", file=sys.stderr)
        return 1
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs.export import validate_summary
    from repro.scenarios import SCENARIOS, run_scenario

    if args.name == "list":
        print(f"{'name':<18} {'tenants':<28} {'users':>10} {'dur s':>7}")
        for spec in SCENARIOS.values():
            tenants = ",".join(t.name for t in spec.tenants)
            print(
                f"{spec.name:<18} {tenants:<28} {spec.users:>10} "
                f"{spec.duration_s:>7.0f}  {spec.title}"
            )
        return 0
    names = list(SCENARIOS) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    if args.output is not None and len(names) > 1:
        print("-o works with a single scenario; use --summary-dir",
              file=sys.stderr)
        return 2
    status = 0
    for name in names:
        result = run_scenario(
            name,
            seed=args.seed,
            scale=args.scale,
            mode=args.mode,
            live_duration_s=args.live_duration,
        )
        print(result.describe())
        summary = result.summary()
        problems = validate_summary(summary)
        for problem in problems:
            print(f"invalid summary ({name}): {problem}", file=sys.stderr)
            status = 1
        text = json.dumps(summary, indent=2, sort_keys=True)
        if args.output is not None:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        if args.summary_dir is not None:
            os.makedirs(args.summary_dir, exist_ok=True)
            path = os.path.join(
                args.summary_dir, f"SCENARIO_{name}.json"
            )
            with open(path, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {path}")
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
