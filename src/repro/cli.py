"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``figure 7a|7b|7c..7j|8a|8b`` — regenerate one evaluation figure and
  print its rows/series;
- ``ablation burst|step|policy|provisioning`` — run one ablation study;
- ``analyze <module>:<Class>`` — run the preprocessor's static analysis
  on an elastic class and print the report;
- ``transform <file.py>`` — apply the Figure 6 source rewrite and print
  (or write) the transformed module;
- ``bench`` — run the RMI hot-path benchmark suite and emit a
  ``BENCH_*.json`` report (schema documented in README.md);
- ``chaos`` — run the scripted fault-injection scenario and emit a
  ``CHAOS_report.json`` recovery-latency report (schema
  ``repro.chaos/v1``); exits non-zero if any failure leaked to the
  client or the pool did not recover to its minimum size.
"""

from __future__ import annotations

import argparse
import importlib
import sys


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import (
        FIGURE7_PANELS,
        figure7_agility,
        figure7a_workload,
        figure7b_workload,
        figure8_provisioning,
        print_agility_panel,
        print_provisioning_figure,
    )

    fig = args.id
    if fig in ("7a", "7b"):
        trace = (
            figure7a_workload(args.app)
            if fig == "7a"
            else figure7b_workload(args.app)
        )
        print(f"Figure {fig} ({args.app}): minute -> rate")
        for minute, rate in trace[:: max(1, len(trace) // 25)]:
            print(f"  {minute:6.0f}  {rate:12.0f}")
        return 0
    if fig in FIGURE7_PANELS:
        panel = figure7_agility(fig, seed=args.seed)
        print(print_agility_panel(panel))
        return 0
    if fig in ("8a", "8b"):
        workload = "abrupt" if fig == "8a" else "cyclic"
        print(print_provisioning_figure(
            figure8_provisioning(workload, seed=args.seed)
        ))
        return 0
    print(f"unknown figure: {fig}", file=sys.stderr)
    return 2


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    runners = {
        "burst": ablations.burst_interval_ablation,
        "step": ablations.max_step_ablation,
        "policy": ablations.policy_ablation,
        "provisioning": ablations.provisioning_ablation,
    }
    results = runners[args.which](
        app=args.app, workload=args.workload, seed=args.seed
    )
    print(f"{args.which} ablation ({args.app}, {args.workload}):")
    for key, result in results.items():
        print(f"  {str(key):<24} avg agility {result.average_agility:6.2f}  "
              f"max {result.max_agility:5.1f}  "
              f"zero {100 * result.zero_fraction:3.0f}%")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.preprocessor import analyze

    module_name, _, class_name = args.target.partition(":")
    if not class_name:
        print("target must be <module>:<Class>", file=sys.stderr)
        return 2
    module = importlib.import_module(module_name)
    cls = getattr(module, class_name)
    report = analyze(cls)
    print(report.summary())
    return 0 if report.ok() else 1


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.preprocessor import transform_source

    with open(args.file) as handle:
        source = handle.read()
    result = transform_source(source)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result + "\n")
        print(f"wrote {args.output}")
    else:
        print(result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ElasticRMI reproduction: experiments and tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate an evaluation figure")
    figure.add_argument("id", help="7a, 7b, 7c-7j, 8a, or 8b")
    figure.add_argument("--app", default="marketcetera",
                        help="application for 7a/7b traces")
    figure.add_argument("--seed", type=int, default=0)
    figure.set_defaults(fn=_cmd_figure)

    ablation = sub.add_parser("ablation", help="run an ablation study")
    ablation.add_argument(
        "which", choices=("burst", "step", "policy", "provisioning")
    )
    ablation.add_argument("--app", default="marketcetera")
    ablation.add_argument("--workload", default="abrupt",
                          choices=("abrupt", "cyclic"))
    ablation.add_argument("--seed", type=int, default=0)
    ablation.set_defaults(fn=_cmd_ablation)

    analyze_cmd = sub.add_parser(
        "analyze", help="static analysis of an elastic class"
    )
    analyze_cmd.add_argument("target", help="<module>:<Class>")
    analyze_cmd.set_defaults(fn=_cmd_analyze)

    transform = sub.add_parser(
        "transform", help="apply the Figure 6 source rewrite"
    )
    transform.add_argument("file")
    transform.add_argument("-o", "--output", default=None)
    transform.set_defaults(fn=_cmd_transform)

    report = sub.add_parser(
        "report", help="run the full evaluation and emit a markdown report"
    )
    report.add_argument("-o", "--output", default=None)
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(fn=_cmd_report)

    bench_cmd = sub.add_parser(
        "bench", help="run the RMI hot-path benchmark suite"
    )
    bench_cmd.add_argument(
        "-o", "--output", default="BENCH_rmi_hotpath.json",
        help="report path (default: BENCH_rmi_hotpath.json)",
    )
    bench_cmd.add_argument(
        "--scale", type=float, default=None,
        help="iteration scale factor (default: ERMI_BENCH_SCALE or 1.0)",
    )
    bench_cmd.set_defaults(fn=_cmd_bench)

    chaos_cmd = sub.add_parser(
        "chaos", help="run the scripted fault-injection scenario"
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--duration", type=float, default=60.0,
        help="virtual seconds to simulate (default: 60)",
    )
    chaos_cmd.add_argument(
        "-o", "--output", default="CHAOS_report.json",
        help="report path (default: CHAOS_report.json)",
    )
    chaos_cmd.set_defaults(fn=_cmd_chaos)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import run_full_evaluation

    evaluation = run_full_evaluation(seed=args.seed)
    text = evaluation.to_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0 if all(held for _, held in evaluation.claims()) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.benchreport import (
        format_table,
        run_hotpath_suite,
        write_report,
    )

    records = run_hotpath_suite(scale=args.scale)
    write_report(args.output, "rmi_hotpath", records)
    print(format_table(records))
    print(f"wrote {args.output}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily (like every command) — and scenario in particular
    # must stay out of repro.faults.__init__ to avoid an import cycle
    # with repro.core.
    from repro.faults.scenario import run_chaos_scenario

    report = run_chaos_scenario(seed=args.seed, duration=args.duration)
    with open(args.output, "w") as handle:
        handle.write(report.to_json() + "\n")
    print(report.summary())
    print(f"wrote {args.output}")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
