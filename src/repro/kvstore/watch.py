"""Push-based change notifications for :class:`HyperStore`.

The store's elasticity loop (Decider -> sentinel -> epoch -> stub) is
coordinated entirely through store keys, so every client used to poll
those keys on its hot path.  Watches invert that: a mutation enqueues a
versioned :class:`WatchEvent` for every matching subscription *while the
stripe lock is still held* (which is what guarantees per-key version
order), and delivery runs strictly *after* the lock is released, so a
subscriber callback can never deadlock against — or stall — the store.

Delivery uses a combiner: whichever writer thread flips a subscription's
queue from idle to non-empty becomes responsible for draining it, and
concurrent writers just append.  Queues are bounded (``ERMI_WATCH_QUEUE``);
on overflow the oldest event is dropped and a ``gap`` event is delivered
in its place so caches know to re-read instead of trusting a hole in the
version stream.  ``fail_node``/``recover_node`` fan out ``error`` events
so subscribers fall back to direct (leased) reads cleanly.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.rmi.envcfg import env_int

DEFAULT_WATCH_QUEUE = 1024

#: Event kinds, in the order a subscriber should be prepared to see them.
PUT = "put"
DELETE = "delete"
ERROR = "error"
GAP = "gap"


def watch_queue_from_env() -> int:
    """Per-subscription event queue depth (``ERMI_WATCH_QUEUE``)."""
    return env_int("ERMI_WATCH_QUEUE", DEFAULT_WATCH_QUEUE)


@dataclass(frozen=True)
class WatchEvent:
    """One versioned store change as seen by a subscriber.

    ``kind`` is ``put``/``delete`` for ordinary mutations (``version`` is
    the key's new write version — monotonic even across delete/recreate),
    ``error`` when the owning store node failed or recovered (subscribers
    should fall back to direct reads), and ``gap`` when the subscription's
    bounded queue overflowed and events were lost (subscribers must
    re-read rather than trust their last-seen version).
    """

    key: str
    kind: str
    value: Any = None
    version: int = 0
    error: BaseException | None = field(default=None, compare=False)


class WatchSubscription:
    """One registered callback plus its bounded, ordered event queue.

    ``enqueue`` may be called with a stripe lock held; ``drain`` never
    is.  The ``_draining`` flag implements the combiner: exactly one
    thread delivers at a time, so callbacks observe events in enqueue
    (= version) order without a dedicated delivery thread.
    """

    __slots__ = (
        "_hub",
        "callback",
        "key",
        "prefix",
        "_depth",
        "_queue",
        "_lock",
        "_draining",
        "_gap",
        "cancelled",
        "delivered",
        "dropped",
        "callback_errors",
    )

    def __init__(
        self,
        hub: "WatchHub",
        callback: Callable[[WatchEvent], None],
        key: str | None = None,
        prefix: str | None = None,
        depth: int | None = None,
    ) -> None:
        self._hub = hub
        self.callback = callback
        self.key = key
        self.prefix = prefix
        self._depth = watch_queue_from_env() if depth is None else depth
        self._queue: deque[WatchEvent] = deque()
        self._lock = threading.Lock()
        self._draining = False
        self._gap = False
        self.cancelled = False
        self.delivered = 0
        self.dropped = 0
        self.callback_errors = 0

    def matches(self, key: str) -> bool:
        if self.key is not None:
            return key == self.key
        return self.prefix is not None and key.startswith(self.prefix)

    def enqueue(self, event: WatchEvent) -> bool:
        """Append ``event``; True when the caller became the combiner and
        must call :meth:`drain` once it holds no store locks."""
        with self._lock:
            if self.cancelled:
                return False
            if len(self._queue) >= self._depth:
                self._queue.popleft()
                self.dropped += 1
                self._gap = True
                self._hub._count_dropped()
            self._queue.append(event)
            if self._draining:
                return False
            self._draining = True
            return True

    def drain(self) -> None:
        """Deliver queued events in order.  Runs with no store lock held;
        exits once the queue is observed empty under the queue lock."""
        while True:
            with self._lock:
                if self._gap:
                    # The hole precedes everything still queued, so the
                    # gap marker goes out first.
                    self._gap = False
                    event = WatchEvent(self.key or self.prefix or "", GAP)
                elif self._queue:
                    event = self._queue.popleft()
                else:
                    self._draining = False
                    return
                if self.cancelled:
                    self._queue.clear()
                    self._draining = False
                    return
            try:
                self.callback(event)
            except Exception:
                # A subscriber bug must never break the writer that
                # happens to be draining on its behalf.
                self.callback_errors += 1
            else:
                self.delivered += 1
                self._hub._count_delivered()

    def cancel(self) -> None:
        self._hub._remove(self)
        with self._lock:
            self.cancelled = True
            self._queue.clear()


class WatchHub:
    """The store-side registry of subscriptions.

    The store checks :attr:`active` (a plain bool, read lock-free) before
    doing any watch work, so an unwatched store pays one branch per
    mutation.  ``enqueue`` runs under the mutating key's stripe lock and
    only appends to per-subscription queues; ``kick`` runs after the lock
    is released and performs the actual callback delivery.
    """

    def __init__(self, depth: int | None = None) -> None:
        self._depth = depth
        self._lock = threading.Lock()
        self._exact: dict[str, list[WatchSubscription]] = {}
        self._prefix: list[WatchSubscription] = []
        self._obs: Any = None
        self.active = False

    # -- registration -------------------------------------------------------

    def watch(
        self, key: str, callback: Callable[[WatchEvent], None]
    ) -> WatchSubscription:
        sub = WatchSubscription(self, callback, key=key, depth=self._depth)
        with self._lock:
            self._exact.setdefault(key, []).append(sub)
            self.active = True
        return sub

    def watch_prefix(
        self, prefix: str, callback: Callable[[WatchEvent], None]
    ) -> WatchSubscription:
        sub = WatchSubscription(self, callback, prefix=prefix, depth=self._depth)
        with self._lock:
            self._prefix.append(sub)
            self.active = True
        return sub

    def _remove(self, sub: WatchSubscription) -> None:
        with self._lock:
            if sub.key is not None:
                subs = self._exact.get(sub.key)
                if subs is not None:
                    try:
                        subs.remove(sub)
                    except ValueError:
                        pass
                    if not subs:
                        del self._exact[sub.key]
            else:
                try:
                    self._prefix.remove(sub)
                except ValueError:
                    pass
            self.active = bool(self._exact or self._prefix)

    def subscription_count(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._exact.values()) + len(self._prefix)

    # -- event flow ---------------------------------------------------------

    def subscriptions_for(self, key: str) -> list[WatchSubscription]:
        with self._lock:
            subs = list(self._exact.get(key, ()))
            for sub in self._prefix:
                if key.startswith(sub.prefix):  # type: ignore[arg-type]
                    subs.append(sub)
            return subs

    def enqueue(
        self, key: str, kind: str, value: Any, version: int
    ) -> list[WatchSubscription] | None:
        """Queue an event for every matching subscription.  Safe to call
        with the key's stripe lock held; returns the subscriptions whose
        combiner duty fell to this thread (kick them after unlocking)."""
        subs = self.subscriptions_for(key)
        if not subs:
            return None
        event = WatchEvent(key, kind, value, version)
        kicks = [sub for sub in subs if sub.enqueue(event)]
        return kicks or None

    def kick(self, subs: list[WatchSubscription]) -> None:
        """Drain the given subscriptions.  Must not hold store locks."""
        for sub in subs:
            sub.drain()

    def broadcast_error(
        self,
        error: BaseException,
        owner: Callable[[str], str] | None = None,
        node: str | None = None,
    ) -> None:
        """Fan an ``error`` event out to subscriptions that could be
        affected by ``node`` failing/recovering (all of them when no
        owner function is given — prefix watches always qualify since a
        prefix can span partitions).  Called with no store locks held,
        so delivery happens inline."""
        with self._lock:
            subs = [s for bucket in self._exact.values() for s in bucket]
            subs.extend(self._prefix)
        kicks = []
        for sub in subs:
            if (
                owner is not None
                and node is not None
                and sub.key is not None
                and owner(sub.key) != node
            ):
                continue
            event = WatchEvent(sub.key or sub.prefix or "", ERROR, error=error)
            if sub.enqueue(event):
                kicks.append(sub)
        self.kick(kicks)

    # -- observability ------------------------------------------------------

    def set_obs(self, obs: Any) -> None:
        """Wire a metrics sink — either a ``MetricsRegistry`` or an
        ``Observability`` wrapping one; ``kvstore.watch.delivered`` /
        ``kvstore.watch.dropped`` counters appear on it."""
        self._obs = getattr(obs, "registry", obs)

    def _count_delivered(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.counter("kvstore.watch.delivered").inc()

    def _count_dropped(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.counter("kvstore.watch.dropped").inc()


class AsyncWatchQueue:
    """Bridge watch events onto an asyncio event loop.

    Register :attr:`callback` as the subscription callback (it is safe to
    call from any thread — it trampolines through
    ``loop.call_soon_threadsafe``) and consume events with ``await
    queue.get()`` on the loop.  With a ``maxsize`` the oldest event is
    displaced on overflow and the next delivered event is a ``gap``, so a
    slow consumer degrades exactly like a slow sync subscriber.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop | None = None, maxsize: int = 0
    ) -> None:
        if loop is None:
            from repro.rmi.aio import loop_runtime

            loop = loop_runtime().loop
        self.loop = loop
        self.queue: asyncio.Queue[WatchEvent] = asyncio.Queue(maxsize)
        self.dropped = 0
        self._gap = False

    def callback(self, event: WatchEvent) -> None:
        self.loop.call_soon_threadsafe(self._put, event)

    def _put(self, event: WatchEvent) -> None:
        if self._gap:
            self._gap = False
            self._offer(WatchEvent(event.key, GAP))
        self._offer(event)

    def _offer(self, event: WatchEvent) -> None:
        try:
            self.queue.put_nowait(event)
        except asyncio.QueueFull:
            self.queue.get_nowait()
            self.dropped += 1
            self._gap = True
            self.queue.put_nowait(event)

    async def get(self) -> WatchEvent:
        return await self.queue.get()

    def empty(self) -> bool:
        return self.queue.empty()
