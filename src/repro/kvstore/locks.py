"""Distributed locks over the store.

The ElasticRMI preprocessor turns ``synchronized`` methods into a
lock/unlock pair on a per-class named lock (Figure 6: ``ERMI.lock("C1")``).
This module provides those locks with the properties a distributed setting
needs:

- **ownership** — only the holder can unlock;
- **reentrancy** — the holder may re-acquire (hold count);
- **deadlines** — acquisition can give up after a timeout rather than spin
  forever (the paper's generated code spins; we keep a spin-compatible
  ``try_lock`` plus a blocking ``lock`` with deadline for library users);
- **fencing tokens** — every successful acquisition returns a monotonically
  increasing token, so downstream systems can reject stale holders;
- **lease expiry** — optional TTL so a crashed holder cannot wedge the
  pool (failures propagate, but locks must not leak).

Lock state lives in the same conceptual store as the data; the manager
keeps it in process memory guarded by a condition variable, which gives
exactly the strong consistency a single HyperDex lock object would.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import LockNotHeldError, LockTimeoutError
from repro.sim.clock import Clock, WallClock


@dataclass
class Lease:
    """A granted lock: who holds it, how many times, until when."""

    name: str
    owner: str
    token: int
    hold_count: int
    expires_at: float | None  # None = no expiry


class LockManager:
    """Named, reentrant, owner-checked locks with fencing tokens."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or WallClock()
        self._cv = threading.Condition()
        self._leases: dict[str, Lease] = {}
        self._next_token = 1
        # Observability: None keeps acquisition at one extra branch.  The
        # tracer's lock is a leaf (emit never calls back into this
        # manager), so emitting while holding ``_cv`` cannot deadlock.
        self._tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a :class:`repro.obs.Tracer`."""
        self._tracer = tracer

    def _trace(self, kind: str, **fields) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.emit("locks", kind, **fields)

    # -- acquisition -----------------------------------------------------------

    def try_lock(self, name: str, owner: str, ttl: float | None = None) -> int | None:
        """Attempt acquisition without blocking.

        Returns the fencing token on success (including reentrant
        re-acquisition), None if another owner holds the lock.
        """
        with self._cv:
            self._expire(name)
            lease = self._leases.get(name)
            if lease is None:
                token = self._next_token
                self._next_token += 1
                self._leases[name] = Lease(
                    name=name,
                    owner=owner,
                    token=token,
                    hold_count=1,
                    expires_at=self._deadline(ttl),
                )
                self._trace("lock-acquire", name=name, owner=owner, token=token)
                return token
            if lease.owner == owner:
                lease.hold_count += 1
                lease.expires_at = self._deadline(ttl) or lease.expires_at
                return lease.token
            self._trace("lock-contend", name=name, owner=owner, holder=lease.owner)
            return None

    def lock(
        self,
        name: str,
        owner: str,
        timeout: float | None = None,
        ttl: float | None = None,
    ) -> int:
        """Blocking acquisition.  Raises :class:`LockTimeoutError` if the
        lock is not granted within ``timeout`` seconds."""
        deadline = None if timeout is None else self._clock.now() + timeout
        with self._cv:
            while True:
                token = self._try_lock_locked(name, owner, ttl)
                if token is not None:
                    return token
                now = self._clock.now()
                if deadline is not None and now >= deadline:
                    raise LockTimeoutError(
                        f"lock {name!r}: not acquired within {timeout}s"
                    )
                wait_for = None if deadline is None else deadline - now
                # Also wake when the blocking lease's TTL lapses: a waiter
                # must observe expiry on its own, not depend on some
                # unrelated lock operation touching this name first.
                lease = self._leases.get(name)
                if lease is not None and lease.expires_at is not None:
                    until_expiry = max(0.0, lease.expires_at - now)
                    if wait_for is None or until_expiry < wait_for:
                        wait_for = until_expiry
                    if wait_for <= 0:
                        continue  # lease already expired; retry immediately
                self._cv.wait(timeout=wait_for)
                # Loop: the caller deadline is re-checked at the top, so a
                # wake caused by lease expiry never miscounts as timeout.

    def _try_lock_locked(self, name: str, owner: str, ttl: float | None) -> int | None:
        self._expire(name)
        lease = self._leases.get(name)
        if lease is None:
            token = self._next_token
            self._next_token += 1
            self._leases[name] = Lease(name, owner, token, 1, self._deadline(ttl))
            self._trace("lock-acquire", name=name, owner=owner, token=token)
            return token
        if lease.owner == owner:
            lease.hold_count += 1
            return lease.token
        self._trace("lock-contend", name=name, owner=owner, holder=lease.owner)
        return None

    # -- release ----------------------------------------------------------------

    def unlock(self, name: str, owner: str) -> None:
        """Decrement the hold count; release when it reaches zero.

        Raises :class:`LockNotHeldError` if ``owner`` is not the holder.
        """
        with self._cv:
            self._expire(name)
            lease = self._leases.get(name)
            if lease is None or lease.owner != owner:
                raise LockNotHeldError(f"lock {name!r} not held by {owner!r}")
            lease.hold_count -= 1
            if lease.hold_count == 0:
                del self._leases[name]
                self._cv.notify_all()

    def force_release(self, name: str) -> bool:
        """Administrative break-lock (e.g. after a member crash).  True if
        a lease was discarded."""
        with self._cv:
            existed = self._leases.pop(name, None) is not None
            if existed:
                self._cv.notify_all()
            return existed

    def release_owner(self, owner: str) -> list[str]:
        """Eagerly reclaim every lease held by ``owner``.

        The pool calls this when it reaps a failed member, so a lock
        whose holder crashed is released *now* — queued waiters wake
        immediately instead of spinning until lease expiry (or, worse,
        forever, when the lease had no TTL).  Returns the released names.
        """
        with self._cv:
            released = [
                name
                for name, lease in self._leases.items()
                if lease.owner == owner
            ]
            for name in released:
                del self._leases[name]
            if released:
                self._cv.notify_all()
            return released

    # -- introspection --------------------------------------------------------------

    def holder(self, name: str) -> str | None:
        with self._cv:
            self._expire(name)
            lease = self._leases.get(name)
            return None if lease is None else lease.owner

    def lease_of(self, name: str) -> Lease | None:
        with self._cv:
            self._expire(name)
            lease = self._leases.get(name)
            if lease is None:
                return None
            return Lease(
                lease.name, lease.owner, lease.token, lease.hold_count,
                lease.expires_at,
            )

    def held_by(self, owner: str) -> list[str]:
        with self._cv:
            return [n for n, l in self._leases.items() if l.owner == owner]

    # -- internals --------------------------------------------------------------------

    def _deadline(self, ttl: float | None) -> float | None:
        return None if ttl is None else self._clock.now() + ttl

    def _expire(self, name: str) -> None:
        lease = self._leases.get(name)
        if (
            lease is not None
            and lease.expires_at is not None
            and self._clock.now() >= lease.expires_at
        ):
            del self._leases[name]
            self._cv.notify_all()
