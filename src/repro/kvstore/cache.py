"""Leased read-through cache over :class:`HyperStore`, watch-invalidated.

Every coordination read in the elasticity loop (membership epoch, shard
maps, elastic fields) used to be a store round-trip per call.  The
:class:`WatchCache` makes those reads local:

- **Watch mode** (the store is in-process): each cached key carries a
  watch subscription; pushed ``put``/``delete`` events update the entry
  in version order, so a hit is exact — zero store reads steady-state.
- **Lease mode** (foreign runtime that only sees the store, or a watch
  stream degraded by a node failure/queue overflow): entries stay fresh
  for ``ERMI_STORE_LEASE_MS`` and are re-read after, bounding staleness
  by the lease instead of paying a read per call.

Correctness against racing writers rests on two rules.  The watch is
attached *before* the read-through ``get_versioned``, so no event can
fall between "read" and "subscribed"; and every install compares
:class:`VersionedValue` versions (monotonic per key, even across
delete/recreate) so a late-arriving stale event or read result can never
clobber a newer value.

On :class:`StoreUnavailableError` the cache serves the last-known value
(stale-serve) — the same contract the stub's epoch fallback has always
had — and the ``error`` watch event fired by ``fail_node`` marks entries
degraded so they re-validate once the node recovers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import KeyNotFoundError, StoreUnavailableError
from repro.kvstore.watch import DELETE, PUT, WatchEvent
from repro.rmi.envcfg import env_float

_MISSING = object()

DEFAULT_LEASE_MS = 50.0


def store_lease_ms_from_env() -> float:
    """Foreign-runtime lease TTL in milliseconds (``ERMI_STORE_LEASE_MS``)."""
    return env_float("ERMI_STORE_LEASE_MS", DEFAULT_LEASE_MS, minimum=0.0)


class _Entry:
    """One cached key: value + store version + freshness bookkeeping."""

    __slots__ = ("value", "version", "present", "deadline", "watched", "degraded")

    def __init__(
        self,
        value: Any,
        version: int,
        present: bool,
        deadline: float,
        watched: bool,
    ) -> None:
        self.value = value
        self.version = version
        self.present = present
        self.deadline = deadline
        self.watched = watched
        self.degraded = False


class WatchCache:
    """Per-process read-through cache keyed by ``VersionedValue.version``.

    ``watch=True`` (default) attaches a per-key watch when the store
    supports it; pass ``watch=False`` for a runtime that reaches the
    store remotely and can only lease.  ``clock`` is injectable so the
    simulation kernel's virtual time drives lease expiry
    deterministically.
    """

    def __init__(
        self,
        store: Any,
        *,
        lease_ms: float | None = None,
        clock: Callable[[], float] | None = None,
        watch: bool = True,
        obs: Any = None,
        name: str = "store",
    ) -> None:
        self._store = store
        lease = store_lease_ms_from_env() if lease_ms is None else lease_ms
        self._lease_s = lease / 1000.0
        self._clock = clock if clock is not None else time.monotonic
        self._watching = watch and hasattr(store, "watch")
        # Accept a MetricsRegistry or an Observability wrapping one.
        self._obs = getattr(obs, "registry", obs)
        self._name = name
        self._entries: dict[str, _Entry] = {}
        self._subs: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.stale_served = 0

    # -- read path ----------------------------------------------------------

    def get(self, key: str, default: Any = _MISSING) -> Any:
        """Read ``key`` through the cache.

        A fresh hit costs one cache-lock acquisition and zero store
        operations.  Raises :class:`KeyNotFoundError` for a (confirmed)
        missing key unless ``default`` is given — same contract as
        :meth:`HyperStore.get`.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._fresh(entry, now):
                self.hits += 1
                return self._value_of(entry, key, default)
        return self._read_through(key, default, now)

    def get_version(self, key: str) -> int:
        """Last-known store version for ``key`` (0 when never seen)."""
        with self._lock:
            entry = self._entries.get(key)
            return 0 if entry is None else entry.version

    def _read_through(self, key: str, default: Any, now: float) -> Any:
        # Attach the watch BEFORE reading: any write racing with this
        # read lands in our event queue, and version comparison on
        # install resolves which of the two observations is newer.
        self._ensure_watch(key)
        try:
            reader = getattr(self._store, "read_versioned", None)
            if reader is not None:
                present, value, version = reader(key)
            else:
                try:
                    vv = self._store.get_versioned(key)
                    present, value, version = True, vv.value, vv.version
                except KeyNotFoundError:
                    present, value, version = False, None, 0
        except StoreUnavailableError:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    # Stale-serve: the store node is down; the last-known
                    # value beats failing the caller's hot path.
                    self.stale_served += 1
                    return self._value_of(entry, key, default)
            raise
        with self._lock:
            self.misses += 1
            entry = self._entries.get(key)
            if entry is None or version >= entry.version:
                entry = _Entry(
                    value,
                    version,
                    present,
                    now + self._lease_s,
                    key in self._subs,
                )
                self._entries[key] = entry
            return self._value_of(entry, key, default)

    def _fresh(self, entry: _Entry, now: float) -> bool:
        if entry.watched and not entry.degraded:
            return True
        return now < entry.deadline

    @staticmethod
    def _value_of(entry: _Entry, key: str, default: Any) -> Any:
        if entry.present:
            return entry.value
        if default is _MISSING:
            raise KeyNotFoundError(key)
        return default

    # -- write path ---------------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Write-through put: the store write happens first (it is the
        source of truth and of the version), then the entry is installed
        so this process reads its own writes without a store round-trip."""
        self._ensure_watch(key)
        version = self._store.put(key, value)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or version >= entry.version:
                self._entries[key] = _Entry(
                    value, version, True, now + self._lease_s, key in self._subs
                )
        return version

    def update(self, key: str, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Atomic read-modify-write, delegated to the store (the RMW must
        see the authoritative value).  The local entry is invalidated —
        not guessed at — so the next read observes the store's ordering
        of concurrent updates."""
        self._ensure_watch(key)
        new = self._store.update(key, fn, default=default)
        self.invalidate(key)
        return new

    def invalidate(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    # -- watch plumbing -----------------------------------------------------

    def _ensure_watch(self, key: str) -> None:
        if not self._watching or self._closed:
            return
        with self._lock:
            if key in self._subs:
                return
        # Register outside the cache lock: the hub has its own lock and
        # delivery callbacks take ours.
        sub = self._store.watch(key, self._on_event)
        with self._lock:
            if self._closed or key in self._subs:
                stale = sub
            else:
                self._subs[key] = sub
                stale = None
        if stale is not None:
            stale.cancel()

    def _on_event(self, event: WatchEvent) -> None:
        now = self._clock()
        with self._lock:
            entry = self._entries.get(event.key)
            if event.kind == PUT or event.kind == DELETE:
                if entry is not None and event.version < entry.version:
                    return  # late event older than what we already hold
                self._entries[event.key] = _Entry(
                    event.value,
                    event.version,
                    event.kind == PUT,
                    now + self._lease_s,
                    True,
                )
            else:
                # error/gap: the push stream can no longer be trusted;
                # degrade to lease semantics until a read re-validates.
                if entry is not None:
                    entry.degraded = True
                    entry.deadline = now  # expire immediately

    # -- lifecycle / stats --------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            subs = list(self._subs.values())
            self._subs.clear()
            self._entries.clear()
        for sub in subs:
            sub.cancel()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stale_served": self.stale_served,
                "entries": len(self._entries),
                "watched_keys": len(self._subs),
            }

    def publish_gauges(self) -> None:
        """Export hit/miss/stale-serve gauges to the obs registry (called
        at snapshot points, not per-operation, to keep the hit path at a
        single lock acquisition)."""
        obs = self._obs
        if obs is None:
            return
        with self._lock:
            hits, misses, stale = self.hits, self.misses, self.stale_served
        total = hits + misses
        obs.gauge(f"kvstore.cache.{self._name}.hits").set(hits)
        obs.gauge(f"kvstore.cache.{self._name}.misses").set(misses)
        obs.gauge(f"kvstore.cache.{self._name}.stale_served").set(stale)
        obs.gauge(f"kvstore.cache.{self._name}.hit_rate").set(
            hits / total if total else 0.0
        )
