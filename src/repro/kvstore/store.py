"""The partitioned, strongly consistent in-memory store.

Semantics mirror what ElasticRMI needs from HyperDex (paper section 4.1):

- per-key linearizability: every get/put/cas on one key is serialized by
  the stripe lock that owns the key within its partition — lock striping,
  so concurrent operations on *different* keys of the same partition
  never contend;
- versioned entries: each successful write bumps a monotonic version,
  giving CAS a sound foundation;
- durability equals Java RMI's (state lives in RAM; a store-node failure
  surfaces as :class:`StoreUnavailableError`, never silent loss of the
  consistency contract);
- searchable secondary attributes: dict-valued entries can be queried by
  attribute predicates (HyperDex's signature feature);
- elastic growth: nodes can be added, migrating only the keys whose arcs
  moved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import (
    CASMismatchError,
    KeyNotFoundError,
    StoreUnavailableError,
)
from repro.kvstore.ring import HashRing
from repro.kvstore.watch import WatchHub, WatchSubscription

_MISSING = object()

# Key-layout separators: "PingPool$epoch", "user:42", "jobs/7" all open a
# namespace with their first separator.  The prefix index buckets keys by
# the namespace token so prefix scans touch only the matching buckets.
_SEPARATORS = frozenset("$:/")


def key_token(key: str) -> str:
    """The key's namespace token: everything up to and *including* the
    first separator (``$``, ``:`` or ``/``), or the whole key when it has
    none.  Every key in a bucket shares its token as a prefix, which is
    what lets :meth:`HyperStore.keys` bound a prefix scan to buckets
    instead of walking the partition."""
    for i, ch in enumerate(key):
        if ch in _SEPARATORS:
            return key[: i + 1]
    return key


@dataclass
class VersionedValue:
    """A stored value plus its monotonically increasing write version."""

    value: Any
    version: int


class Partition:
    """One store node's shard: a dict guarded by striped reentrant locks.

    Keys hash to one of ``stripes`` locks, so per-key operations on
    different keys proceed in parallel while same-key operations stay
    linearizable.  Operation counts are kept per stripe (each mutated
    only under its own lock) and summed on read, so accounting never
    adds cross-stripe contention.
    """

    def __init__(self, node: str, stripes: int = 16) -> None:
        if stripes < 1 or stripes & (stripes - 1):
            raise ValueError(f"stripes must be a power of two: {stripes}")
        self.node = node
        self.data: dict[str, VersionedValue] = {}
        # Last version a deleted key held (plus one for the delete event
        # itself): recreating the key resumes from here, keeping per-key
        # versions monotonic across delete/recreate so watch subscribers
        # and CAS callers can order events by version alone.
        self.tombstones: dict[str, int] = {}
        self.alive = True
        self._mask = stripes - 1
        self._stripes = [threading.RLock() for _ in range(stripes)]
        self._op_counts = [0] * stripes
        # Prefix index: namespace token -> the partition's keys opening
        # with it.  Spans stripes, so it has its own lock; it is touched
        # only on key *creation/removal* (and migration), never on the
        # read/overwrite hot path.
        self.buckets: dict[str, set[str]] = {}
        self.index_lock = threading.Lock()

    def stripe_of(self, key: str) -> int:
        return hash(key) & self._mask

    def lock_for(self, key: str) -> threading.RLock:
        return self._stripes[self.stripe_of(key)]

    def index_add(self, key: str) -> None:
        with self.index_lock:
            self.buckets.setdefault(key_token(key), set()).add(key)

    def index_discard(self, key: str) -> None:
        token = key_token(key)
        with self.index_lock:
            bucket = self.buckets.get(token)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self.buckets[token]

    @property
    def op_count(self) -> int:
        return sum(self._op_counts)

    def __len__(self) -> int:
        return len(self.data)


class HyperStore:
    """Consistent-hash partitioned KV store with per-key linearizability.

    ``on_op`` (optional) is called as ``on_op(op_name, key)`` after every
    operation — the hook the simulation experiments and hot-key statistics
    plug into without the store knowing about either.
    """

    def __init__(
        self,
        nodes: int = 1,
        vnodes: int = 64,
        track_hot_keys: bool = False,
        on_op: Callable[[str, str], None] | None = None,
        stripes_per_partition: int = 16,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"store needs at least one node: {nodes}")
        self._ring = HashRing(vnodes=vnodes)
        self._partitions: dict[str, Partition] = {}
        self._membership_lock = threading.RLock()
        self._stripes = stripes_per_partition
        self._on_op = on_op
        self._track_hot = track_hot_keys
        self._key_hits: dict[str, int] = {}
        self._hot_lock = threading.Lock()
        # Scan accounting for the bounded-prefix-scan benchmark: how
        # many candidate keys scans have examined (scans are rare, so a
        # plain lock-guarded counter is fine here).
        self._keys_visited = 0
        self._scan_lock = threading.Lock()
        # Push-based change notifications.  The hub is always present;
        # mutations check its (lock-free) ``active`` flag, so a store
        # nobody watches pays a single branch per write.
        self._hub = WatchHub()
        for i in range(nodes):
            self._add_partition(f"store-{i}")

    # -- membership -----------------------------------------------------------

    def _add_partition(self, node: str) -> None:
        self._partitions[node] = Partition(node, stripes=self._stripes)
        self._ring.add_node(node)

    def add_node(self) -> str:
        """Grow the store by one node, migrating displaced keys.

        Returns the new node's name.  Mirrors "ElasticRMI may add
        additional nodes to HyperDex as necessary" (section 4.2).
        """
        with self._membership_lock:
            node = f"store-{len(self._partitions)}"
            old_owner = {
                key: part.node
                for part in self._partitions.values()
                for key in part.data
            }
            tombstone_owner = {
                key: part.node
                for part in self._partitions.values()
                for key in part.tombstones
            }
            self._add_partition(node)
            for key, owner in old_owner.items():
                new_owner = self._ring.owner(key)
                if new_owner != owner:
                    src = self._partitions[owner]
                    dst = self._partitions[new_owner]
                    # Stripe locks only; per-key ops hold exactly one
                    # lock, and concurrent migrations are serialized by
                    # the membership lock, so this pair cannot deadlock.
                    with src.lock_for(key), dst.lock_for(key):
                        entry = src.data.pop(key, None)
                        if entry is not None:
                            dst.data[key] = entry
                            src.index_discard(key)
                            dst.index_add(key)
            # Tombstoned versions follow their keys so a recreate on the
            # new owner still resumes the version sequence.
            for key, owner in tombstone_owner.items():
                new_owner = self._ring.owner(key)
                if new_owner != owner:
                    src = self._partitions[owner]
                    dst = self._partitions[new_owner]
                    with src.lock_for(key), dst.lock_for(key):
                        version = src.tombstones.pop(key, None)
                        if version is not None:
                            dst.tombstones[key] = version
            return node

    def node_count(self) -> int:
        return len(self._partitions)

    def node_names(self) -> list[str]:
        return list(self._partitions)

    def partition_sizes(self) -> dict[str, int]:
        return {name: len(p) for name, p in self._partitions.items()}

    def owner_node(self, key: str) -> str:
        """Name of the node whose partition owns ``key``.

        Pure ring lookup — works whether or not the owner is alive, so
        fault scripts can pick a victim partition *relative to* the keys
        they must keep reachable.
        """
        return self._ring.owner(key)

    def failed_nodes(self) -> list[str]:
        return [name for name, p in self._partitions.items() if not p.alive]

    # -- failure injection ------------------------------------------------------

    def fail_node(self, node: str) -> None:
        """Make one store node unavailable.  Per the paper's fault model,
        operations on its keys then *propagate* StoreUnavailableError.

        Watch subscribers whose keys the node owns receive an ``error``
        event so they can fall back to direct (leased) reads instead of
        trusting a silent stream."""
        self._partition_by_name(node).alive = False
        if self._hub.active:
            self._hub.broadcast_error(
                StoreUnavailableError(f"store node {node} is down"),
                owner=self._ring.owner,
                node=node,
            )

    def recover_node(self, node: str) -> None:
        """Bring a failed node back.  Subscribers get an ``error`` event
        carrying ``None`` semantics via :class:`StoreUnavailableError`'s
        recovery message: anything cached across the outage must be
        re-validated against the store before being trusted again."""
        self._partition_by_name(node).alive = True
        if self._hub.active:
            self._hub.broadcast_error(
                StoreUnavailableError(f"store node {node} recovered"),
                owner=self._ring.owner,
                node=node,
            )

    # -- core operations ----------------------------------------------------------

    def get(self, key: str, default: Any = _MISSING) -> Any:
        """Read a key; raises :class:`KeyNotFoundError` when absent
        unless ``default`` is given."""
        part = self._owner(key)
        with part.lock_for(key):
            self._account("get", key, part)
            entry = part.data.get(key)
            if entry is None:
                if default is _MISSING:
                    raise KeyNotFoundError(key)
                return default
            return entry.value

    def get_versioned(self, key: str) -> VersionedValue:
        """Read a key together with its write version."""
        part = self._owner(key)
        with part.lock_for(key):
            self._account("get", key, part)
            entry = part.data.get(key)
            if entry is None:
                raise KeyNotFoundError(key)
            return VersionedValue(entry.value, entry.version)

    def read_versioned(self, key: str) -> tuple[bool, Any, int]:
        """Read ``(present, value, version)`` where an absent key still
        reports a meaningful version: the tombstone left by its last
        delete (0 when never written).  This is what lets a cache order
        an "absent" observation against racing put/delete events."""
        part = self._owner(key)
        with part.lock_for(key):
            self._account("get", key, part)
            entry = part.data.get(key)
            if entry is None:
                return (False, None, part.tombstones.get(key, 0))
            return (True, entry.value, entry.version)

    def put(self, key: str, value: Any) -> int:
        """Write ``value``; returns the new version."""
        part = self._owner(key)
        with part.lock_for(key):
            self._account("put", key, part)
            entry = part.data.get(key)
            version = self._next_version(part, key, entry)
            part.data[key] = VersionedValue(value, version)
            if entry is None:
                part.index_add(key)
            pending = self._notify(key, "put", value, version)
        self._deliver(pending)
        return version

    def put_many(self, items: dict[str, Any]) -> dict[str, int]:
        """Write several keys in one call; returns ``key -> new version``.

        Each key is written under its own stripe lock (no cross-key
        atomicity — same contract as issuing the puts individually), but
        watch delivery for the whole batch is coalesced after the last
        lock is released, so subscribers that watch several of the keys
        see the batch back-to-back instead of interleaved with their own
        redeliveries.
        """
        versions: dict[str, int] = {}
        kicks: list[WatchSubscription] = []
        for key, value in items.items():
            part = self._owner(key)
            with part.lock_for(key):
                self._account("put", key, part)
                entry = part.data.get(key)
                version = self._next_version(part, key, entry)
                part.data[key] = VersionedValue(value, version)
                if entry is None:
                    part.index_add(key)
                pending = self._notify(key, "put", value, version)
            if pending:
                kicks.extend(pending)
            versions[key] = version
        if kicks:
            self._hub.kick(kicks)
        return versions

    def cas(self, key: str, expected: Any, value: Any) -> int:
        """Compare-and-swap on the *value*; raises on mismatch.

        A missing key matches ``expected is None`` (create-if-absent).
        """
        part = self._owner(key)
        with part.lock_for(key):
            self._account("cas", key, part)
            entry = part.data.get(key)
            current = None if entry is None else entry.value
            if current != expected:
                raise CASMismatchError(
                    f"cas({key!r}): expected {expected!r}, found {current!r}"
                )
            version = self._next_version(part, key, entry)
            part.data[key] = VersionedValue(value, version)
            if entry is None:
                part.index_add(key)
            pending = self._notify(key, "put", value, version)
        self._deliver(pending)
        return version

    def incr(self, key: str, delta: int = 1) -> int:
        """Atomic integer add; missing keys start at zero.  Returns the
        post-increment value."""
        part = self._owner(key)
        with part.lock_for(key):
            self._account("incr", key, part)
            entry = part.data.get(key)
            current = 0 if entry is None else entry.value
            if not isinstance(current, int):
                raise TypeError(f"incr on non-integer key {key!r}: {current!r}")
            version = self._next_version(part, key, entry)
            part.data[key] = VersionedValue(current + delta, version)
            if entry is None:
                part.index_add(key)
            pending = self._notify(key, "put", current + delta, version)
        self._deliver(pending)
        return current + delta

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        part = self._owner(key)
        pending = None
        with part.lock_for(key):
            self._account("delete", key, part)
            entry = part.data.pop(key, None)
            existed = entry is not None
            if existed:
                part.index_discard(key)
                # The delete itself consumes a version so a subsequent
                # recreate is ordered strictly after it.
                version = entry.version + 1
                part.tombstones[key] = version
                pending = self._notify(key, "delete", None, version)
        self._deliver(pending)
        return existed

    def exists(self, key: str) -> bool:
        part = self._owner(key)
        with part.lock_for(key):
            self._account("get", key, part)
            return key in part.data

    def update(self, key: str, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Atomic read-modify-write under the partition lock.

        ``fn`` receives the current value (or ``default`` when absent) and
        returns the new value, which is stored and returned.
        """
        part = self._owner(key)
        with part.lock_for(key):
            self._account("update", key, part)
            entry = part.data.get(key)
            current = default if entry is None else entry.value
            new = fn(current)
            version = self._next_version(part, key, entry)
            part.data[key] = VersionedValue(new, version)
            if entry is None:
                part.index_add(key)
            pending = self._notify(key, "put", new, version)
        self._deliver(pending)
        return new

    # -- scans and search -----------------------------------------------------------

    def keys(self, prefix: str = "") -> Iterator[str]:
        """All keys (optionally filtered by prefix), across partitions.

        A non-empty prefix is served from the per-partition namespace
        index: only buckets whose token is prefix-compatible with the
        query are visited, so ``keys("PingPool$")`` in a store carrying
        a million session keys walks the handful of ``PingPool$…``
        entries, not the whole partition.  Completeness holds because a
        matching key's token and the query prefix are both prefixes of
        that key, hence one is always a prefix of the other.

        The candidate set is snapshotted eagerly — at call time, under
        each partition's index lock — so the returned iterator never
        races with concurrent ``put``/``delete``: callers see the keys
        that existed at the call, not a live view that can skip or
        duplicate entries while they iterate.
        """
        snapshot: list[str] = []
        if not prefix:
            for part in list(self._partitions.values()):
                self._check_alive(part)
                # list(dict) is a single C-level operation under the GIL,
                # so this snapshot is safe against concurrent striped
                # writers without taking (and stalling) every stripe lock.
                keys = list(part.data)
                self._note_scan(len(keys))
                snapshot.extend(keys)
            return iter(snapshot)
        for part in list(self._partitions.values()):
            self._check_alive(part)
            with part.index_lock:
                candidates = [
                    key
                    for token, bucket in part.buckets.items()
                    if token.startswith(prefix) or prefix.startswith(token)
                    for key in bucket
                ]
            self._note_scan(len(candidates))
            snapshot.extend(k for k in candidates if k.startswith(prefix))
        return iter(snapshot)

    def search(self, prefix: str, **predicates: Any) -> list[tuple[str, Any]]:
        """HyperDex-style secondary-attribute search over dict values.

        Returns ``(key, value)`` pairs under ``prefix`` whose dict value
        satisfies every ``attribute=expected`` predicate.  Callables are
        treated as one-argument predicates over the attribute value.
        """
        hits: list[tuple[str, Any]] = []
        for key in self.keys(prefix):
            try:
                value = self.get(key)
            except KeyNotFoundError:
                continue  # concurrently deleted
            if not isinstance(value, dict):
                continue
            ok = True
            for attr, expected in predicates.items():
                if attr not in value:
                    ok = False
                    break
                actual = value[attr]
                if callable(expected):
                    if not expected(actual):
                        ok = False
                        break
                elif actual != expected:
                    ok = False
                    break
            if ok:
                hits.append((key, value))
        return hits

    # -- watches ------------------------------------------------------------------

    def watch(
        self, key: str, callback: Callable[[Any], None]
    ) -> WatchSubscription:
        """Subscribe to changes of ``key``.  ``callback`` receives a
        :class:`~repro.kvstore.watch.WatchEvent` per mutation, in version
        order, strictly after the mutating stripe lock is released."""
        return self._hub.watch(key, callback)

    def watch_prefix(
        self, prefix: str, callback: Callable[[Any], None]
    ) -> WatchSubscription:
        """Subscribe to changes of every key starting with ``prefix``."""
        return self._hub.watch_prefix(prefix, callback)

    def watch_stats(self) -> dict[str, int]:
        return {"subscriptions": self._hub.subscription_count()}

    def set_obs(self, obs: Any) -> None:
        """Wire an observability registry: watch delivery counters land
        on ``kvstore.watch.delivered`` / ``kvstore.watch.dropped``."""
        self._hub.set_obs(obs)

    # -- statistics ---------------------------------------------------------------

    def hot_keys(self, top_n: int = 10) -> list[tuple[str, int]]:
        """Most frequently accessed keys (requires ``track_hot_keys``)."""
        ranked = sorted(self._key_hits.items(), key=lambda kv: -kv[1])
        return ranked[:top_n]

    def total_ops(self) -> int:
        return sum(p.op_count for p in self._partitions.values())

    def keys_visited_by_scans(self) -> int:
        """Total candidate keys examined by prefix scans since creation.

        The bounded-scan micro-benchmark asserts this grows by the
        bucket size, not the partition size, per prefixed scan.
        """
        with self._scan_lock:
            return self._keys_visited

    def _note_scan(self, visited: int) -> None:
        with self._scan_lock:
            self._keys_visited += visited

    # -- internals -------------------------------------------------------------------

    def _owner(self, key: str) -> Partition:
        part = self._partitions[self._ring.owner(key)]
        self._check_alive(part)
        return part

    def _partition_by_name(self, node: str) -> Partition:
        if node not in self._partitions:
            raise ValueError(f"unknown store node: {node}")
        return self._partitions[node]

    def _check_alive(self, part: Partition) -> None:
        if not part.alive:
            raise StoreUnavailableError(f"store node {part.node} is down")

    @staticmethod
    def _next_version(
        part: Partition, key: str, entry: VersionedValue | None
    ) -> int:
        """Next write version for ``key`` (stripe lock held): continue
        from the live entry, or from the tombstone left by a delete."""
        if entry is not None:
            return entry.version + 1
        return part.tombstones.pop(key, 0) + 1

    def _notify(
        self, key: str, kind: str, value: Any, version: int
    ) -> list[WatchSubscription] | None:
        """Enqueue a watch event (stripe lock held — this is what makes
        event order equal version order).  Returns subscriptions this
        thread must drain once the lock is released."""
        hub = self._hub
        if not hub.active:
            return None
        return hub.enqueue(key, kind, value, version)

    def _deliver(self, pending: list[WatchSubscription] | None) -> None:
        """Run watch callbacks for ``pending``.  Callers must hold no
        stripe lock here — subscribers may re-enter the store."""
        if pending:
            self._hub.kick(pending)

    def _account(self, op: str, key: str, part: Partition) -> None:
        # Called with the key's stripe lock held: the stripe's cell has a
        # single writer at a time, so the bare increment is safe.
        part._op_counts[part.stripe_of(key)] += 1
        if self._track_hot:
            with self._hot_lock:
                self._key_hits[key] = self._key_hits.get(key, 0) + 1
        if self._on_op is not None:
            self._on_op(op, key)
