"""HyperStore: the HyperDex-like in-memory key-value substrate.

ElasticRMI keeps the shared state of an elastic object pool (instance and
static fields) in an external, strongly consistent in-memory key-value
store — HyperDex in the paper's implementation.  The preprocessor turns
field reads/writes into ``get``/``put`` calls and ``synchronized`` methods
into distributed lock acquisitions (Figure 6).  This package provides the
same capabilities:

- :class:`HyperStore` — consistent-hash partitioned, per-key linearizable
  store with get/put/cas/delete/incr, versioned entries, and elastic node
  addition (the runtime "may add additional nodes to HyperDex as
  necessary", section 4.2).
- :class:`LockManager` — named distributed locks with ownership, reentrancy,
  deadlines, and fencing tokens (used for ``synchronized``).
- :func:`search` via attribute predicates — the searchable-secondary-
  attribute flavour of HyperDex.
- per-key access statistics, exposing the "hot key" phenomenon the paper's
  introduction motivates elasticity decisions with.
"""

from repro.kvstore.ring import HashRing
from repro.kvstore.store import HyperStore, Partition, VersionedValue
from repro.kvstore.locks import Lease, LockManager
from repro.kvstore.cache import WatchCache
from repro.kvstore.watch import (
    AsyncWatchQueue,
    WatchEvent,
    WatchHub,
    WatchSubscription,
)

__all__ = [
    "AsyncWatchQueue",
    "HashRing",
    "HyperStore",
    "Lease",
    "LockManager",
    "Partition",
    "VersionedValue",
    "WatchCache",
    "WatchEvent",
    "WatchHub",
    "WatchSubscription",
]
