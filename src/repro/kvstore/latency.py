"""Store latency accounting.

Section 4.1 of the paper is explicit that shared state has a price:
"increasing shared state increases latency due to the network delays
involved in accessing HyperDex", and locks reduce parallelism further.
:class:`StoreLatencyModel` quantifies that price for a run: it plugs
into :class:`~repro.kvstore.store.HyperStore`'s ``on_op`` hook, charges
each operation a modeled cost (base network round trip + a contention
term that grows with concurrent pressure on the same key), and reports
the totals — the numbers an operator uses to decide whether an elastic
class keeps too much shared state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: Default modeled costs (seconds), in the ballpark of an in-memory
#: store on a datacenter network.
BASE_RTT_S = 0.0004        # one get/put round trip
CONTENTION_STEP_S = 0.0002  # added per recent competitor on the same key


@dataclass
class OpStats:
    count: int = 0
    modeled_seconds: float = 0.0

    def mean(self) -> float:
        return 0.0 if self.count == 0 else self.modeled_seconds / self.count


class StoreLatencyModel:
    """Charges modeled latency per store operation.

    Usage::

        model = StoreLatencyModel()
        store = HyperStore(nodes=2, on_op=model.observe)
        ...
        model.total_seconds()     # modeled time spent in the store
        model.per_op("put").mean()
    """

    def __init__(
        self,
        base_rtt_s: float = BASE_RTT_S,
        contention_step_s: float = CONTENTION_STEP_S,
        window: int = 64,
    ) -> None:
        if base_rtt_s < 0 or contention_step_s < 0:
            raise ValueError("costs cannot be negative")
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.base_rtt_s = base_rtt_s
        self.contention_step_s = contention_step_s
        self.window = window
        self._lock = threading.Lock()
        self._recent: list[str] = []  # last `window` keys touched
        self._per_op: dict[str, OpStats] = {}
        self._per_key_cost: dict[str, float] = {}

    # -- the HyperStore hook -------------------------------------------------

    def observe(self, op: str, key: str) -> float:
        """Record one operation; returns its modeled cost (seconds)."""
        with self._lock:
            competitors = self._recent.count(key)
            cost = self.base_rtt_s + competitors * self.contention_step_s
            self._recent.append(key)
            if len(self._recent) > self.window:
                self._recent.pop(0)
            stats = self._per_op.setdefault(op, OpStats())
            stats.count += 1
            stats.modeled_seconds += cost
            self._per_key_cost[key] = self._per_key_cost.get(key, 0.0) + cost
            return cost

    # -- reporting ----------------------------------------------------------------

    def total_seconds(self) -> float:
        with self._lock:
            return sum(s.modeled_seconds for s in self._per_op.values())

    def total_ops(self) -> int:
        with self._lock:
            return sum(s.count for s in self._per_op.values())

    def per_op(self, op: str) -> OpStats:
        with self._lock:
            stats = self._per_op.get(op, OpStats())
            return OpStats(stats.count, stats.modeled_seconds)

    def costliest_keys(self, top_n: int = 10) -> list[tuple[str, float]]:
        """Keys with the highest accumulated modeled cost — the hot-key
        contention picture the paper's introduction motivates."""
        with self._lock:
            ranked = sorted(self._per_key_cost.items(), key=lambda kv: -kv[1])
            return ranked[:top_n]

    def mean_latency(self) -> float:
        ops = self.total_ops()
        return 0.0 if ops == 0 else self.total_seconds() / ops
