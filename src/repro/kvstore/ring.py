"""Consistent-hash ring used to partition the key space across store nodes.

Virtual nodes (replicas per physical node) smooth the distribution; when a
node joins only the keys falling into its arcs move, which is what lets the
runtime grow the store without a full reshuffle.
"""

from __future__ import annotations

import bisect
import hashlib


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


class HashRing:
    """Classic consistent hashing with virtual nodes."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self._ring: list[tuple[int, str]] = []  # sorted (hash, node)
        self._nodes: set[str] = set()

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add_node(self, node: str) -> None:
        """Place a node on the ring (``vnodes`` points)."""
        if node in self._nodes:
            raise ValueError(f"node already on ring: {node}")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = (_hash(f"{node}#{i}"), node)
            bisect.insort(self._ring, point)

    def remove_node(self, node: str) -> None:
        """Remove a node; its arcs fall to clockwise successors."""
        if node not in self._nodes:
            raise ValueError(f"node not on ring: {node}")
        self._nodes.discard(node)
        self._ring = [(h, n) for (h, n) in self._ring if n != node]

    def owner(self, key: str) -> str:
        """Node owning ``key``: first ring point clockwise of its hash."""
        if not self._ring:
            raise RuntimeError("empty hash ring")
        h = _hash(key)
        idx = bisect.bisect_right(self._ring, (h, "￿"))
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def __len__(self) -> int:
        return len(self._nodes)
