"""Consistent-hash ring used to partition the key space across store nodes.

The implementation now lives in :mod:`repro.routing` — PR 6 promoted it
into a shared routing primitive so sharded elastic pools hash affinity
keys with exactly the machinery the store uses to place keys on
partitions.  This module re-exports it for existing importers.
"""

from __future__ import annotations

from repro.routing import HashRing, stable_hash

# The store's historical private name for the hash function; kept so
# downstream code (and tests) that reached for it keep working.
_hash = stable_hash

__all__ = ["HashRing", "stable_hash"]
