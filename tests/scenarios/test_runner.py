"""End-to-end scenario runner tests: replay, scaling, elasticity, QoS.

Full-scale matrix runs live in the bench suite; these use small scales
(and one tiny bespoke spec) to keep the tier-1 suite fast.
"""

import json

import pytest

from repro.obs.export import validate_summary
from repro.scenarios.bench import (
    check_scenario_reports,
    run_scenario_suite,
    scenario_report_name,
)
from repro.scenarios.catalog import (
    ConstantPattern,
    FaultSpec,
    PoolSpec,
    QoSSpec,
    ScenarioSpec,
    ServiceSpec,
    TenantSpec,
)
from repro.scenarios.runner import ScenarioError, run_scenario

SCALE = 0.1  # 10% of each scenario's simulated event count


def tiny_spec(**overrides):
    """A fast bespoke scenario for structural tests."""
    fields = dict(
        name="tiny",
        title="Tiny test scenario",
        users=1_000_000,
        ops_per_user_s=0.00004,
        model_factor=1.0,
        duration_s=40.0,
        drain_s=10.0,
        seed=77,
        nodes=6,
        slices_per_node=4,
        tenants=(
            TenantSpec(
                name="tiny",
                app="dcs",
                pattern=lambda: ConstantPattern(40.0, 40.0),
                service=ServiceSpec(base_s=0.02),
                pool=PoolSpec(min_size=2, max_size=6),
                # A 40 s run is mostly startup transient (members take
                # 1-4 s to provision, arrivals park meanwhile), so the
                # p99 bound must absorb it; the committed scenarios are
                # long enough that the default tight bounds apply.
                qos=QoSSpec(max_p99_x_service=1000.0),
            ),
        ),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestSimRun:
    def test_completes_and_grades(self):
        result = run_scenario(tiny_spec())
        assert result.mode == "sim"
        assert result.total("arrivals") > 1000
        assert result.total("completed") == result.total("arrivals")
        tenant = result.tenants["tiny"]
        assert tenant.final_sizes and sum(tenant.final_sizes) >= 2
        assert result.qos_met()

    def test_summary_is_valid_obs_v1(self):
        result = run_scenario(tiny_spec())
        summary = result.summary()
        assert validate_summary(summary) == []
        assert summary["scenario"]["name"] == "tiny"
        assert summary["latency"]["count"] > 0
        assert summary["qos"]["completion_ratio"] == 1.0

    def test_replay_byte_identical(self):
        a = run_scenario("diurnal", scale=SCALE)
        b = run_scenario("diurnal", scale=SCALE)
        assert a.summary_json() == b.summary_json()

    def test_seed_changes_the_run(self):
        a = run_scenario(tiny_spec())
        b = run_scenario(tiny_spec(), seed=78)
        assert (
            a.total("arrivals") != b.total("arrivals")
            or a.merged_latencies() != b.merged_latencies()
        )

    def test_scale_shrinks_events_not_dynamics(self):
        full = run_scenario(tiny_spec())
        half = run_scenario(tiny_spec(), scale=0.5)
        ratio = half.total("arrivals") / full.total("arrivals")
        assert 0.35 < ratio < 0.65
        # Utilization is scale-invariant, so neither run queues: the
        # pool trajectory (and QoS) match.
        assert half.qos_met() == full.qos_met()

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ScenarioError):
            run_scenario(tiny_spec(), scale=0.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ScenarioError):
            run_scenario(tiny_spec(), mode="warp")


class TestElasticity:
    def test_overloaded_pool_grows(self):
        # 2 members serve 2/0.02 = 100 ops/s at saturation; offering
        # 160 ops/s keeps the busy fraction pinned at 100% until the
        # policy grows the pool past min.
        spec = tiny_spec(
            duration_s=60.0,
            tenants=(
                TenantSpec(
                    name="tiny",
                    app="dcs",
                    pattern=lambda: ConstantPattern(160.0, 60.0),
                    service=ServiceSpec(base_s=0.02),
                    pool=PoolSpec(min_size=2, max_size=8),
                    qos=QoSSpec(max_p99_x_service=10_000.0),
                ),
            ),
        )
        result = run_scenario(spec)
        tenant = result.tenants["tiny"]
        assert sum(tenant.final_sizes) > 2

    def test_fault_redispatches_and_herds(self):
        spec = tiny_spec(
            duration_s=60.0,
            drain_s=20.0,
            tenants=(
                TenantSpec(
                    name="tiny",
                    app="dcs",
                    pattern=lambda: ConstantPattern(60.0, 60.0),
                    service=ServiceSpec(base_s=0.03),
                    pool=PoolSpec(min_size=3, max_size=8),
                    faults=(
                        FaultSpec(
                            at_s=20.0, kill_members=1, herd_burst=200
                        ),
                    ),
                    qos=QoSSpec(max_p99_x_service=10_000.0),
                ),
            ),
        )
        result = run_scenario(spec)
        assert result.total("herd_arrivals") == 200
        summary = result.summary()
        assert summary["scenario"]["herd_arrivals"] == 200
        # The injector logged the crash into the trace summary.
        assert summary["counts"].get("member-crash", 0) == 1
        assert summary["components"].get("faults", 0) >= 1


class TestBenchSuite:
    def test_suite_writes_deterministic_reports(self, tmp_path):
        results = run_scenario_suite(
            scale=SCALE, out_dir=str(tmp_path), names=["diurnal"]
        )
        assert len(results) == 1
        name, result, doc = results[0]
        assert name == "diurnal"
        assert doc["deterministic"] is True
        assert "created_unix" not in doc
        path = tmp_path / scenario_report_name("diurnal")
        assert path.exists()
        on_disk = json.loads(path.read_text())
        assert on_disk == doc

    def test_report_replays_byte_identically(self, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        run_scenario_suite(
            scale=SCALE, out_dir=str(a_dir), names=["flash-crowd"]
        )
        run_scenario_suite(
            scale=SCALE, out_dir=str(b_dir), names=["flash-crowd"]
        )
        name = scenario_report_name("flash-crowd")
        assert (a_dir / name).read_bytes() == (b_dir / name).read_bytes()

    def test_check_passes_against_own_baseline(self, tmp_path):
        results = run_scenario_suite(
            scale=SCALE, out_dir=str(tmp_path), names=["diurnal"]
        )
        ok, lines = check_scenario_reports(results, str(tmp_path))
        assert ok, "\n".join(lines)

    def test_check_fails_on_missing_baseline(self, tmp_path):
        results = run_scenario_suite(scale=SCALE, names=["diurnal"])
        ok, lines = check_scenario_reports(results, str(tmp_path))
        assert not ok
        assert any("baseline missing" in line for line in lines)

    def test_check_fails_on_drift(self, tmp_path):
        results = run_scenario_suite(
            scale=SCALE, out_dir=str(tmp_path), names=["diurnal"]
        )
        # Simulate a behavioral regression: the baseline says the
        # modeled system used to be 2x faster than the current run.
        path = tmp_path / scenario_report_name("diurnal")
        doc = json.loads(path.read_text())
        for record in doc["records"]:
            record["p99_us"] /= 2.0
        path.write_text(json.dumps(doc))
        ok, lines = check_scenario_reports(results, str(tmp_path))
        assert not ok
        assert any("p99" in line for line in lines)


class TestLiveMode:
    def test_live_replays_wall_clock(self):
        result = run_scenario(
            "diurnal", scale=0.2, mode="live", live_duration_s=1.5
        )
        assert result.mode == "live"
        assert result.total("arrivals") > 0
        assert result.total("completed") == result.total("arrivals")
        assert result.tenants["dcs"].stats.latencies

    def test_live_rejects_faulted_scenarios(self):
        with pytest.raises(ScenarioError):
            run_scenario("thundering-herd", mode="live")

    def test_live_rejects_multi_tenant(self):
        with pytest.raises(ScenarioError):
            run_scenario("multi-tenant", mode="live")

    def test_live_rejects_sharded(self):
        with pytest.raises(ScenarioError):
            run_scenario("hot-key", mode="live")
