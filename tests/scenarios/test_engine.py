"""Tests for the open-loop engine's service model, on a bare kernel."""

import random

import pytest

from repro.scenarios.engine import OpenLoopEngine, ServiceModel
from repro.sim.kernel import Kernel
from repro.workloads.patterns import ConstantPattern


def make_engine(
    kernel,
    members,
    rate=50.0,
    duration=20.0,
    service=None,
    seed=1,
    **kwargs,
):
    """Engine over a mutable members list (uid, shard) pairs."""
    return OpenLoopEngine(
        kernel,
        ConstantPattern(rate, duration),
        service or ServiceModel(base_s=0.01),
        random.Random(seed),
        lambda: list(members),
        **kwargs,
    )


class TestOpenLoopSemantics:
    def test_all_arrivals_complete_with_capacity(self):
        kernel = Kernel()
        members = [("a", 0), ("b", 0)]
        engine = make_engine(kernel, members, rate=50.0, duration=20.0)
        engine.start()
        kernel.run_until(30.0)
        assert engine.stats.arrivals > 500
        assert engine.stats.completed == engine.stats.arrivals
        # 50 ops/s over 2 members at 10 ms -> 25% busy: no queueing, so
        # latency stays near the bare service time.
        assert max(engine.stats.latencies) < 0.2

    def test_overload_grows_queueing_delay(self):
        # Open loop: 200 ops/s against one member that can do 100/s.
        # Arrivals keep coming; the backlog (and the latency of later
        # completions) must grow with time, not plateau.
        kernel = Kernel()
        engine = make_engine(
            kernel, [("only", 0)], rate=200.0, duration=30.0
        )
        engine.start()
        kernel.run_until(30.0)
        assert engine.backlog_s("only") > 10.0
        lat = engine.stats.latencies
        early = lat[: len(lat) // 4]
        late = lat[-len(lat) // 4 :]
        assert max(late) > max(early) * 3

    def test_round_robin_balances_members(self):
        kernel = Kernel()
        members = [("a", 0), ("b", 0), ("c", 0)]
        engine = make_engine(kernel, members, rate=60.0, duration=30.0)
        engine.start()
        kernel.run_until(40.0)
        # Every member was routed to, and none hogged the work: with RR
        # at 33% utilization each server's busy clock advanced.
        assert set(engine._servers) == {"a", "b", "c"}
        for server in engine._servers.values():
            assert server.busy_until > 5.0

    def test_new_member_absorbs_load_immediately(self):
        kernel = Kernel()
        members = [("a", 0)]
        engine = make_engine(kernel, members, rate=40.0, duration=30.0)
        engine.start()
        kernel.call_at(10.0, lambda: members.append(("late", 0)))
        kernel.run_until(40.0)
        assert "late" in engine._servers  # routed to as soon as listed


class TestShardAffinity:
    def test_keys_route_to_owning_shard(self):
        kernel = Kernel()
        members = [("s0-a", 0), ("s0-b", 0), ("s1-a", 1)]
        keys = ["even", "odd"]
        engine = make_engine(
            kernel,
            members,
            rate=50.0,
            duration=20.0,
            shard_for=lambda key: 0 if key == "even" else 1,
            key_sampler=lambda rng: keys[rng.randrange(2)],
            service=ServiceModel(base_s=0.01, hit_s=0.001, cache_capacity=4),
        )
        engine.start()
        kernel.run_until(30.0)
        # Shard-0 members only ever saw "even"; shard 1 only "odd".
        assert set(engine._servers["s0-a"].cache) <= {"even"}
        assert set(engine._servers["s0-b"].cache) <= {"even"}
        assert set(engine._servers["s1-a"].cache) <= {"odd"}

    def test_downed_shard_falls_back_to_survivors(self):
        kernel = Kernel()
        members = [("s0", 0)]
        engine = make_engine(
            kernel,
            members,
            rate=20.0,
            duration=10.0,
            shard_for=lambda key: 1,  # owning shard has no members
            key_sampler=lambda rng: "k",
        )
        engine.start()
        kernel.run_until(15.0)
        assert engine.stats.completed == engine.stats.arrivals > 0


class TestCacheModel:
    def test_lru_hits_cost_less(self):
        kernel = Kernel()
        engine = make_engine(
            kernel,
            [("m", 0)],
            rate=40.0,
            duration=20.0,
            service=ServiceModel(
                base_s=0.02, hit_s=0.001, cache_capacity=8
            ),
            key_sampler=lambda rng: f"k{rng.randrange(4)}",
        )
        engine.start()
        kernel.run_until(30.0)
        # 4 keys, capacity 8: everything beyond the first touches hits.
        assert engine.stats.cache_misses <= 8
        assert engine.stats.cache_hits > engine.stats.cache_misses * 10
        assert engine.stats.cache_hit_rate() > 0.9

    def test_lru_evicts_beyond_capacity(self):
        kernel = Kernel()
        engine = make_engine(
            kernel,
            [("m", 0)],
            rate=40.0,
            duration=20.0,
            service=ServiceModel(
                base_s=0.02, hit_s=0.001, cache_capacity=2
            ),
            key_sampler=lambda rng: f"k{rng.randrange(16)}",
        )
        engine.start()
        kernel.run_until(30.0)
        # 16 keys cycling through 2 slots: mostly misses.
        assert engine.stats.cache_misses > engine.stats.cache_hits
        assert len(engine._servers["m"].cache) <= 2


class TestFaults:
    def test_lost_member_requeues_in_flight_ops(self):
        kernel = Kernel()
        members = [("a", 0), ("b", 0)]
        engine = make_engine(kernel, members, rate=300.0, duration=30.0)
        engine.start()

        def crash():
            members.remove(("a", 0))
            moved = engine.on_members_lost(["a"], herd_burst=50)
            assert moved > 0  # overloaded member had a queue

        kernel.call_at(10.0, crash)
        kernel.run_until(120.0)
        assert engine.stats.redispatched > 0
        assert engine.stats.herd_arrivals == 50
        # Nothing is lost: every arrival (incl. the herd) completes.
        assert engine.stats.completed == engine.stats.arrivals
        assert "a" not in engine._servers

    def test_latency_keeps_running_across_reconnect(self):
        kernel = Kernel()
        members = [("a", 0)]
        engine = make_engine(kernel, members, rate=100.0, duration=5.0)
        engine.start()

        def crash():
            members.append(("b", 0))
            members.remove(("a", 0))
            engine.on_members_lost(
                ["a"], reconnect_delay_s=2.0, reconnect_spread_s=0.5
            )

        kernel.call_at(4.0, crash)
        kernel.run_until(60.0)
        # Ops queued on "a" at t=4 restart after >= 2 s on "b"; their
        # recorded latency spans the crash, so the tail shows it.
        assert max(engine.stats.latencies) > 2.0

    def test_no_members_parks_and_retries(self):
        kernel = Kernel()
        members = []
        engine = make_engine(kernel, members, rate=10.0, duration=5.0)
        engine.start()
        kernel.call_at(8.0, lambda: members.append(("late", 0)))
        kernel.run_until(30.0)
        assert engine.stats.parked > 0
        assert engine.stats.completed == engine.stats.arrivals > 0


class TestDeterminism:
    def test_same_seed_byte_identical_stats(self):
        runs = []
        for _ in range(2):
            kernel = Kernel()
            members = [("a", 0), ("b", 0)]
            engine = make_engine(
                kernel,
                members,
                rate=120.0,
                duration=20.0,
                seed=42,
                service=ServiceModel(
                    base_s=0.015, hit_s=0.002, cache_capacity=4
                ),
                key_sampler=lambda rng: f"k{rng.randrange(8)}",
            )
            engine.start()
            kernel.call_at(
                5.0,
                lambda m=members, e=engine: (
                    m.remove(("a", 0)),
                    e.on_members_lost(["a"], herd_burst=20),
                ),
            )
            kernel.run_until(60.0)
            runs.append(engine.stats)
        a, b = runs
        assert a.latencies == b.latencies
        assert (a.arrivals, a.completed, a.redispatched, a.cache_hits) == (
            b.arrivals, b.completed, b.redispatched, b.cache_hits
        )


class TestServiceModel:
    def test_capacity_per_member(self):
        svc = ServiceModel(base_s=0.05, target_utilization=0.7)
        assert svc.capacity_per_member() == pytest.approx(14.0)
        # Scaled runs: service / k -> capacity x k.
        assert svc.capacity_per_member(0.5) == pytest.approx(28.0)

    def test_nominal_overrides_capacity_math(self):
        svc = ServiceModel(
            base_s=0.06, hit_s=0.004, cache_capacity=8, nominal_s=0.012
        )
        assert svc.capacity_per_member() == pytest.approx(0.7 / 0.012)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel(base_s=0.0)
        with pytest.raises(ValueError):
            ServiceModel(base_s=0.01, cache_capacity=4)  # hit_s unset
        with pytest.raises(ValueError):
            ServiceModel(base_s=0.01, target_utilization=1.5)
