"""Tests for the scenario matrix and its building blocks."""

import random

import pytest

from repro.scenarios.catalog import (
    SCENARIOS,
    FaultSpec,
    KeySpec,
    PoolSpec,
    get_scenario,
    zipf_sampler,
)


class TestMatrix:
    def test_at_least_four_scenarios(self):
        assert len(SCENARIOS) >= 4

    def test_names_match_keys(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name

    def test_required_shapes_present(self):
        # The issue's matrix: diurnal, flash crowd, thundering herd,
        # hot-key skew on shards, multi-tenant.
        assert "diurnal" in SCENARIOS
        assert "flash-crowd" in SCENARIOS
        assert "thundering-herd" in SCENARIOS
        assert "hot-key" in SCENARIOS
        assert "multi-tenant" in SCENARIOS

    def test_every_scenario_is_million_user_scale(self):
        for spec in SCENARIOS.values():
            assert spec.users >= 1_000_000

    def test_specs_are_internally_consistent(self):
        for spec in SCENARIOS.values():
            assert spec.seed > 0
            assert spec.duration_s > 0
            assert spec.tenants
            for tenant in spec.tenants:
                pattern = tenant.pattern()
                assert pattern.duration_s <= spec.duration_s
                assert tenant.service.base_s > 0
                assert 2 <= tenant.pool.min_size <= tenant.pool.max_size
                for fault in tenant.faults:
                    assert 0 < fault.at_s < spec.duration_s

    def test_pattern_builders_return_fresh_objects(self):
        # Patterns are built per run; a shared mutable pattern would
        # couple replays.
        tenant = SCENARIOS["diurnal"].tenants[0]
        assert tenant.pattern() is not tenant.pattern()

    def test_thundering_herd_has_a_herd(self):
        faults = SCENARIOS["thundering-herd"].tenants[0].faults
        assert any(f.herd_burst > 0 and f.kill_members > 0 for f in faults)

    def test_hot_key_is_sharded_with_affinity(self):
        tenant = SCENARIOS["hot-key"].tenants[0]
        assert tenant.pool.shards > 1
        assert tenant.keys is not None and tenant.keys.affinity
        assert tenant.service.cache_capacity > 0

    def test_multi_tenant_has_multiple_apps(self):
        apps = {t.app for t in SCENARIOS["multi-tenant"].tenants}
        assert len(apps) > 1

    def test_get_scenario_unknown_lists_known(self):
        with pytest.raises(KeyError, match="diurnal"):
            get_scenario("nope")

    def test_modeled_rate_inverts_model_factor(self):
        spec = SCENARIOS["diurnal"]
        assert spec.modeled_rate(90.0) == pytest.approx(
            90.0 / spec.model_factor
        )


class TestPoolSpec:
    def test_totals_multiply_by_shards(self):
        pool = PoolSpec(min_size=2, max_size=6, shards=4)
        assert pool.total_min() == 8
        assert pool.total_max() == 24


class TestZipfSampler:
    def test_deterministic_per_seed(self):
        sample = zipf_sampler(64, s=1.2)
        rng1, rng2 = random.Random(7), random.Random(7)
        assert [sample(rng1) for _ in range(200)] == [
            sample(rng2) for _ in range(200)
        ]

    def test_skew_favors_low_ranks(self):
        sample = zipf_sampler(100, s=1.2)
        rng = random.Random(3)
        draws = [sample(rng) for _ in range(5000)]
        top = sum(1 for d in draws if d in {"key-0001", "key-0002"})
        bottom = sum(1 for d in draws if d in {"key-0099", "key-0100"})
        assert top > bottom * 10

    def test_keys_cover_population_bounds(self):
        sample = zipf_sampler(8, s=0.5, prefix="sym")
        rng = random.Random(1)
        draws = {sample(rng) for _ in range(2000)}
        assert draws <= {f"sym-{r:04d}" for r in range(1, 9)}
        assert "sym-0001" in draws

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            zipf_sampler(0)


class TestSpecDefaults:
    def test_fault_defaults(self):
        fault = FaultSpec(at_s=10.0)
        assert fault.kill_members == 1
        assert fault.herd_burst == 0

    def test_key_spec_defaults_to_no_affinity(self):
        assert KeySpec(keys=16).affinity is False
