"""Tests for utilization sources and member monitors."""

import pytest

from repro.core.monitor import ManualUtilization, MemberMonitor, QueueUtilization
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import DirectTransport
from repro.sim.clock import SimClock


class Dummy(Remote):
    def op(self):
        return 1


@pytest.fixture
def skeleton():
    transport = DirectTransport()
    ep = transport.add_endpoint("s")
    return Skeleton(Dummy(), transport, ep.endpoint_id)


class TestManualUtilization:
    def test_defaults_to_zero(self):
        source = ManualUtilization()
        assert source.cpu_percent() == 0.0
        assert source.ram_percent() == 0.0

    def test_set_both(self):
        source = ManualUtilization()
        source.set(80.0, 60.0)
        assert source.cpu_percent() == 80.0
        assert source.ram_percent() == 60.0

    def test_set_cpu_only_keeps_ram(self):
        source = ManualUtilization(cpu=10.0, ram=20.0)
        source.set(50.0)
        assert source.cpu_percent() == 50.0
        assert source.ram_percent() == 20.0


class TestQueueUtilization:
    def test_idle_skeleton_is_zero(self, skeleton):
        source = QueueUtilization(skeleton, capacity=4)
        assert source.cpu_percent() == 0.0

    def test_scales_with_pending(self, skeleton):
        source = QueueUtilization(skeleton, capacity=4)
        skeleton.pending = 2
        assert source.cpu_percent() == 50.0
        skeleton.pending = 0

    def test_saturates_at_100(self, skeleton):
        source = QueueUtilization(skeleton, capacity=2)
        skeleton.pending = 10
        assert source.cpu_percent() == 100.0
        skeleton.pending = 0

    def test_ram_follows_cpu_at_ratio(self, skeleton):
        source = QueueUtilization(skeleton, capacity=4, ram_ratio=0.5)
        skeleton.pending = 4
        assert source.ram_percent() == 50.0
        skeleton.pending = 0

    def test_rejects_zero_capacity(self, skeleton):
        with pytest.raises(ValueError):
            QueueUtilization(skeleton, capacity=0)


class TestMemberMonitor:
    def test_no_samples_is_zero(self):
        monitor = MemberMonitor(clock=SimClock())
        assert monitor.window_cpu() == 0.0
        assert monitor.window_ram() == 0.0

    def test_window_average(self):
        monitor = MemberMonitor(clock=SimClock())
        monitor.record(40.0, 20.0)
        monitor.record(60.0, 40.0)
        assert monitor.window_cpu() == 50.0
        assert monitor.window_ram() == 30.0

    def test_reset_starts_fresh_window(self):
        monitor = MemberMonitor(clock=SimClock())
        monitor.record(90.0, 90.0)
        monitor.reset_window()
        assert monitor.window_cpu() == 0.0
        monitor.record(10.0, 10.0)
        assert monitor.window_cpu() == 10.0

    def test_samples_carry_timestamps(self):
        clock = SimClock()
        monitor = MemberMonitor(clock=clock)
        monitor.record(10.0, 10.0)
        clock.advance(5.0)
        monitor.record(20.0, 20.0)
        assert [s.at for s in monitor.samples] == [0.0, 5.0]
