"""Tests for elastic object pool lifecycle: instantiation, growth,
graceful shrink, sentinel election, and membership bookkeeping."""

import pytest

from repro.core.pool import MemberState
from repro.errors import PoolShutdownError
from tests.core.conftest import EchoService, settle


@pytest.fixture
def pool(runtime, kernel, dial):
    p = runtime.new_pool(EchoService, utilization_factory=dial.source)
    settle(kernel)
    return p


class TestInstantiation:
    def test_starts_with_min_pool_size(self, pool):
        assert pool.size() == 2

    def test_each_member_on_distinct_slice(self, pool):
        slices = [m.slice.slice_id for m in pool.active_members()]
        assert len(set(slices)) == len(slices)

    def test_each_member_on_distinct_endpoint(self, pool):
        """One JVM per slice, never two (paper section 4.2)."""
        endpoints = [m.endpoint_id for m in pool.active_members()]
        assert len(set(endpoints)) == len(endpoints)

    def test_partial_grant_creates_fewer_members(self, kernel):
        """If only l < k slices are available, l objects are created."""
        from repro.cluster.provisioner import InstantProvisioner
        from repro.core.runtime import ElasticRuntime

        rt = ElasticRuntime.simulated(
            kernel, nodes=1, slices_per_node=3,
            provisioner=InstantProvisioner(),
        )
        # 3 slices total, 1 taken by the shared store -> 2 left.
        class Wide(EchoService):
            def __init__(self):
                super().__init__()
                self.set_min_pool_size(5)
                self.set_max_pool_size(10)

        pool = rt.new_pool(Wide)
        settle(kernel)
        assert pool.size() == 2

    def test_store_records_member_identities(self, pool, runtime):
        """The runtime stores skeleton uids/identities in the shared
        store, as the paper stores them in HyperDex."""
        members = runtime.store.get(f"{pool.name}$members")
        assert sorted(members) == [m.uid for m in pool.active_members()]

    def test_members_attached_to_context(self, pool):
        for member in pool.active_members():
            assert member.instance._ermi_ctx is not None
            assert member.instance.get_pool_size() == 2


class TestGrowth:
    def test_grow_adds_members(self, pool, kernel):
        added = pool.grow(2)
        settle(kernel)
        assert added == 2
        assert pool.size() == 4

    def test_grow_zero_is_noop(self, pool):
        assert pool.grow(0) == 0

    def test_uids_monotonically_increase(self, pool, kernel):
        pool.grow(1)
        settle(kernel)
        uids = [m.uid for m in pool.active_members()]
        assert uids == sorted(uids)
        assert len(set(uids)) == len(uids)

    def test_provisioning_records_created(self, pool, kernel):
        pool.grow(1)
        settle(kernel)
        ups = [r for r in pool.provisioning_records if r.direction == "up"]
        assert len(ups) == 3  # 2 initial + 1 grown
        assert all(r.latency >= 0 for r in ups)

    def test_scaling_events_recorded(self, pool, kernel):
        pool.grow(1, reason="test-reason")
        settle(kernel)
        event = pool.scaling_events[-1]
        assert event.decision == 1
        assert event.granted == 1
        assert event.reason == "test-reason"


class TestShrink:
    def test_shrink_removes_members(self, pool, kernel):
        pool.grow(2)
        settle(kernel)
        removed = pool.shrink(2)
        settle(kernel, seconds=30.0)
        assert removed == 2
        assert pool.size() == 2

    def test_shrink_never_goes_below_min(self, pool, kernel):
        assert pool.shrink(5) == 0
        settle(kernel)
        assert pool.size() == 2

    def test_shrink_spares_the_sentinel(self, pool, kernel):
        pool.grow(2)
        settle(kernel)
        sentinel_uid = pool.sentinel().uid
        pool.shrink(2)
        settle(kernel, seconds=30.0)
        assert pool.sentinel().uid == sentinel_uid

    def test_removed_slice_returns_to_cluster(self, pool, kernel, runtime):
        free_before = runtime.master.free_slice_count()
        pool.grow(1)
        settle(kernel)
        pool.shrink(1)
        settle(kernel, seconds=30.0)
        assert runtime.master.free_slice_count() == free_before

    def test_draining_member_redirects_new_calls(self, pool, kernel, runtime):
        """Step one of the removal protocol: once redirection starts, the
        departing skeleton accepts no new invocations."""
        pool.grow(1)
        settle(kernel)
        victims = [
            m for m in pool.active_members() if m is not pool.sentinel()
        ]
        victim = max(victims, key=lambda m: m.uid)
        pool.shrink(1)
        # Member is DRAINING until the drain delay elapses.
        assert victim.state is MemberState.DRAINING
        from repro.errors import MemberDrainedError
        from repro.rmi.remote import Stub

        stub = Stub(runtime.transport, victim.ref())
        with pytest.raises(MemberDrainedError):
            stub.echo("x")

    def test_shrink_records_down_provisioning(self, pool, kernel):
        pool.grow(1)
        settle(kernel)
        pool.shrink(1)
        settle(kernel, seconds=30.0)
        downs = [r for r in pool.provisioning_records if r.direction == "down"]
        assert len(downs) == 1


class TestSentinel:
    def test_sentinel_is_lowest_uid(self, pool):
        uids = [m.uid for m in pool.active_members()]
        assert pool.sentinel().uid == min(uids)

    def test_member_identities_sentinel_first(self, pool, kernel):
        pool.grow(1)
        settle(kernel)
        refs = pool.member_identities()
        assert refs[0].uid == pool.sentinel().uid
        assert len(refs) == 3

    def test_sentinel_reelected_after_termination(self, pool, kernel):
        old = pool.sentinel()
        pool._terminate(old)
        new = pool.sentinel()
        assert new is not None
        assert new.uid > old.uid


class TestWindows:
    def test_roll_window_aggregates_method_stats(self, pool, runtime, kernel):
        stub = runtime.stub(pool.name)
        for i in range(10):
            stub.echo(i)
        pool.roll_window()
        stats = pool.method_call_stats()
        assert stats["echo"].calls == 10
        assert stats["echo"].rate == pytest.approx(10 / 60.0)

    def test_roll_window_resets_counts(self, pool, runtime):
        stub = runtime.stub(pool.name)
        stub.echo(1)
        pool.roll_window()
        pool.roll_window()
        assert pool.method_call_stats().get("echo") is None or (
            pool.method_call_stats()["echo"].calls == 0
        )

    def test_utilization_window_average(self, pool, dial, kernel):
        dial.cpu = 80.0
        pool.sample_utilization()
        pool.sample_utilization()
        assert pool.avg_cpu_usage() == pytest.approx(80.0)
        pool.roll_window()
        assert pool.avg_cpu_usage() == pytest.approx(80.0)  # cached window

    def test_pending_by_member_initially_zero(self, pool):
        assert set(pool.pending_by_member().values()) == {0}


class TestShutdown:
    def test_shutdown_releases_everything(self, pool, runtime, kernel):
        pool.shutdown()
        assert pool.size() == 0
        # Only the runtime's store slice remains allocated.
        assert runtime.master.allocated_slices() == 1

    def test_operations_after_shutdown_raise(self, pool):
        pool.shutdown()
        with pytest.raises(PoolShutdownError):
            pool.grow(1)
        with pytest.raises(PoolShutdownError):
            pool.shrink(1)

    def test_double_shutdown_is_noop(self, pool):
        pool.shutdown()
        pool.shutdown()
