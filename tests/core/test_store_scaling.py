"""Tests for runtime-driven store growth and admin notifications
(paper section 4.2)."""

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel
from tests.core.conftest import EchoService, settle


def make_runtime(kernel, ops_limit, nodes=6):
    return ElasticRuntime.simulated(
        kernel,
        nodes=nodes,
        provisioner=InstantProvisioner(),
        store_ops_per_node_limit=ops_limit,
    )


class TestStoreMonitoring:
    def test_hot_store_gains_a_node(self, kernel):
        runtime = make_runtime(kernel, ops_limit=100)
        assert runtime.store.node_count() == 1
        # Hammer the store past the per-node ops limit within one window.
        for i in range(500):
            runtime.store.put(f"k{i}", i)
        kernel.run_until(61.0)
        assert runtime.store.node_count() == 2
        assert len(runtime.store_scale_events) == 1

    def test_idle_store_does_not_grow(self, kernel):
        runtime = make_runtime(kernel, ops_limit=100)
        kernel.run_until(300.0)
        assert runtime.store.node_count() == 1
        assert runtime.store_scale_events == []

    def test_store_growth_consumes_a_cluster_slice(self, kernel):
        runtime = make_runtime(kernel, ops_limit=100)
        allocated_before = runtime.master.allocated_slices()
        for i in range(500):
            runtime.store.put(f"k{i}", i)
        kernel.run_until(61.0)
        assert runtime.master.allocated_slices() == allocated_before + 1

    def test_monitoring_disabled_with_none_limit(self, kernel):
        runtime = make_runtime(kernel, ops_limit=None)
        for i in range(5000):
            runtime.store.put(f"k{i}", i)
        kernel.run_until(300.0)
        assert runtime.store.node_count() == 1

    def test_growth_pauses_during_master_outage(self, kernel):
        runtime = make_runtime(kernel, ops_limit=100)
        runtime.master.fail()
        for i in range(500):
            runtime.store.put(f"k{i}", i)
        kernel.run_until(61.0)
        assert runtime.store.node_count() == 1
        runtime.master.recover()
        for i in range(500):
            runtime.store.get(f"k{i}")
        kernel.run_until(121.0)
        assert runtime.store.node_count() == 2

    def test_data_intact_after_growth(self, kernel):
        runtime = make_runtime(kernel, ops_limit=100)
        for i in range(300):
            runtime.store.put(f"k{i}", i)
        kernel.run_until(61.0)
        assert runtime.store.node_count() == 2
        for i in range(300):
            assert runtime.store.get(f"k{i}") == i

    def test_pool_traffic_can_trigger_growth(self, kernel):
        runtime = make_runtime(kernel, ops_limit=50)
        runtime.new_pool(EchoService)
        settle(kernel)
        stub = runtime.stub("EchoService")
        for _ in range(200):
            stub.count()  # each call is a store update
        kernel.run_until(kernel.clock.now() + 61.0)
        assert runtime.store.node_count() >= 2


class TestAdminNotifications:
    def test_high_watermark_notifies_administrator(self, kernel):
        runtime = make_runtime(kernel, ops_limit=None, nodes=2)
        alerts = []
        runtime.watch_cluster_utilization(
            high=0.5, low=0.1,
            on_high=lambda u: alerts.append(("high", round(u, 2))),
            on_low=lambda u: alerts.append(("low", round(u, 2))),
        )
        pool = runtime.new_pool(EchoService, max_size=8)
        settle(kernel)
        pool.grow(3)
        settle(kernel)
        assert ("high", pytest.approx(0.75)) in [
            (kind, util) for kind, util in alerts
        ]

    def test_low_watermark_on_shutdown(self, kernel):
        runtime = make_runtime(kernel, ops_limit=None, nodes=2)
        lows = []
        pool = runtime.new_pool(EchoService)
        settle(kernel)
        runtime.watch_cluster_utilization(
            high=0.9, low=0.2,
            on_high=lambda u: None,
            on_low=lows.append,
        )
        pool.shutdown()
        assert lows  # utilization fell to the store slice only
