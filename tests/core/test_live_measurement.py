"""End-to-end: fine-grained scaling driven by *measured* method-call
statistics (no driver hint), the live measurement path of
``ThroughputScaledService.observed_rate``."""

import pytest

from repro.apps.common import ThroughputScaledService
from repro.cluster.provisioner import InstantProvisioner
from repro.core.runtime import ElasticRuntime
from repro.sim.kernel import Kernel


class MeasuredService(ThroughputScaledService):
    """Scales purely from its own call statistics."""

    CAPACITY_PER_MEMBER = 10.0  # tiny, so a test can saturate it
    TARGET_UTILIZATION = 0.8

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(10)

    def serve(self, item):
        return item


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    return ElasticRuntime.simulated(
        kernel, nodes=6, provisioner=InstantProvisioner()
    )


class TestMeasuredScaling:
    def test_observed_rate_comes_from_method_stats(self, runtime, kernel):
        pool = runtime.new_pool(MeasuredService)
        kernel.run_until(1.0)
        stub = runtime.stub("MeasuredService")
        # 1200 calls in the first 60 s burst window -> 20 ops/s measured.
        for i in range(1200):
            stub.serve(i)
        kernel.run_until(61.0)  # burst tick: roll window + decide
        member = pool.active_members()[0]
        rate = member.instance.observed_rate()
        # Slightly above 20/s: the stub's periodic membership refreshes
        # are real calls and are measured too.
        assert rate == pytest.approx(1200 / 60.0, rel=0.05)

    def test_pool_grows_from_measured_traffic(self, runtime, kernel):
        """20 ops/s over 8 ops/s-per-member effective capacity needs 3
        members; the pool must get there from stats alone."""
        pool = runtime.new_pool(MeasuredService)
        kernel.run_until(1.0)
        stub = runtime.stub("MeasuredService")
        for i in range(1200):
            stub.serve(i)
        kernel.run_until(61.5)
        assert pool.size() == 3

    def test_pool_shrinks_when_traffic_stops(self, runtime, kernel):
        pool = runtime.new_pool(MeasuredService)
        kernel.run_until(1.0)
        stub = runtime.stub("MeasuredService")
        for i in range(2400):
            stub.serve(i)
        kernel.run_until(61.5)
        grown = pool.size()
        assert grown > 2
        # Silence: subsequent windows measure ~0 ops/s.
        kernel.run_until(kernel.clock.now() + 3 * 60.0)
        assert pool.size() == 2

    def test_hint_takes_precedence_over_stats(self, runtime, kernel):
        pool = runtime.new_pool(MeasuredService)
        kernel.run_until(1.0)
        stub = runtime.stub("MeasuredService")
        for i in range(600):
            stub.serve(i)
        runtime.store.put("MeasuredService$offered_rate", 999.0)
        kernel.run_until(61.0)
        member = pool.active_members()[0]
        assert member.instance.observed_rate() == 999.0
