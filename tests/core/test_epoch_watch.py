"""The watched epoch path: zero store reads steady-state, push convergence.

PR 8's tentpole: `ElasticStub._read_epoch` used to issue one store
``get`` per invocation.  With the runtime's WatchCache the epoch is a
push-invalidated local value — steady-state calls read the store zero
times, and a membership change still reaches the stub immediately
because the epoch bump is pushed into the cache, not discovered by the
next poll.
"""

from __future__ import annotations

import pytest

from tests.core.conftest import EchoService, settle


@pytest.fixture
def pool(runtime, kernel):
    p = runtime.new_pool(EchoService, name="pool")
    settle(kernel)
    return p


def epoch_reads(store, counts, name="pool"):
    return counts.get(("get", f"{name}$epoch"), 0)


@pytest.fixture
def op_counts(runtime):
    counts: dict[tuple[str, str], int] = {}

    def on_op(op, key):
        counts[(op, key)] = counts.get((op, key), 0) + 1

    runtime.store._on_op = on_op
    return counts


class TestSteadyState:
    def test_zero_epoch_reads_per_call(self, runtime, pool, op_counts):
        stub = runtime.stub("pool")
        stub.echo("warm")  # first call: one read-through miss
        op_counts.clear()
        for i in range(50):
            assert stub.echo(i) == i
        assert epoch_reads(runtime.store, op_counts) == 0

    def test_poll_mode_keeps_one_read_per_call(self, runtime, pool, op_counts):
        stub = runtime.stub("pool", epoch_caching=False)
        stub.echo("warm")
        op_counts.clear()
        for i in range(50):
            assert stub.echo(i) == i
        assert epoch_reads(runtime.store, op_counts) == 50

    def test_stubs_share_one_cache_subscription(self, runtime, pool):
        before = runtime.store.watch_stats()["subscriptions"]
        stubs = [runtime.stub("pool") for _ in range(10)]
        for s in stubs:
            s.echo("x")
        after = runtime.store.watch_stats()["subscriptions"]
        # One watched key (the epoch), regardless of stub count.
        assert after - before <= 1


class TestConvergence:
    def test_membership_change_is_pushed_to_cached_stub(
        self, runtime, kernel, pool, op_counts
    ):
        stub = runtime.stub("pool")
        stub.echo("warm")
        members_before = len(pool.active_members())
        pool.grow(2)
        settle(kernel)
        assert len(pool.active_members()) == members_before + 2
        op_counts.clear()
        # The epoch bump was pushed into the cache: the next call sees
        # the new epoch without any epoch-key store read, refreshes its
        # member set, and round-robins over the grown pool.
        for i in range(2 * (members_before + 2)):
            assert stub.echo(i) == i
        assert epoch_reads(runtime.store, op_counts) == 0
        served = set()
        for m in pool.active_members():
            stats = m.skeleton.stats.snapshot().get("echo")
            if stats and stats.calls:
                served.add(m.uid)
        assert len(served) == members_before + 2

    def test_field_reads_go_through_cache(self, runtime, kernel, pool, op_counts):
        stub = runtime.stub("pool")
        stub.count()  # update: always a store round-trip (atomic RMW)
        op_counts.clear()
        # Repeated reads of the elastic field from pool members hit the
        # shared cache, not the store.
        for _ in range(20):
            stub.echo("x")
        assert op_counts.get(("get", "EchoService$total_calls"), 0) == 0


class TestSentinelCoalescing:
    def test_identical_ticks_skip_map_puts_and_broadcasts(
        self, runtime, kernel, op_counts
    ):
        runtime.new_sharded_pool(EchoService, name="svc", shards=2)
        settle(kernel)
        agent = runtime.record("svc/shard0").sentinel_agent
        agent.tick()
        first_puts = op_counts.get(("put", "svc$shardmap/0"), 0)
        assert first_puts == 1
        agent.tick()  # nothing changed: the put must be skipped
        assert op_counts.get(("put", "svc$shardmap/0"), 0) == first_puts
        assert agent.skipped_puts == 1
        assert agent.skipped_broadcasts >= 1
        assert agent.broadcasts == 2  # tick cycles still counted

    def test_changed_state_still_published(self, runtime, kernel, op_counts):
        pool = runtime.new_sharded_pool(EchoService, name="chg", shards=2)
        settle(kernel)
        agent = runtime.record("chg/shard0").sentinel_agent
        agent.tick()
        pool.shards[0].grow(1)
        settle(kernel)
        agent.tick()
        entry = runtime.store.get("chg$shardmap/0")
        assert entry["size"] == 3
        assert agent.skipped_puts == 0
