"""Tests for the preprocessor transformation: elastic fields and
synchronized methods (paper Figure 6 semantics)."""

import threading

import pytest

from repro.core.api import ElasticObject
from repro.core.fields import elastic_field, is_synchronized, synchronized
from repro.kvstore.locks import LockManager
from repro.kvstore.store import HyperStore


class C1(ElasticObject):
    """The paper's Figure 6 example class."""

    x = elastic_field(default=0)
    z = elastic_field(default=0)

    def foo(self):
        if self.x == 5:
            self.z = 10

    @synchronized
    def bar(self):
        return "critical"


class FakeCtx:
    """Just enough MemberContext for field/lock tests."""

    def __init__(self, store, locks, owner="member-1"):
        self.store = store
        self.locks = locks
        self._owner = owner

    def lock_owner_id(self):
        return self._owner


@pytest.fixture
def store():
    return HyperStore(nodes=1)


@pytest.fixture
def locks():
    return LockManager()


def attach(obj, store, locks, owner="member-1"):
    obj._ermi_ctx = FakeCtx(store, locks, owner)
    return obj


class TestStoreKeyNaming:
    def test_key_is_class_dollar_field(self):
        """Figure 6: variable x of class C1 uses key 'C1$x'."""
        assert C1.x.store_key == "C1$x"
        assert C1.z.store_key == "C1$z"

    def test_explicit_key_override(self):
        class K(ElasticObject):
            f = elastic_field(default=0, key="custom-key")

        assert K.f.store_key == "custom-key"


class TestAttachedFields:
    def test_write_goes_to_store(self, store, locks):
        obj = attach(C1(), store, locks)
        obj.x = 5
        assert store.get("C1$x") == 5

    def test_read_comes_from_store(self, store, locks):
        store.put("C1$x", 7)
        obj = attach(C1(), store, locks)
        assert obj.x == 7

    def test_default_before_first_write(self, store, locks):
        obj = attach(C1(), store, locks)
        assert obj.x == 0

    def test_figure6_transformation(self, store, locks):
        """if (x == 5) z = 10 — through the store."""
        obj = attach(C1(), store, locks)
        obj.x = 5
        obj.foo()
        assert store.get("C1$z") == 10

    def test_state_shared_between_pool_members(self, store, locks):
        """Two members of the pool see one copy of each field."""
        a = attach(C1(), store, locks, owner="member-1")
        b = attach(C1(), store, locks, owner="member-2")
        a.x = 42
        assert b.x == 42

    def test_atomic_update(self, store, locks):
        obj = attach(C1(), store, locks)
        C1.x.update(obj, lambda v: v + 10)
        assert obj.x == 10

    def test_concurrent_updates_do_not_lose_increments(self, store, locks):
        obj = attach(C1(), store, locks)

        def bump():
            for _ in range(100):
                C1.x.update(obj, lambda v: v + 1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert obj.x == 400


class TestDetachedFields:
    def test_detached_uses_local_storage(self):
        obj = C1()
        obj.x = 9
        assert obj.x == 9

    def test_detached_instances_do_not_share(self):
        a, b = C1(), C1()
        a.x = 1
        assert b.x == 0

    def test_detached_update(self):
        obj = C1()
        C1.x.update(obj, lambda v: v + 3)
        assert obj.x == 3

    def test_class_access_returns_descriptor(self):
        assert isinstance(C1.x, elastic_field)


class TestSynchronized:
    def test_marker(self):
        assert is_synchronized(C1.bar)
        assert not is_synchronized(C1.foo)

    def test_lock_named_after_class(self, store, locks):
        """Figure 6: synchronized methods of C1 use a lock called 'C1'."""
        events = []
        obj = attach(C1(), store, locks)
        original_lock = locks.lock

        def spying_lock(name, owner, **kw):
            events.append(name)
            return original_lock(name, owner, **kw)

        locks.lock = spying_lock
        obj.bar()
        assert events == ["C1"]
        assert locks.holder("C1") is None  # released afterwards

    def test_lock_released_on_exception(self, store, locks):
        class Boom(ElasticObject):
            @synchronized
            def bad(self):
                raise RuntimeError("inside critical section")

        obj = attach(Boom(), store, locks)
        with pytest.raises(RuntimeError):
            obj.bad()
        assert locks.holder("Boom") is None

    def test_mutual_exclusion_across_members(self, store, locks):
        class Counter(ElasticObject):
            total = elastic_field(default=0)

            @synchronized
            def bump(self):
                current = self.total
                self.total = current + 1

        a = attach(Counter(), store, locks, owner="m1")
        b = attach(Counter(), store, locks, owner="m2")

        def worker(obj):
            for _ in range(150):
                obj.bump()

        threads = [
            threading.Thread(target=worker, args=(o,)) for o in (a, b)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.total == 300

    def test_reentrant_synchronized_calls(self, store, locks):
        class Nested(ElasticObject):
            @synchronized
            def outer(self):
                return self.inner() + 1

            @synchronized
            def inner(self):
                return 1

        obj = attach(Nested(), store, locks)
        assert obj.outer() == 2
        assert locks.holder("Nested") is None

    def test_detached_synchronized_uses_process_lock(self):
        obj = C1()
        assert obj.bar() == "critical"
