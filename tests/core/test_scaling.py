"""Tests for the four scaling policies and policy selection."""

import pytest

from repro.core.api import Decider, ElasticConfig, ElasticObject
from repro.core.scaling import (
    CoarseGrainedPolicy,
    DeciderPolicy,
    FineGrainedPolicy,
    ImplicitPolicy,
    select_policy,
)
from tests.core.conftest import EchoService, settle


@pytest.fixture
def pool(runtime, kernel, dial):
    p = runtime.new_pool(EchoService, utilization_factory=dial.source)
    settle(kernel)
    return p


def feed_cpu(pool, dial, cpu, ram=0.0):
    dial.cpu = cpu
    dial.ram = ram
    pool.sample_utilization()
    pool.roll_window()


class TestImplicitPolicy:
    def test_adds_one_above_90(self, pool, dial):
        feed_cpu(pool, dial, 95.0)
        assert ImplicitPolicy().decide(pool) == 1

    def test_removes_one_below_60(self, pool, dial):
        feed_cpu(pool, dial, 40.0)
        assert ImplicitPolicy().decide(pool) == -1

    def test_holds_between_thresholds(self, pool, dial):
        feed_cpu(pool, dial, 75.0)
        assert ImplicitPolicy().decide(pool) == 0

    def test_exact_boundaries_hold(self, pool, dial):
        feed_cpu(pool, dial, 90.0)
        assert ImplicitPolicy().decide(pool) == 0
        feed_cpu(pool, dial, 60.0)
        assert ImplicitPolicy().decide(pool) == 0


class TestCoarseGrainedPolicy:
    def _policy(self, **kw):
        cfg = ElasticConfig(
            cpu_incr_threshold=kw.get("cpu_incr", 85.0),
            cpu_decr_threshold=kw.get("cpu_decr", 50.0),
            ram_incr_threshold=kw.get("ram_incr", 70.0),
            ram_decr_threshold=kw.get("ram_decr", 40.0),
        )
        return CoarseGrainedPolicy(cfg)

    def test_cpu_alone_triggers_growth(self, pool, dial):
        feed_cpu(pool, dial, 90.0, ram=10.0)
        assert self._policy().decide(pool) == 1

    def test_ram_alone_triggers_growth_logical_or(self, pool, dial):
        """Paper section 3.3: CPU and RAM thresholds combine with OR."""
        feed_cpu(pool, dial, 20.0, ram=80.0)
        assert self._policy().decide(pool) == 1

    def test_shrink_requires_both_below(self, pool, dial):
        feed_cpu(pool, dial, 30.0, ram=60.0)
        assert self._policy().decide(pool) == 0
        feed_cpu(pool, dial, 30.0, ram=20.0)
        assert self._policy().decide(pool) == -1

    def test_no_ram_thresholds_cpu_only(self, pool, dial):
        cfg = ElasticConfig(cpu_incr_threshold=85.0, cpu_decr_threshold=50.0)
        feed_cpu(pool, dial, 20.0, ram=99.0)
        assert CoarseGrainedPolicy(cfg).decide(pool) == -1


class FineVoter(EchoService):
    """Each member votes what the test put in the shared vote field."""

    def __init__(self):
        super().__init__()
        self.vote = 0

    def change_pool_size(self):
        return self.vote


class TestFineGrainedPolicy:
    @pytest.fixture
    def voter_pool(self, runtime, kernel):
        p = runtime.new_pool(FineVoter)
        settle(kernel)
        return p

    def set_votes(self, pool, votes):
        members = pool.active_members()
        for member, vote in zip(members, votes):
            member.instance.vote = vote

    def test_votes_are_averaged(self, voter_pool):
        """Paper section 3.3: values returned by the objects in the pool
        are averaged."""
        self.set_votes(voter_pool, [2, 2])
        assert FineGrainedPolicy().decide(voter_pool) == 2

    def test_mixed_votes_round_toward_zero(self, voter_pool):
        self.set_votes(voter_pool, [2, -1])  # mean 0.5 -> 0
        assert FineGrainedPolicy().decide(voter_pool) == 0

    def test_negative_average(self, voter_pool):
        self.set_votes(voter_pool, [-2, -2])
        assert FineGrainedPolicy().decide(voter_pool) == -2

    def test_raising_member_abstains(self, voter_pool):
        members = voter_pool.active_members()
        members[0].instance.vote = 4

        def explode():
            raise RuntimeError("broken voter")

        members[1].instance.change_pool_size = explode
        assert FineGrainedPolicy().decide(voter_pool) == 2  # (4 + 0) / 2

    def test_empty_pool_returns_zero(self, voter_pool):
        for m in list(voter_pool.active_members()):
            voter_pool._terminate(m)
        assert FineGrainedPolicy().decide(voter_pool) == 0


class TestDeciderPolicy:
    class FixedDecider(Decider):
        def __init__(self, desired):
            self.desired = desired

        def get_desired_pool_size(self, pool):
            return self.desired

    def test_delta_is_desired_minus_current(self, pool):
        assert DeciderPolicy(self.FixedDecider(5)).decide(pool) == 3
        assert DeciderPolicy(self.FixedDecider(2)).decide(pool) == 0

    def test_negative_delta(self, pool):
        assert DeciderPolicy(self.FixedDecider(0)).decide(pool) == -2

    def test_decider_error_abstains(self, pool):
        class Broken(Decider):
            def get_desired_pool_size(self, pool):
                raise RuntimeError("decider down")

        assert DeciderPolicy(Broken()).decide(pool) == 0


class TestPolicySelection:
    def test_default_is_implicit(self):
        policy = select_policy(EchoService, ElasticConfig(), None)
        assert isinstance(policy, ImplicitPolicy)

    def test_explicit_thresholds_select_coarse(self):
        cfg = ElasticConfig(explicit_thresholds=True)
        policy = select_policy(EchoService, cfg, None)
        assert isinstance(policy, CoarseGrainedPolicy)

    def test_change_pool_size_override_selects_fine(self):
        cfg = ElasticConfig(explicit_thresholds=True)
        policy = select_policy(FineVoter, cfg, None)
        assert isinstance(policy, FineGrainedPolicy)

    def test_decider_takes_precedence(self):
        decider = TestDeciderPolicy.FixedDecider(3)
        policy = select_policy(FineVoter, ElasticConfig(), decider)
        assert isinstance(policy, DeciderPolicy)


class TestPolicyNames:
    def test_names_for_telemetry(self):
        assert ImplicitPolicy().name == "implicit"
        assert FineGrainedPolicy().name == "fine-grained"
        assert CoarseGrainedPolicy(ElasticConfig()).name == "coarse-grained"
        assert (
            DeciderPolicy(TestDeciderPolicy.FixedDecider(1)).name == "decider"
        )
