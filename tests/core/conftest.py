"""Fixtures and helpers for core (elastic pool) tests."""

from __future__ import annotations

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import ElasticObject
from repro.core.fields import elastic_field
from repro.sim.kernel import Kernel
from repro.core.runtime import ElasticRuntime


class CpuDial:
    """A shared utilization source all pool members report from; tests
    turn the dial to drive scaling decisions."""

    def __init__(self, cpu: float = 0.0, ram: float = 0.0) -> None:
        self.cpu = cpu
        self.ram = ram

    def source(self, member):
        return self

    def cpu_percent(self) -> float:
        return self.cpu

    def ram_percent(self) -> float:
        return self.ram


class EchoService(ElasticObject):
    """Minimal elastic class used across core tests."""

    total_calls = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(6)

    def echo(self, value):
        return value

    def count(self):
        C = type(self)
        return C.total_calls.update(self, lambda v: v + 1)


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def runtime(kernel):
    """Simulated runtime with instantaneous provisioning: scaling effects
    become visible at the next kernel step."""
    return ElasticRuntime.simulated(
        kernel, nodes=8, slices_per_node=4, provisioner=InstantProvisioner()
    )


@pytest.fixture
def dial():
    return CpuDial()


def settle(kernel, seconds=1.0):
    """Run the kernel briefly so zero-delay activations complete."""
    kernel.run_until(kernel.clock.now() + seconds)
