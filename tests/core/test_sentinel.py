"""Tests for sentinel duties: pool-state broadcast and rebalance plans."""

import pytest

from repro.core.sentinel import SentinelAgent
from tests.core.conftest import EchoService, settle


@pytest.fixture
def pool(runtime, kernel):
    p = runtime.new_pool(EchoService, max_size=8)
    settle(kernel)
    p.grow(1)
    settle(kernel)
    return p


@pytest.fixture
def agent(pool):
    return SentinelAgent(pool)


class TestBroadcast:
    def test_tick_broadcasts_pool_state(self, pool, agent):
        agent.tick()
        state = pool.last_broadcast_state
        assert state is not None
        assert state["kind"] == "pool-state"
        assert state["size"] == 3
        assert state["sentinel"] == pool.sentinel().uid

    def test_state_includes_pending_counts(self, pool, agent):
        agent.tick()
        pending = pool.last_broadcast_state["pending"]
        assert set(pending) == {m.uid for m in pool.active_members()}

    def test_broadcast_counter(self, pool, agent):
        agent.tick()
        agent.tick()
        assert agent.broadcasts == 2

    def test_no_sentinel_no_broadcast(self, pool, agent):
        for m in list(pool.active_members()):
            pool._terminate(m)
        assert agent.tick() is None
        assert agent.broadcasts == 0


class TestRebalanceInstallation:
    def test_balanced_pool_installs_no_redirects(self, pool, agent):
        agent.tick()
        for member in pool.active_members():
            assert member.skeleton.redirect_policy is None

    def test_overloaded_member_gets_redirect_directive(self, pool, agent):
        members = pool.active_members()
        hot = members[-1]
        hot.skeleton.pending = 30  # simulate a backlog
        agent.tick()
        assert hot.skeleton.redirect_policy is not None
        assert agent.last_decision.overloaded == [hot.uid]
        hot.skeleton.pending = 0

    def test_redirect_cleared_once_balanced(self, pool, agent):
        members = pool.active_members()
        hot = members[-1]
        hot.skeleton.pending = 30
        agent.tick()
        hot.skeleton.pending = 0
        agent.tick()
        assert hot.skeleton.redirect_policy is None

    def test_redirected_calls_execute_on_target(self, runtime, pool, agent):
        """An overloaded skeleton bounces invocations and the client
        follows the redirect transparently."""
        members = pool.active_members()
        hot = members[-1]
        hot.skeleton.pending = 50
        agent.tick()
        hot.skeleton.pending = 0

        from repro.rmi.remote import Stub

        stub = Stub(runtime.transport, hot.ref())
        assert stub.echo("bounced") == "bounced"
        # The call must have been served by some *other* member.
        assert hot.skeleton.stats.snapshot().get("echo") is None
