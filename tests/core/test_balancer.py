"""Tests for client-side load balancing (elastic stubs) and the
first-fit server-side rebalancer."""

import pytest

from repro.core.balancer import (
    BalancingMode,
    ElasticStub,
    FirstFitRebalancer,
    FractionalRedirect,
)
from repro.errors import ApplicationError, ConnectError
from repro.rmi.remote import RemoteRef
from repro.rmi.transport import Request
from tests.core.conftest import EchoService, settle


@pytest.fixture
def pool(runtime, kernel):
    p = runtime.new_pool(EchoService, max_size=8)
    settle(kernel)
    p.grow(2)
    settle(kernel)
    return p


@pytest.fixture
def stub(runtime, pool):
    return runtime.stub(pool.name)


def calls_per_member(pool, method="echo"):
    counts = {}
    for m in pool.active_members():
        stats = m.skeleton.stats.snapshot().get(method)
        counts[m.uid] = stats.calls if stats else 0
    return counts


class TestClientBalancing:
    def test_pool_appears_as_single_object(self, stub):
        assert stub.echo("hello") == "hello"

    def test_round_robin_spreads_calls(self, stub, pool):
        for i in range(40):
            stub.echo(i)
        counts = calls_per_member(pool)
        # 40 calls over 4 members: each member sees exactly 10.
        assert all(count == 10 for count in counts.values())

    def test_random_mode_reaches_all_members(self, runtime, pool):
        stub = runtime.stub(pool.name, mode=BalancingMode.RANDOM)
        for i in range(100):
            stub.echo(i)
        counts = calls_per_member(pool)
        assert all(count > 0 for count in counts.values())

    def test_bootstrap_fetches_identities_from_sentinel(self, stub, pool):
        stub.echo("first-contact")
        refs = stub.members_snapshot()
        assert len(refs) == 4
        assert refs[0].uid == pool.sentinel().uid

    def test_application_errors_propagate_not_retried(self, runtime, kernel):
        class Flaky(EchoService):
            def bad(self):
                raise ValueError("app bug")

        runtime.new_pool(Flaky)
        settle(kernel)
        stub = runtime.stub("Flaky")
        with pytest.raises(ApplicationError) as info:
            stub.bad()
        assert isinstance(info.value.cause, ValueError)


class TestClientFailover:
    def test_stub_retries_on_dead_member(self, runtime, stub, pool):
        """Paper section 4.3: if the sending fails, the stub intercepts
        the exception and retries on other objects."""
        stub.echo("warm-up")  # caches 4 identities
        victim = pool.active_members()[1]
        runtime.transport.kill(victim.endpoint_id)
        results = [stub.echo(i) for i in range(12)]
        assert results == list(range(12))

    def test_stub_survives_sentinel_death(self, runtime, stub, pool):
        stub.echo("warm-up")
        sentinel = pool.sentinel()
        runtime.transport.kill(sentinel.endpoint_id)
        pool.detect_dead_members()  # runtime tick would do this
        assert stub.echo("still-works") == "still-works"

    def test_stub_refreshes_membership_after_failures(self, runtime, stub, pool):
        stub.echo("warm-up")
        victim = pool.active_members()[2]
        runtime.transport.kill(victim.endpoint_id)
        pool.detect_dead_members()
        for i in range(10):
            stub.echo(i)
        live_refs = {m.ref() for m in pool.active_members()}
        assert set(stub.members_snapshot()) <= live_refs

    def test_total_pool_failure_propagates(self, runtime, stub, pool):
        """Only when every member fails does the exception reach the
        application."""
        stub.echo("warm-up")
        for member in pool.active_members():
            runtime.transport.kill(member.endpoint_id)
        with pytest.raises(ConnectError):
            stub.echo("doomed")

    def test_drained_member_is_skipped(self, runtime, stub, pool):
        stub.echo("warm-up")
        pool.shrink(1)  # one member begins draining
        results = [stub.echo(i) for i in range(10)]
        assert results == list(range(10))


class TestFractionalRedirect:
    def _req(self):
        return Request("obj", "m", b"")

    def test_zero_fraction_never_redirects(self):
        redirect = FractionalRedirect(0.0, [])
        assert all(redirect(self._req()) is None for _ in range(10))

    def test_full_fraction_always_redirects(self):
        target = RemoteRef("ep", "obj")
        redirect = FractionalRedirect(1.0, [target])
        assert all(redirect(self._req()) == target for _ in range(10))

    def test_half_fraction_alternates(self):
        target = RemoteRef("ep", "obj")
        redirect = FractionalRedirect(0.5, [target])
        outcomes = [redirect(self._req()) for _ in range(100)]
        redirected = sum(1 for o in outcomes if o is not None)
        assert redirected == 50

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FractionalRedirect(1.5, [RemoteRef("ep", "obj")])

    def test_positive_fraction_needs_targets(self):
        with pytest.raises(ValueError):
            FractionalRedirect(0.5, [])


class TestFirstFitRebalancer:
    REFS = {uid: RemoteRef(f"ep-{uid}", f"obj-{uid}", uid) for uid in range(1, 6)}

    def test_balanced_pool_needs_no_plan(self):
        decision = FirstFitRebalancer().plan(
            {1: 10, 2: 10, 3: 10}, self.REFS
        )
        assert decision.overloaded == []
        assert all(d is None for d in decision.plan.values())

    def test_overloaded_member_redirects_to_underloaded(self):
        decision = FirstFitRebalancer().plan(
            {1: 30, 2: 0, 3: 0}, self.REFS
        )
        assert decision.overloaded == [1]
        directive = decision.plan[1]
        assert directive is not None
        targets = {ref.uid for ref in directive.targets}
        assert targets <= {2, 3}

    def test_first_fit_decreasing_order(self):
        """Largest excess is packed first."""
        decision = FirstFitRebalancer().plan(
            {1: 50, 2: 30, 3: 0, 4: 0}, self.REFS
        )
        assert decision.overloaded == [1, 2]

    def test_fraction_proportional_to_excess(self):
        decision = FirstFitRebalancer().plan(
            {1: 40, 2: 0}, self.REFS
        )
        directive = decision.plan[1]
        # mean = 20, excess = 20 of 40 pending -> fraction 0.5
        assert directive.fraction == pytest.approx(0.5)

    def test_single_member_no_plan(self):
        decision = FirstFitRebalancer().plan({1: 99}, self.REFS)
        assert decision.plan == {1: None}

    def test_tolerance_suppresses_small_imbalance(self):
        decision = FirstFitRebalancer(tolerance=0.5).plan(
            {1: 12, 2: 10, 3: 8}, self.REFS
        )
        assert all(d is None for d in decision.plan.values())

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            FirstFitRebalancer(tolerance=-0.1)
