"""Live-mode (wall clock, threads) integration tests.

These exercise the exact code paths the runnable examples use: a
ThreadedTransport with real blocking calls, timer-driven burst ticks, and
concurrent clients.  Kept short in wall time (sub-second bursts).
"""

import threading

import pytest

from repro.core.api import ElasticObject
from repro.core.fields import elastic_field, synchronized
from repro.core.runtime import ElasticRuntime


class LiveCache(ElasticObject):
    store_hits = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(4)
        self.set_burst_interval(0.2)

    def put(self, key, value):
        return f"stored:{key}"

    def get(self, key):
        type(self).store_hits.update(self, lambda v: v + 1)
        return key.upper()

    @synchronized
    def critical(self):
        return "exclusive"


@pytest.fixture
def live():
    runtime = ElasticRuntime.local(nodes=4)
    yield runtime
    runtime.shutdown()


class TestLiveMode:
    def test_pool_starts_and_serves(self, live):
        pool = live.new_pool(LiveCache)
        assert pool.size() == 2
        stub = live.stub("LiveCache")
        assert stub.get("abc") == "ABC"
        assert stub.put("k", "v") == "stored:k"

    def test_shared_state_across_members(self, live):
        live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        for i in range(8):
            stub.get(f"key-{i}")
        assert live.store.get("LiveCache$store_hits") == 8

    def test_concurrent_clients(self, live):
        live.new_pool(LiveCache)
        results = []
        lock = threading.Lock()

        def client(n):
            stub = live.stub("LiveCache", caller=f"client-{n}")
            for i in range(20):
                value = stub.get(f"c{n}-{i}")
                with lock:
                    results.append(value)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 80
        assert live.store.get("LiveCache$store_hits") == 80

    def test_synchronized_method_over_live_pool(self, live):
        live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        assert stub.critical() == "exclusive"

    def test_burst_ticks_fire_on_wall_clock(self, live):
        import time

        live.new_pool(LiveCache)
        record = live.record("LiveCache")
        deadline = time.monotonic() + 3.0
        while record.tick_count < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert record.tick_count >= 2

    def test_member_failure_masked_from_clients(self, live):
        pool = live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        stub.get("warm")
        victim = pool.active_members()[1]
        live.transport.kill(victim.endpoint_id)
        assert stub.get("after-failure") == "AFTER-FAILURE"


class TestTransportSelection:
    def test_env_default_is_threaded(self, monkeypatch):
        from repro.core.runtime import transport_from_env
        from repro.rmi import ThreadedTransport

        monkeypatch.delenv("ERMI_TRANSPORT", raising=False)
        transport = transport_from_env()
        try:
            assert isinstance(transport, ThreadedTransport)
        finally:
            transport.shutdown()

    def test_env_selects_asyncio(self, monkeypatch):
        from repro.core.runtime import transport_from_env
        from repro.rmi import AsyncioTransport

        monkeypatch.setenv("ERMI_TRANSPORT", "asyncio")
        transport = transport_from_env()
        try:
            assert isinstance(transport, AsyncioTransport)
        finally:
            transport.shutdown()

    def test_explicit_name_beats_env(self, monkeypatch):
        from repro.core.runtime import transport_from_env
        from repro.rmi import AsyncioTransport

        monkeypatch.setenv("ERMI_TRANSPORT", "threaded")
        transport = transport_from_env("aio")
        try:
            assert isinstance(transport, AsyncioTransport)
        finally:
            transport.shutdown()

    def test_instance_passes_through(self):
        from repro.core.runtime import transport_from_env
        from repro.rmi import DirectTransport

        transport = DirectTransport()
        assert transport_from_env(transport) is transport

    def test_unknown_name_rejected(self):
        from repro.core.runtime import transport_from_env
        from repro.errors import PoolConfigurationError

        with pytest.raises(PoolConfigurationError, match="unknown transport"):
            transport_from_env("carrier-pigeon")


@pytest.fixture
def aio_live():
    runtime = ElasticRuntime.local(nodes=4, transport="asyncio")
    yield runtime
    runtime.shutdown()


class TestAsyncioLiveMode:
    """The same live-mode contract, on the event-loop transport."""

    def test_pool_starts_and_serves(self, aio_live):
        pool = aio_live.new_pool(LiveCache)
        assert pool.size() == 2
        stub = aio_live.stub("LiveCache")
        assert stub.get("abc") == "ABC"
        assert stub.put("k", "v") == "stored:k"

    def test_shared_state_across_members(self, aio_live):
        aio_live.new_pool(LiveCache)
        stub = aio_live.stub("LiveCache")
        for i in range(8):
            stub.get(f"key-{i}")
        assert aio_live.store.get("LiveCache$store_hits") == 8

    def test_async_fanout_through_pool(self, aio_live):
        from repro.rmi import gather

        aio_live.new_pool(LiveCache)
        stub = aio_live.stub("LiveCache")
        futures = [stub.invoke_async("get", f"k{i}") for i in range(200)]
        assert gather(futures) == [f"K{i}" for i in range(200)]

    def test_synchronized_method_over_aio_pool(self, aio_live):
        aio_live.new_pool(LiveCache)
        stub = aio_live.stub("LiveCache")
        assert stub.critical() == "exclusive"

    def test_member_failure_masked_from_clients(self, aio_live):
        pool = aio_live.new_pool(LiveCache)
        stub = aio_live.stub("LiveCache")
        stub.get("warm")
        victim = pool.active_members()[1]
        aio_live.transport.kill(victim.endpoint_id)
        assert stub.get("after-failure") == "AFTER-FAILURE"
