"""Live-mode (wall clock, threads) integration tests.

These exercise the exact code paths the runnable examples use: a
ThreadedTransport with real blocking calls, timer-driven burst ticks, and
concurrent clients.  Kept short in wall time (sub-second bursts).
"""

import threading

import pytest

from repro.core.api import ElasticObject
from repro.core.fields import elastic_field, synchronized
from repro.core.runtime import ElasticRuntime


class LiveCache(ElasticObject):
    store_hits = elastic_field(default=0)

    def __init__(self):
        super().__init__()
        self.set_min_pool_size(2)
        self.set_max_pool_size(4)
        self.set_burst_interval(0.2)

    def put(self, key, value):
        return f"stored:{key}"

    def get(self, key):
        type(self).store_hits.update(self, lambda v: v + 1)
        return key.upper()

    @synchronized
    def critical(self):
        return "exclusive"


@pytest.fixture
def live():
    runtime = ElasticRuntime.local(nodes=4)
    yield runtime
    runtime.shutdown()


class TestLiveMode:
    def test_pool_starts_and_serves(self, live):
        pool = live.new_pool(LiveCache)
        assert pool.size() == 2
        stub = live.stub("LiveCache")
        assert stub.get("abc") == "ABC"
        assert stub.put("k", "v") == "stored:k"

    def test_shared_state_across_members(self, live):
        live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        for i in range(8):
            stub.get(f"key-{i}")
        assert live.store.get("LiveCache$store_hits") == 8

    def test_concurrent_clients(self, live):
        live.new_pool(LiveCache)
        results = []
        lock = threading.Lock()

        def client(n):
            stub = live.stub("LiveCache", caller=f"client-{n}")
            for i in range(20):
                value = stub.get(f"c{n}-{i}")
                with lock:
                    results.append(value)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 80
        assert live.store.get("LiveCache$store_hits") == 80

    def test_synchronized_method_over_live_pool(self, live):
        live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        assert stub.critical() == "exclusive"

    def test_burst_ticks_fire_on_wall_clock(self, live):
        import time

        live.new_pool(LiveCache)
        record = live.record("LiveCache")
        deadline = time.monotonic() + 3.0
        while record.tick_count < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert record.tick_count >= 2

    def test_member_failure_masked_from_clients(self, live):
        pool = live.new_pool(LiveCache)
        stub = live.stub("LiveCache")
        stub.get("warm")
        victim = pool.active_members()[1]
        live.transport.kill(victim.endpoint_id)
        assert stub.get("after-failure") == "AFTER-FAILURE"
