"""Epoch-based membership caching in the elastic stub.

The pool bumps a ``{name}$epoch`` key in the shared store on every
membership change (activate, drain, terminate); the stub caches member
identities against that epoch, so the common invocation path is
lock-free and identities are re-read only when the pool actually
changed — no count-based periodic rescans.
"""

from __future__ import annotations

import pytest

from repro.core.balancer import ElasticStub
from repro.errors import StoreError
from repro.rmi.remote import Remote, Skeleton
from repro.rmi.transport import DirectTransport
from tests.core.conftest import EchoService, settle


class TestEpochWiring:
    """Integration: the pool bumps the epoch, the runtime wires it in."""

    def test_epoch_bumped_on_grow(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, max_size=8)
        settle(kernel)
        key = pool.membership_epoch_key()
        before = runtime.store.get(key, default=0)
        pool.grow(2)
        settle(kernel)
        assert runtime.store.get(key, default=0) > before

    def test_epoch_bumped_on_shrink(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, max_size=8)
        settle(kernel)
        pool.grow(2)
        settle(kernel)
        key = pool.membership_epoch_key()
        before = runtime.store.get(key, default=0)
        pool.shrink(1)
        settle(kernel)
        assert runtime.store.get(key, default=0) > before

    def test_stub_sees_growth_without_periodic_rescan(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, max_size=8)
        settle(kernel)
        stub = runtime.stub(pool.name)
        stub.echo("warm-up")
        assert len(stub.members_snapshot()) == 2
        pool.grow(2)
        settle(kernel)
        # One call suffices — far fewer than any count-based refresh
        # interval — because the epoch moved.
        stub.echo("after-grow")
        assert len(stub.members_snapshot()) == 4

    def test_stub_spreads_calls_over_new_members(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, max_size=8)
        settle(kernel)
        stub = runtime.stub(pool.name)
        stub.echo("warm-up")
        pool.grow(2)
        settle(kernel)
        for i in range(8):
            stub.echo(i)
        counts = {
            m.uid: (m.skeleton.stats.snapshot().get("echo") or None)
            for m in pool.active_members()
        }
        assert len(counts) == 4
        assert all(stat is not None and stat.calls > 0
                   for stat in counts.values())


class _Worker(Remote):
    def echo(self, value):
        return value


class _FakeSentinel(Remote):
    """Hands out a controllable member list, counting fetches."""

    def __init__(self, members):
        self.members = members
        self.fetches = 0

    def ermi_member_identities(self):
        self.fetches += 1
        return list(self.members)


@pytest.fixture
def rig():
    """Three workers, a fake sentinel, and an epoch the test controls."""
    transport = DirectTransport()
    members = []
    for i in range(3):
        ep = transport.add_endpoint(f"worker-{i}")
        members.append(Skeleton(_Worker(), transport, ep.endpoint_id).ref())
    sentinel = _FakeSentinel(members)
    sep = transport.add_endpoint("sentinel")
    sentinel_ref = Skeleton(sentinel, transport, sep.endpoint_id).ref()
    state = {"epoch": 1, "fail": False}

    def epoch_source():
        if state["fail"]:
            raise StoreError("store outage")
        if state.get("broken"):
            raise TypeError("miswired epoch source")
        return state["epoch"]

    stub = ElasticStub(
        transport,
        lambda: sentinel_ref,
        epoch_source=epoch_source,
    )
    return transport, sentinel, members, state, stub


class TestEpochRefresh:
    def test_identities_fetched_once_per_epoch(self, rig):
        _, sentinel, _, state, stub = rig
        for i in range(10):
            assert stub.echo(i) == i
        assert sentinel.fetches == 1  # first contact only
        state["epoch"] += 1
        stub.echo("post-change")
        assert sentinel.fetches == 2

    def test_epoch_source_outage_serves_cached_members(self, rig):
        _, sentinel, _, state, stub = rig
        stub.echo("warm-up")
        state["fail"] = True
        for i in range(5):
            assert stub.echo(i) == i
        assert sentinel.fetches == 1  # no refresh attempted during outage

    def test_epoch_source_programming_error_propagates(self, rig):
        """Only store/transport failures degrade to the cached epoch; a
        miswired epoch source is a bug and must surface, not silently
        pin the stub to a stale membership forever."""
        _, _, _, state, stub = rig
        stub.echo("warm-up")
        state["broken"] = True
        with pytest.raises(TypeError):
            stub.echo("boom")

    def test_dead_member_failover_still_works(self, rig):
        transport, _, members, _, stub = rig
        stub.echo("warm-up")
        transport.kill(members[1].endpoint_id)
        results = [stub.echo(i) for i in range(9)]
        assert results == list(range(9))
        assert members[1] not in stub.members_snapshot()


class TestTargetOrdering:
    def test_targets_rotate_with_failover_order(self, rig):
        """_targets() returns the primary first, then the remaining
        members in rotation order — the failover sequence."""
        _, _, members, _, stub = rig
        stub._refresh_members(epoch=1)
        assert stub._targets() == members
        assert stub._targets() == members[1:] + members[:1]
        assert stub._targets() == members[2:] + members[:2]
        assert stub._targets() == members  # wraps around

    def test_cursor_resets_when_discarded_member_reappears(self, rig):
        """The satellite fix: a discarded ref re-appearing on refresh
        means the rotation positions shifted, so the cursor restarts
        instead of skewing toward the members after the revived slot."""
        _, _, members, state, stub = rig
        stub._refresh_members(epoch=1)
        stub._targets()  # cursor now at 1
        stub._discard(members[1])
        state["epoch"] += 1  # revival: sentinel still lists members[1]
        targets = stub._targets()
        assert targets[0] == members[0]  # restarted, not members[1]
        assert targets == members

    def test_cursor_continues_across_benign_refreshes(self, rig):
        """Without a discarded-member revival the cursor must NOT reset:
        a refresh that changes nothing keeps round-robin balanced."""
        _, _, members, state, stub = rig
        stub._refresh_members(epoch=1)
        stub._targets()  # cursor now at 1
        state["epoch"] += 1
        targets = stub._targets()
        assert targets[0] == members[1]

    def test_discarded_member_excluded_until_refresh(self, rig):
        _, _, members, _, stub = rig
        stub._refresh_members(epoch=1)
        stub._discard(members[2])
        snapshot = stub.members_snapshot()
        assert members[2] not in snapshot and len(snapshot) == 2


class TestDiscardSetLifecycle:
    """Satellite bugfix: during a sentinel outage the stale-cache
    fallback used to keep every discarded ref forever — the set grew
    without bound across epochs, and a member that recovered under the
    same identity stayed out of the rotation until a refresh finally
    succeeded."""

    def test_recovered_member_rejoins_rotation_during_sentinel_outage(
        self, rig
    ):
        transport, sentinel, members, state, stub = rig
        stub.echo("warm-up")
        # Member 1 dies; the per-member retry discards it.
        transport.kill(members[1].endpoint_id)
        assert stub.echo("x") == "x"
        assert members[1] not in stub.members_snapshot()
        assert len(stub._discarded) == 1
        # The sentinel goes down too, then member 1 recovers and the
        # epoch advances (its re-activation bumped it).  The refresh
        # fails — the stub must serve the stale cache — but the epoch
        # move means the discard set is obsolete: member 1 returns to
        # the candidate list.
        transport.kill(stub._resolve_sentinel().endpoint_id)
        transport.revive(members[1].endpoint_id)
        state["epoch"] += 1
        assert stub.echo("y") == "y"
        assert stub._discarded == set()
        assert members[1] in stub.members_snapshot()
        # And it genuinely serves again: a full rotation reaches it.
        for i in range(6):
            assert stub.echo(i) == i
        assert sentinel.fetches == 1  # never refreshed during the outage

    def test_discard_set_cleared_once_per_epoch_advance(self, rig):
        """The revival runs once per epoch move, not once per call —
        repeated stale-path calls with an unchanged discard set must
        not keep resetting the round-robin cursor."""
        transport, _, members, state, stub = rig
        stub.echo("warm-up")
        transport.kill(stub._resolve_sentinel().endpoint_id)
        state["epoch"] += 1
        assert stub.echo("a") == "a"  # stale path, nothing discarded
        first = stub._targets()[0]
        second = stub._targets()[0]
        assert first != second  # cursor still advancing

    def test_still_dead_member_is_rediscarded_after_revival(self, rig):
        """Reviving the discard set is a probe, not a promise: a ref
        that is still dead costs one failed attempt and is discarded
        again, exactly the normal failover path."""
        transport, _, members, state, stub = rig
        stub.echo("warm-up")
        transport.kill(members[1].endpoint_id)
        assert stub.echo("x") == "x"
        transport.kill(stub._resolve_sentinel().endpoint_id)
        state["epoch"] += 1  # epoch moved, but member 1 is still dead
        results = [stub.echo(i) for i in range(6)]
        assert results == list(range(6))
        assert members[1] not in stub.members_snapshot()
