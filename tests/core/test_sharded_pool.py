"""Sharded elastic pools and key-affinity routing.

A sharded pool is N independent managed pools (``{name}/shard{i}``),
each with its own sentinel, membership epoch key, and scaling ticks;
the client-side :class:`~repro.core.balancer.ShardedElasticStub` hashes
``affinity_key`` onto the static shard set and round-robins only within
the owning shard, so a key's calls always land on the same slice of
members regardless of churn in *other* shards.
"""

from __future__ import annotations

import pytest

from repro.core.api import Decider
from repro.core.balancer import ShardedElasticStub
from repro.errors import PoolConfigurationError
from repro.routing import ShardRouter
from tests.core.conftest import EchoService, settle


SHARDS = 4


@pytest.fixture
def sharded(runtime, kernel):
    pool = runtime.new_sharded_pool(EchoService, name="svc", shards=SHARDS)
    settle(kernel)
    return pool


@pytest.fixture
def sstub(runtime, sharded):
    return runtime.sharded_stub("svc")


def echo_calls(pool):
    """Total ``echo`` invocations served by one shard's members."""
    total = 0
    for m in pool.active_members():
        stats = m.skeleton.stats.snapshot().get("echo")
        total += stats.calls if stats else 0
    return total


class TestShardTopology:
    def test_shards_are_full_pools_with_own_epoch_keys(self, sharded):
        assert [p.name for p in sharded.shards] == [
            f"svc/shard{i}" for i in range(SHARDS)
        ]
        assert [p.membership_epoch_key() for p in sharded.shards] == [
            f"svc/shard{i}$epoch" for i in range(SHARDS)
        ]
        # Each shard honours the class's own bounds independently.
        assert sharded.sizes() == [2] * SHARDS
        assert sharded.size() == 2 * SHARDS

    def test_static_shard_map_published_to_store(self, runtime, sharded):
        entry = runtime.store.get(sharded.shard_map_key())
        assert entry == {
            "pool": "svc",
            "count": SHARDS,
            "pools": [f"svc/shard{i}" for i in range(SHARDS)],
        }

    def test_sentinel_tick_refreshes_live_map_entry(self, runtime, sharded):
        for index, pool in enumerate(sharded.shards):
            runtime.record(pool.name).sentinel_agent.tick()
            entry = runtime.store.get(f"svc$shardmap/{index}")
            assert entry["pool"] == pool.name
            assert entry["size"] == 2
            assert entry["sentinel"] == pool.sentinel().uid
            assert entry["epoch"] == runtime.store.get(
                pool.membership_epoch_key(), default=0
            )

    def test_broadcast_state_carries_shard_index(self, runtime, sharded):
        pool = sharded.shards[2]
        runtime.record(pool.name).sentinel_agent.tick()
        state = pool.last_broadcast_state
        assert state["kind"] == "pool-state"
        assert state["shard"] == 2

    def test_unsharded_pool_publishes_no_map_entry(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, name="plain")
        settle(kernel)
        runtime.record("plain").sentinel_agent.tick()
        assert pool.shard_of is None
        assert "shard" not in pool.last_broadcast_state

    def test_validation_rejects_bad_configs(self, runtime, sharded):
        with pytest.raises(PoolConfigurationError):
            runtime.new_sharded_pool(EchoService, name="bad", shards=0)
        with pytest.raises(PoolConfigurationError):
            runtime.new_sharded_pool(object, name="bad")  # type: ignore[arg-type]
        with pytest.raises(PoolConfigurationError):
            runtime.new_sharded_pool(EchoService, name="svc")  # duplicate

    def test_sharded_pool_accessor(self, runtime, sharded):
        assert runtime.sharded_pool("svc") is sharded
        with pytest.raises(KeyError):
            runtime.sharded_pool("nope")


class TestAffinityRouting:
    def test_affinity_calls_land_only_on_owning_shard(self, sharded, sstub):
        key = "user-42"
        owner = sstub.shard_for(key)
        for i in range(8):
            assert sstub.echo(i, affinity_key=key) == i
        for index, pool in enumerate(sharded.shards):
            expected = 8 if index == owner else 0
            assert echo_calls(pool) == expected

    def test_keyless_calls_spread_over_all_shards(self, sharded, sstub):
        for i in range(2 * SHARDS):
            assert sstub.echo(i) == i
        # Spread rotates shards, then round-robins inside each: with two
        # members per shard every member serves exactly one call.
        for pool in sharded.shards:
            assert echo_calls(pool) == 2
            for m in pool.active_members():
                stats = m.skeleton.stats.snapshot().get("echo")
                assert stats is not None and stats.calls == 1

    def test_affinity_key_is_not_marshalled(self, sstub):
        # EchoService.echo takes exactly one argument: if the routing
        # kwarg leaked into the payload the call would fail server-side.
        assert sstub.echo("payload", affinity_key="k") == "payload"

    def test_explicit_invoke_paths(self, sstub):
        assert sstub.invoke("echo", "a", affinity_key="k") == "a"
        future = sstub.invoke_async("echo", "b", affinity_key="k")
        assert future.result() == "b"

    def test_client_and_server_agree_on_owners(self, sharded, sstub):
        for key in (f"key-{i}" for i in range(64)):
            assert sstub.shard_for(key) == sharded.shard_for(key)

    def test_routing_stable_while_other_shards_grow(
        self, runtime, kernel, sharded, sstub
    ):
        key = "sticky"
        owner = sstub.shard_for(key)
        sstub.echo("warm-up", affinity_key=key)
        other = sharded.shards[(owner + 1) % SHARDS]
        other.grow(2)
        settle(kernel)
        assert sstub.shard_for(key) == owner
        before = echo_calls(sharded.shards[owner])
        for i in range(6):
            assert sstub.echo(i, affinity_key=key) == i
        assert echo_calls(sharded.shards[owner]) == before + 6
        # The grown shard saw none of the keyed traffic.
        assert echo_calls(other) == 0

    def test_member_reap_does_not_move_keys_off_shard(
        self, runtime, sharded, sstub
    ):
        key = "sticky"
        owner = sstub.shard_for(key)
        sstub.echo("warm-up", affinity_key=key)
        pool = sharded.shards[owner]
        victim = pool.active_members()[0]
        runtime.transport.kill(victim.endpoint_id)
        results = [sstub.echo(i, affinity_key=key) for i in range(6)]
        assert results == list(range(6))
        assert sstub.shard_for(key) == owner
        for index, shard_pool in enumerate(sharded.shards):
            if index != owner:
                assert echo_calls(shard_pool) == 0


class TestShardedStubConstruction:
    def test_stub_from_store_map_fallback(self, runtime, sharded):
        # A client runtime that did not create the pool bootstraps the
        # topology from the {name}$shards map in the shared store.
        runtime._sharded.pop("svc")
        stub = runtime.sharded_stub("svc")
        assert stub.shards == SHARDS
        assert stub.echo("hello", affinity_key="k") == "hello"

    def test_unknown_pool_raises(self, runtime):
        with pytest.raises(KeyError):
            runtime.sharded_stub("ghost")

    def test_each_shard_stub_gets_its_own_batcher(
        self, monkeypatch, runtime, sharded
    ):
        monkeypatch.setenv("ERMI_BATCH_MAX", "8")
        stub = runtime.sharded_stub("svc")
        batchers = [stub.shard_stub(i).batcher for i in range(SHARDS)]
        assert all(b is not None for b in batchers)
        # Distinct instances: batches coalesce per shard, never across.
        assert len({id(b) for b in batchers}) == SHARDS

    def test_router_shard_count_must_match_stubs(self, runtime, sharded):
        stub = runtime.sharded_stub("svc")
        with pytest.raises(ValueError):
            ShardedElasticStub(
                "svc",
                [stub.shard_stub(0)],
                router=ShardRouter.for_pool("svc", SHARDS),
            )
        with pytest.raises(ValueError):
            ShardedElasticStub("svc", [])


class BurstyEcho(EchoService):
    """EchoService on a fast monitoring cadence for scaling tests."""

    def __init__(self):
        super().__init__()
        self.set_burst_interval(5.0)


class HotShardDecider(Decider):
    def __init__(self, hot_target=5):
        self.hot_pool = None
        self.hot_target = hot_target

    def get_desired_pool_size(self, pool):
        return self.hot_target if pool.name == self.hot_pool else 2


class TestIndependentScaling:
    def test_only_the_hot_shard_grows(self, runtime, kernel):
        decider = HotShardDecider()
        sharded = runtime.new_sharded_pool(
            BurstyEcho, name="scaled", shards=SHARDS, decider=decider
        )
        settle(kernel)
        assert sharded.sizes() == [2] * SHARDS
        hot = sharded.shard_for("hot-key")
        decider.hot_pool = sharded.shards[hot].name
        settle(kernel, seconds=12.0)  # two+ burst intervals
        sizes = sharded.sizes()
        assert sizes[hot] == decider.hot_target
        for index in range(SHARDS):
            if index != hot:
                assert sizes[index] == 2

    def test_hot_shard_shrinks_back_when_cold(self, runtime, kernel):
        decider = HotShardDecider()
        sharded = runtime.new_sharded_pool(
            BurstyEcho, name="cooled", shards=SHARDS, decider=decider
        )
        settle(kernel)
        hot = sharded.shard_for("hot-key")
        decider.hot_pool = sharded.shards[hot].name
        settle(kernel, seconds=12.0)
        assert sharded.sizes()[hot] == decider.hot_target
        decider.hot_pool = None
        settle(kernel, seconds=12.0)
        assert sharded.sizes() == [2] * SHARDS

    def test_scaling_bumps_only_that_shards_epoch(self, runtime, kernel):
        decider = HotShardDecider()
        sharded = runtime.new_sharded_pool(
            BurstyEcho, name="epochs", shards=SHARDS, decider=decider
        )
        settle(kernel)
        epochs = [
            runtime.store.get(p.membership_epoch_key(), default=0)
            for p in sharded.shards
        ]
        hot = sharded.shard_for("hot-key")
        decider.hot_pool = sharded.shards[hot].name
        settle(kernel, seconds=12.0)
        after = [
            runtime.store.get(p.membership_epoch_key(), default=0)
            for p in sharded.shards
        ]
        assert after[hot] > epochs[hot]
        for index in range(SHARDS):
            if index != hot:
                assert after[index] == epochs[index]

    def test_shutdown_closes_every_shard(self, runtime, kernel, sharded):
        sharded.shutdown()
        assert sharded.closed
        assert all(p.closed for p in sharded.shards)
