"""Tests for the Figure 3 API surface: config setters, validation, and
the single-decision-mechanism rule."""

import pytest

from repro.core.api import Decider, ElasticConfig, ElasticObject, MethodCallStat
from repro.errors import PoolConfigurationError, ScalingDisabledError


class PlainElastic(ElasticObject):
    pass


class FineGrained(ElasticObject):
    def change_pool_size(self):
        return 1


class TestElasticConfig:
    def test_paper_defaults(self):
        cfg = ElasticConfig()
        assert cfg.burst_interval == 60.0
        assert cfg.cpu_incr_threshold == 90.0
        assert cfg.cpu_decr_threshold == 60.0

    def test_min_pool_size_must_be_at_least_two(self):
        """Paper section 4.2: an elastic class can only be instantiated
        with a minimum of >= 2 objects."""
        cfg = ElasticConfig(min_pool_size=1)
        with pytest.raises(PoolConfigurationError):
            cfg.validate()

    def test_max_below_min_rejected(self):
        cfg = ElasticConfig(min_pool_size=4, max_pool_size=3)
        with pytest.raises(PoolConfigurationError):
            cfg.validate()

    def test_non_positive_burst_interval_rejected(self):
        cfg = ElasticConfig(burst_interval=0)
        with pytest.raises(PoolConfigurationError):
            cfg.validate()

    def test_inverted_cpu_thresholds_rejected(self):
        cfg = ElasticConfig(cpu_incr_threshold=50, cpu_decr_threshold=60)
        with pytest.raises(PoolConfigurationError):
            cfg.validate()

    def test_inverted_ram_thresholds_rejected(self):
        cfg = ElasticConfig(ram_incr_threshold=40.0, ram_decr_threshold=50.0)
        with pytest.raises(PoolConfigurationError):
            cfg.validate()

    def test_valid_config_passes(self):
        ElasticConfig(min_pool_size=5, max_pool_size=50).validate()


class TestSetters:
    def test_setters_accumulate_config(self):
        obj = PlainElastic()
        obj.set_min_pool_size(5)
        obj.set_max_pool_size(50)
        obj.set_burst_interval(300)
        obj.set_cpu_incr_threshold(85)
        obj.set_ram_incr_threshold(70)
        cfg = obj._ermi_config
        assert cfg.min_pool_size == 5
        assert cfg.max_pool_size == 50
        assert cfg.burst_interval == 300
        assert cfg.cpu_incr_threshold == 85
        assert cfg.ram_incr_threshold == 70
        assert cfg.explicit_thresholds

    def test_plain_setters_do_not_mark_explicit(self):
        obj = PlainElastic()
        obj.set_min_pool_size(3)
        assert not obj._ermi_config.explicit_thresholds


class TestSingleDecisionMechanism:
    def test_override_detection(self):
        assert FineGrained.overrides_change_pool_size()
        assert not PlainElastic.overrides_change_pool_size()

    def test_thresholds_disabled_when_change_pool_size_overridden(self):
        """Paper section 3.3: if changePoolSize is overridden, scaling
        based on CPU/Memory utilization is disabled."""
        obj = FineGrained()
        with pytest.raises(ScalingDisabledError):
            obj.set_cpu_incr_threshold(85)
        with pytest.raises(ScalingDisabledError):
            obj.set_ram_decr_threshold(40)

    def test_base_change_pool_size_is_sentinel(self):
        with pytest.raises(NotImplementedError):
            PlainElastic().change_pool_size()


class TestDetachedQueries:
    def test_pool_queries_require_attachment(self):
        obj = PlainElastic()
        with pytest.raises(RuntimeError, match="not attached"):
            obj.get_pool_size()
        with pytest.raises(RuntimeError, match="not attached"):
            obj.get_avg_cpu_usage()
        with pytest.raises(RuntimeError, match="not attached"):
            obj.get_method_call_stats()


class TestDecider:
    def test_decider_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Decider().get_desired_pool_size(None)

    def test_decider_attached_via_constructor(self):
        class D(Decider):
            def get_desired_pool_size(self, pool):
                return 4

        obj = ElasticObject(decider=D())
        assert obj._ermi_decider.get_desired_pool_size(None) == 4


class TestMethodCallStat:
    def test_latency_alias(self):
        stat = MethodCallStat(calls=2, rate=1.0, mean_latency=0.25)
        assert stat.latency() == 0.25
