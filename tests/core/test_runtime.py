"""Tests for the runtime control loop: burst ticks, clamping, policy
application, registry maintenance, and shutdown."""

import pytest

from repro.cluster.provisioner import InstantProvisioner
from repro.core.api import Decider
from repro.core.runtime import ElasticRuntime
from repro.errors import PoolConfigurationError
from tests.core.conftest import CpuDial, EchoService, settle


def run_bursts(kernel, n, burst=60.0):
    kernel.run_until(kernel.clock.now() + n * burst + 1.0)


class TestPoolCreation:
    def test_duplicate_pool_name_rejected(self, runtime, kernel):
        runtime.new_pool(EchoService)
        with pytest.raises(PoolConfigurationError):
            runtime.new_pool(EchoService)

    def test_custom_pool_name(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, name="my-cache")
        assert pool.name == "my-cache"
        assert runtime.pool("my-cache") is pool

    def test_non_elastic_class_rejected(self, runtime):
        class NotElastic:
            pass

        with pytest.raises(PoolConfigurationError):
            runtime.new_pool(NotElastic)

    def test_min_max_overrides(self, runtime, kernel):
        pool = runtime.new_pool(EchoService, min_size=3, max_size=4)
        settle(kernel)
        assert pool.size() == 3
        assert pool.config.max_pool_size == 4

    def test_unknown_pool_lookup_raises(self, runtime):
        with pytest.raises(KeyError):
            runtime.pool("ghost")

    def test_constructor_args_reach_members(self, runtime, kernel):
        class Configured(EchoService):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def get_tag(self):
                return self.tag

        runtime.new_pool(Configured, "hello-tag")
        settle(kernel)
        stub = runtime.stub("Configured")
        assert stub.get_tag() == "hello-tag"


class TestControlLoop:
    def test_high_cpu_grows_pool(self, runtime, kernel):
        dial = CpuDial(cpu=95.0)
        pool = runtime.new_pool(EchoService, utilization_factory=dial.source)
        settle(kernel)
        run_bursts(kernel, 3)
        # Implicit policy: +1 per burst above 90% -> 2 + 3 = 5
        assert pool.size() == 5

    def test_growth_clamped_at_max(self, runtime, kernel):
        dial = CpuDial(cpu=99.0)
        pool = runtime.new_pool(
            EchoService, max_size=4, utilization_factory=dial.source
        )
        settle(kernel)
        run_bursts(kernel, 10)
        assert pool.size() == 4

    def test_low_cpu_shrinks_to_min(self, runtime, kernel):
        dial = CpuDial(cpu=95.0)
        pool = runtime.new_pool(EchoService, utilization_factory=dial.source)
        settle(kernel)
        run_bursts(kernel, 3)
        assert pool.size() == 5
        dial.cpu = 10.0
        run_bursts(kernel, 10)
        assert pool.size() == 2

    def test_mid_range_cpu_holds_size(self, runtime, kernel):
        dial = CpuDial(cpu=75.0)
        pool = runtime.new_pool(EchoService, utilization_factory=dial.source)
        settle(kernel)
        run_bursts(kernel, 5)
        assert pool.size() == 2

    def test_custom_burst_interval_respected(self, runtime, kernel):
        class FastBurst(EchoService):
            def __init__(self):
                super().__init__()
                self.set_burst_interval(10.0)

        dial = CpuDial(cpu=95.0)
        pool = runtime.new_pool(FastBurst, utilization_factory=dial.source)
        settle(kernel)
        kernel.run_until(kernel.clock.now() + 35.0)
        assert pool.size() == 5  # three 10 s bursts elapsed

    def test_tick_counter_advances(self, runtime, kernel):
        runtime.new_pool(EchoService)
        settle(kernel)
        run_bursts(kernel, 4)
        assert runtime.record("EchoService").tick_count == 4

    def test_on_tick_hooks_observe_pool(self, runtime, kernel):
        sizes = []
        runtime.new_pool(EchoService)
        settle(kernel)
        runtime.record("EchoService").on_tick.append(
            lambda p: sizes.append(p.size())
        )
        run_bursts(kernel, 3)
        assert sizes == [2, 2, 2]

    def test_broken_policy_does_not_stop_loop(self, runtime, kernel):
        pool = runtime.new_pool(EchoService)
        settle(kernel)
        record = runtime.record("EchoService")

        class Broken:
            name = "broken"

            def decide(self, pool):
                raise RuntimeError("policy crash")

        record.policy = Broken()
        run_bursts(kernel, 3)
        assert record.tick_count == 3
        assert pool.size() == 2


class TestDeciderIntegration:
    def test_decider_drives_pool_to_desired_size(self, runtime, kernel):
        class Want5(Decider):
            def get_desired_pool_size(self, pool):
                return 5

        pool = runtime.new_pool(EchoService, decider=Want5())
        settle(kernel)
        run_bursts(kernel, 1)
        assert pool.size() == 5

    def test_decider_shrinks_back(self, runtime, kernel):
        class Schedule(Decider):
            def __init__(self):
                self.desired = 6

            def get_desired_pool_size(self, pool):
                return self.desired

        decider = Schedule()
        pool = runtime.new_pool(EchoService, decider=decider)
        settle(kernel)
        run_bursts(kernel, 1)
        assert pool.size() == 6
        decider.desired = 2
        run_bursts(kernel, 2)
        assert pool.size() == 2


class TestMesosOutage:
    def test_scaling_pauses_during_outage(self, runtime, kernel):
        """Paper section 4.4: Mesos failures affect addition/removal of
        objects until Mesos recovers."""
        dial = CpuDial(cpu=95.0)
        pool = runtime.new_pool(EchoService, utilization_factory=dial.source)
        settle(kernel)
        runtime.master.fail()
        run_bursts(kernel, 3)
        assert pool.size() == 2
        assert runtime.record("EchoService").paused_ticks == 3

    def test_scaling_resumes_after_recovery(self, runtime, kernel):
        dial = CpuDial(cpu=95.0)
        pool = runtime.new_pool(EchoService, utilization_factory=dial.source)
        settle(kernel)
        runtime.master.fail()
        run_bursts(kernel, 2)
        runtime.master.recover()
        run_bursts(kernel, 2)
        assert pool.size() == 4


class TestRegistryMaintenance:
    def test_pool_name_bound_to_sentinel(self, runtime, kernel):
        pool = runtime.new_pool(EchoService)
        settle(kernel)
        assert runtime.registry.lookup("EchoService") == pool.sentinel().ref()

    def test_rebinding_after_sentinel_death(self, runtime, kernel):
        pool = runtime.new_pool(EchoService)
        settle(kernel)
        old_ref = runtime.registry.lookup("EchoService")
        runtime.transport.kill(pool.sentinel().endpoint_id)
        run_bursts(kernel, 1)  # tick detects the dead member
        new_ref = runtime.registry.lookup("EchoService")
        assert new_ref != old_ref
        assert new_ref == pool.sentinel().ref()


class TestShutdown:
    def test_shutdown_stops_ticks(self, runtime, kernel):
        runtime.new_pool(EchoService)
        settle(kernel)
        record = runtime.record("EchoService")
        runtime.shutdown()
        run_bursts(kernel, 5)
        assert record.tick_count == 0

    def test_shutdown_releases_all_slices(self, runtime, kernel):
        runtime.new_pool(EchoService)
        settle(kernel)
        runtime.shutdown()
        assert runtime.master.allocated_slices() == 0

    def test_double_shutdown_is_safe(self, runtime):
        runtime.shutdown()
        runtime.shutdown()
