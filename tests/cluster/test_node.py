"""Tests for nodes, resources, and slices."""

import pytest

from repro.cluster.node import Node, Resources, Slice, SliceState
from repro.errors import SliceError


class TestResources:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Resources(-1.0, 100)

    def test_arithmetic(self):
        a = Resources(4.0, 4096)
        b = Resources(2.0, 2048)
        assert a + b == Resources(6.0, 6144)
        assert a - b == Resources(2.0, 2048)

    def test_fits_in(self):
        small = Resources(2.0, 2048)
        big = Resources(8.0, 8192)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_fits_requires_both_dimensions(self):
        assert not Resources(1.0, 9999).fits_in(Resources(8.0, 8192))


class TestNode:
    def _node(self, node_id="n0", slices=4):
        slice_size = Resources(2.0, 2048)
        capacity = Resources(2.0 * slices, 2048 * slices)
        return Node(node_id, capacity, slice_size)

    def test_carves_expected_slice_count(self):
        assert len(self._node(slices=4).slices) == 4

    def test_slice_does_not_fit_raises(self):
        with pytest.raises(ValueError):
            Node("n", Resources(1.0, 512), Resources(2.0, 2048))

    def test_all_slices_free_initially(self):
        node = self._node()
        assert len(node.free_slices()) == 4
        assert node.allocated_slices() == []

    def test_release_requires_allocated_state(self):
        node = self._node()
        sl = node.slices[0]
        with pytest.raises(SliceError):
            node.release(sl)

    def test_release_of_foreign_slice_raises(self):
        node_a, node_b = self._node("a"), self._node("b")
        sl = node_b.slices[0]
        sl.state = SliceState.ALLOCATED
        with pytest.raises(SliceError):
            node_a.release(sl)

    def test_fail_marks_allocated_slices_lost(self):
        node = self._node()
        node.slices[0].state = SliceState.ALLOCATED
        lost = node.fail()
        assert lost == [node.slices[0]]
        assert node.slices[0].state is SliceState.LOST
        assert node.free_slices() == []  # dead node offers nothing

    def test_recover_frees_lost_slices(self):
        node = self._node()
        node.slices[0].state = SliceState.ALLOCATED
        node.fail()
        node.recover()
        assert node.slices[0].state is SliceState.FREE
        assert len(node.free_slices()) == 4

    def test_slice_ids_are_unique(self):
        node = self._node()
        ids = [s.slice_id for s in node.slices]
        assert len(set(ids)) == len(ids)
