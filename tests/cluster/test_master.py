"""Tests for the Mesos-like master: grants, partial grants, watermarks,
outages, and node failure notification."""

import pytest

from repro.cluster.master import MesosMaster
from repro.errors import MasterUnavailableError, SliceError


@pytest.fixture
def master():
    return MesosMaster.homogeneous(node_count=2, slices_per_node=3)


class TestAllocation:
    def test_full_grant(self, master):
        master.register_framework("fw")
        granted = master.request_slices("fw", 4)
        assert len(granted) == 4
        assert master.allocated_slices() == 4

    def test_partial_grant_when_cluster_short(self, master):
        """Paper section 4.2: if only l < k slices are available, create
        l objects — the master grants what exists instead of failing."""
        master.register_framework("fw")
        granted = master.request_slices("fw", 100)
        assert len(granted) == 6  # 2 nodes x 3 slices

    def test_grant_spreads_across_nodes(self, master):
        master.register_framework("fw")
        granted = master.request_slices("fw", 2)
        assert granted[0].node is not granted[1].node

    def test_zero_request_is_empty(self, master):
        master.register_framework("fw")
        assert master.request_slices("fw", 0) == []

    def test_negative_request_raises(self, master):
        master.register_framework("fw")
        with pytest.raises(ValueError):
            master.request_slices("fw", -1)

    def test_unknown_framework_raises(self, master):
        with pytest.raises(ValueError):
            master.request_slices("nope", 1)

    def test_duplicate_framework_registration_raises(self, master):
        master.register_framework("fw")
        with pytest.raises(ValueError):
            master.register_framework("fw")

    def test_released_slice_is_reusable_by_other_framework(self, master):
        """Paper section 2.5: a relinquished slice is then available to
        other elastic objects in the cluster."""
        master.register_framework("a")
        master.register_framework("b")
        granted = master.request_slices("a", 6)
        assert master.request_slices("b", 1) == []
        master.release_slice("a", granted[0])
        regranted = master.request_slices("b", 1)
        assert len(regranted) == 1
        assert regranted[0].framework == "b"

    def test_release_of_unowned_slice_raises(self, master):
        master.register_framework("a")
        master.register_framework("b")
        granted = master.request_slices("a", 1)
        with pytest.raises(SliceError):
            master.release_slice("b", granted[0])


class TestUtilization:
    def test_utilization_tracks_allocation(self, master):
        master.register_framework("fw")
        assert master.utilization() == 0.0
        master.request_slices("fw", 3)
        assert master.utilization() == pytest.approx(0.5)

    def test_high_watermark_fires_once_per_crossing(self, master):
        master.register_framework("fw")
        highs, lows = [], []
        master.watch_utilization(0.5, 0.2, highs.append, lows.append)
        master._check_watches()  # initial state below low
        lows.clear()
        master.request_slices("fw", 3)  # util 0.5 -> high
        master.request_slices("fw", 1)  # still high, must not refire
        assert len(highs) == 1

    def test_low_watermark_fires_after_release(self, master):
        master.register_framework("fw")
        highs, lows = [], []
        granted = master.request_slices("fw", 4)
        master.watch_utilization(0.9, 0.2, highs.append, lows.append)
        for sl in granted:
            master.release_slice("fw", sl)
        assert len(lows) == 1

    def test_invalid_watermarks_raise(self, master):
        with pytest.raises(ValueError):
            master.watch_utilization(0.2, 0.5, print, print)


class TestMasterOutage:
    def test_outage_blocks_allocation(self, master):
        master.register_framework("fw")
        master.fail()
        with pytest.raises(MasterUnavailableError):
            master.request_slices("fw", 1)

    def test_outage_blocks_release(self, master):
        master.register_framework("fw")
        granted = master.request_slices("fw", 1)
        master.fail()
        with pytest.raises(MasterUnavailableError):
            master.release_slice("fw", granted[0])

    def test_recovery_restores_service(self, master):
        master.register_framework("fw")
        master.fail()
        master.recover()
        assert len(master.request_slices("fw", 1)) == 1


class TestNodeFailure:
    def test_lost_slices_notify_owner(self, master):
        lost = []
        master.register_framework("fw", on_slice_lost=lost.append)
        granted = master.request_slices("fw", 6)
        victim_node = granted[0].node.node_id
        expected = [s for s in granted if s.node.node_id == victim_node]
        master.fail_node(victim_node)
        assert sorted(s.slice_id for s in lost) == sorted(
            s.slice_id for s in expected
        )

    def test_failed_node_capacity_excluded(self, master):
        master.register_framework("fw")
        total_before = master.total_slices()
        master.fail_node("node-0")
        assert master.total_slices() == total_before - 3

    def test_recovered_node_offers_again(self, master):
        master.register_framework("fw")
        master.fail_node("node-0")
        master.recover_node("node-0")
        assert master.free_slice_count() == 6

    def test_unknown_node_raises(self, master):
        with pytest.raises(ValueError):
            master.fail_node("node-99")
