"""Tests for provisioning latency models (Figure 8 behaviour)."""

import random

import pytest

from repro.cluster.provisioner import (
    ContainerProvisioner,
    InstantProvisioner,
    VMProvisioner,
)


@pytest.fixture
def container():
    return ContainerProvisioner(random.Random(1))


@pytest.fixture
def vm():
    return VMProvisioner(random.Random(1))


class TestContainerProvisioner:
    def test_under_30s_cap_at_any_load(self, container):
        """The paper reports ElasticRMI provisioning latency < 30 s in
        all cases."""
        for load in (0.0, 0.5, 1.0, 1.5, 10.0):
            for _ in range(50):
                assert container.sample_up_latency(load) <= 30.0

    def test_latency_grows_with_load(self, container):
        """Figure 8: as the workload increases, provisioning interval
        also increases."""
        low = sum(container.sample_up_latency(0.1) for _ in range(100)) / 100
        high = sum(container.sample_up_latency(1.0) for _ in range(100)) / 100
        assert high > low + 5.0

    def test_positive_latency(self, container):
        assert container.sample_up_latency(0.0) > 0

    def test_drain_latency_positive_and_bounded(self, container):
        for load in (0.0, 1.0):
            latency = container.sample_down_latency(load)
            assert 0 < latency < 15.0


class TestVMProvisioner:
    def test_vm_boot_is_minutes(self, vm):
        """CloudWatch provisioning is 'in the order of several minutes' —
        well above ElasticRMI's 30 s cap."""
        for _ in range(20):
            assert vm.sample_up_latency(0.5) >= 240.0

    def test_vm_dwarfs_container(self, container, vm):
        assert vm.sample_up_latency(1.0) > 5 * container.sample_up_latency(1.0)


class TestInstantProvisioner:
    def test_all_latencies_zero(self):
        p = InstantProvisioner()
        assert p.sample_up_latency(1.0) == 0.0
        assert p.sample_down_latency(1.0) == 0.0
