"""Tests for the namespace (key-prefix) index behind bounded scans.

``HyperStore.keys(prefix)`` and ``search(prefix, ...)`` must visit only
the candidate keys in prefix-compatible buckets — not the whole
partition — and the index must stay correct through put/delete and
node membership changes.
"""

import pytest

from repro.errors import KeyNotFoundError
from repro.kvstore.store import HyperStore, key_token


class TestKeyToken:
    def test_token_is_namespace_through_separator(self):
        assert key_token("pool$epoch") == "pool$"
        assert key_token("pool$member$3") == "pool$"

    def test_token_of_flat_key_is_the_key(self):
        assert key_token("plainkey") == "plainkey"

    def test_token_is_a_prefix_of_its_key(self):
        for key in ("a$b", "x", "svc$counter", "ns$deep$nest$leaf"):
            assert key.startswith(key_token(key))


class TestBoundedScans:
    @pytest.fixture
    def store(self):
        store = HyperStore(nodes=3)
        for i in range(50):
            store.put(f"session${i}", {"i": i})
        for i in range(8):
            store.put(f"pool${i}", {"uid": i})
        return store

    def test_prefix_scan_finds_exactly_the_namespace(self, store):
        keys = sorted(store.keys("pool$"))
        assert keys == sorted(f"pool${i}" for i in range(8))

    def test_prefix_scan_visits_only_matching_buckets(self, store):
        before = store.keys_visited_by_scans()
        found = list(store.keys("pool$"))
        visited = store.keys_visited_by_scans() - before
        assert len(found) == 8
        # Bounded: candidates are the pool$ bucket (8 keys), not the 58
        # keys the store carries.  Equality, not <=: the bucket *is*
        # the candidate set.
        assert visited == 8

    def test_unprefixed_scan_still_visits_everything(self, store):
        before = store.keys_visited_by_scans()
        found = list(store.keys())
        visited = store.keys_visited_by_scans() - before
        assert len(found) == 58
        assert visited == 58

    def test_search_is_bounded_by_the_prefix_bucket(self, store):
        before = store.keys_visited_by_scans()
        hits = store.search("pool$", uid=lambda u: u >= 6)
        visited = store.keys_visited_by_scans() - before
        assert sorted(key for key, _ in hits) == ["pool$6", "pool$7"]
        assert visited == 8

    def test_scan_with_sub_bucket_prefix_stays_bounded(self, store):
        # A prefix longer than the token ("pool$3" vs bucket "pool$")
        # visits the bucket's candidates, then filters exactly.
        before = store.keys_visited_by_scans()
        assert list(store.keys("pool$3")) == ["pool$3"]
        assert store.keys_visited_by_scans() - before == 8


class TestIndexMaintenance:
    def test_delete_removes_key_from_its_bucket(self):
        store = HyperStore(nodes=2)
        store.put("ns$a", 1)
        store.put("ns$b", 2)
        assert store.delete("ns$a")
        assert list(store.keys("ns$")) == ["ns$b"]
        before = store.keys_visited_by_scans()
        list(store.keys("ns$"))
        assert store.keys_visited_by_scans() - before == 1

    def test_overwrite_does_not_duplicate_index_entries(self):
        store = HyperStore(nodes=2)
        for _ in range(5):
            store.put("ns$a", "v")
        assert list(store.keys("ns$")) == ["ns$a"]
        before = store.keys_visited_by_scans()
        list(store.keys("ns$"))
        assert store.keys_visited_by_scans() - before == 1

    def test_add_node_migration_preserves_the_index(self):
        store = HyperStore(nodes=2)
        for i in range(40):
            store.put(f"ns${i}", i)
        store.add_node()
        # Every key still findable by prefix after keys migrated to the
        # new partition's buckets.
        assert sorted(store.keys("ns$")) == sorted(f"ns${i}" for i in range(40))
        for i in range(40):
            assert store.get(f"ns${i}") == i
        # And the scan is still bounded to candidates, not doubled by
        # stale bucket entries on the old partitions.
        before = store.keys_visited_by_scans()
        list(store.keys("ns$"))
        assert store.keys_visited_by_scans() - before == 40

    def test_deleted_key_not_resurrected_by_search(self):
        store = HyperStore(nodes=2)
        store.put("ns$gone", {"x": 1})
        store.delete("ns$gone")
        assert store.search("ns$", x=1) == []
        with pytest.raises(KeyNotFoundError):
            store.get("ns$gone")
