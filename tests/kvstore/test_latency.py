"""Tests for the store latency model."""

import pytest

from repro.kvstore.latency import StoreLatencyModel
from repro.kvstore.store import HyperStore


class TestStoreLatencyModel:
    def test_base_cost_per_operation(self):
        model = StoreLatencyModel(base_rtt_s=0.001, contention_step_s=0.0)
        model.observe("get", "a")
        model.observe("put", "b")
        assert model.total_ops() == 2
        assert model.total_seconds() == pytest.approx(0.002)

    def test_contention_raises_cost_on_hot_keys(self):
        model = StoreLatencyModel(base_rtt_s=0.001, contention_step_s=0.001)
        cold = model.observe("get", "cold")
        model.observe("get", "hot")
        model.observe("get", "hot")
        hot = model.observe("get", "hot")
        assert cold == pytest.approx(0.001)
        assert hot == pytest.approx(0.003)  # two recent competitors

    def test_window_limits_contention_memory(self):
        model = StoreLatencyModel(
            base_rtt_s=0.001, contention_step_s=0.001, window=2
        )
        model.observe("get", "k")
        model.observe("get", "x")
        model.observe("get", "y")  # "k" fell out of the window
        assert model.observe("get", "k") == pytest.approx(0.001)

    def test_per_op_statistics(self):
        model = StoreLatencyModel(base_rtt_s=0.002, contention_step_s=0.0)
        for _ in range(4):
            model.observe("put", "k")
        stats = model.per_op("put")
        assert stats.count == 4
        assert stats.mean() == pytest.approx(0.002)
        assert model.per_op("never").count == 0

    def test_costliest_keys_ranked(self):
        model = StoreLatencyModel()
        for _ in range(10):
            model.observe("get", "hot")
        model.observe("get", "cold")
        ranked = model.costliest_keys(top_n=1)
        assert ranked[0][0] == "hot"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StoreLatencyModel(base_rtt_s=-1)
        with pytest.raises(ValueError):
            StoreLatencyModel(window=0)

    def test_plugs_into_hyperstore(self):
        model = StoreLatencyModel()
        store = HyperStore(nodes=2, on_op=model.observe)
        for i in range(20):
            store.put("shared", i)
            store.get("shared")
        assert model.total_ops() == 40
        assert model.mean_latency() > 0
        assert model.costliest_keys(1)[0][0] == "shared"

    def test_quantifies_shared_state_cost(self):
        """The section 4.1 trade-off, measured: an elastic class whose
        members hammer one shared field pays more per op than one
        touching disjoint keys."""
        shared_model = StoreLatencyModel()
        shared = HyperStore(nodes=2, on_op=shared_model.observe)
        for i in range(100):
            shared.incr("one-counter")

        disjoint_model = StoreLatencyModel()
        disjoint = HyperStore(nodes=2, on_op=disjoint_model.observe)
        for i in range(100):
            disjoint.incr(f"counter-{i}")

        assert shared_model.mean_latency() > 2 * disjoint_model.mean_latency()
