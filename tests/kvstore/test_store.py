"""Tests for the HyperStore: operations, consistency, growth, failure."""

import threading

import pytest

from repro.errors import (
    CASMismatchError,
    KeyNotFoundError,
    StoreUnavailableError,
)
from repro.kvstore.store import HyperStore


@pytest.fixture
def store():
    return HyperStore(nodes=3)


class TestBasicOperations:
    def test_put_get(self, store):
        store.put("x", 42)
        assert store.get("x") == 42

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get("missing")

    def test_get_missing_with_default(self, store):
        assert store.get("missing", default="d") == "d"

    def test_overwrite(self, store):
        store.put("x", 1)
        store.put("x", 2)
        assert store.get("x") == 2

    def test_versions_increase_monotonically(self, store):
        v1 = store.put("x", "a")
        v2 = store.put("x", "b")
        assert v2 == v1 + 1
        assert store.get_versioned("x").version == v2

    def test_delete(self, store):
        store.put("x", 1)
        assert store.delete("x") is True
        assert store.delete("x") is False
        assert not store.exists("x")

    def test_exists(self, store):
        assert not store.exists("x")
        store.put("x", None)
        assert store.exists("x")

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            HyperStore(nodes=0)


class TestCAS:
    def test_cas_success(self, store):
        store.put("x", "old")
        store.cas("x", "old", "new")
        assert store.get("x") == "new"

    def test_cas_mismatch_raises_and_preserves(self, store):
        store.put("x", "actual")
        with pytest.raises(CASMismatchError):
            store.cas("x", "expected", "new")
        assert store.get("x") == "actual"

    def test_cas_create_if_absent(self, store):
        store.cas("fresh", None, "v")
        assert store.get("fresh") == "v"

    def test_cas_create_fails_if_present(self, store):
        store.put("x", 1)
        with pytest.raises(CASMismatchError):
            store.cas("x", None, 2)


class TestIncrAndUpdate:
    def test_incr_from_zero(self, store):
        assert store.incr("c") == 1
        assert store.incr("c", 5) == 6

    def test_incr_non_integer_raises(self, store):
        store.put("c", "text")
        with pytest.raises(TypeError):
            store.incr("c")

    def test_update_read_modify_write(self, store):
        store.put("lst", [1])
        result = store.update("lst", lambda v: v + [2])
        assert result == [1, 2]
        assert store.get("lst") == [1, 2]

    def test_update_missing_uses_default(self, store):
        result = store.update("m", lambda v: v + 1, default=10)
        assert result == 11

    def test_concurrent_incr_is_atomic(self, store):
        threads = [
            threading.Thread(
                target=lambda: [store.incr("counter") for _ in range(200)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get("counter") == 1600


class TestScansAndSearch:
    def test_keys_with_prefix(self, store):
        store.put("a$1", 1)
        store.put("a$2", 2)
        store.put("b$1", 3)
        assert sorted(store.keys("a$")) == ["a$1", "a$2"]

    def test_search_by_attribute_equality(self, store):
        store.put("user/1", {"name": "ann", "age": 30})
        store.put("user/2", {"name": "bob", "age": 25})
        hits = store.search("user/", name="ann")
        assert [k for k, _ in hits] == ["user/1"]

    def test_search_with_predicate(self, store):
        store.put("user/1", {"age": 30})
        store.put("user/2", {"age": 25})
        hits = store.search("user/", age=lambda a: a > 27)
        assert [k for k, _ in hits] == ["user/1"]

    def test_search_requires_all_predicates(self, store):
        store.put("u/1", {"a": 1, "b": 2})
        assert store.search("u/", a=1, b=3) == []

    def test_search_skips_non_dict_values(self, store):
        store.put("u/1", "scalar")
        store.put("u/2", {"a": 1})
        assert [k for k, _ in store.search("u/", a=1)] == ["u/2"]

    def test_search_missing_attribute_no_match(self, store):
        store.put("u/1", {"a": 1})
        assert store.search("u/", nope=1) == []


class TestElasticGrowth:
    def test_add_node_preserves_all_data(self):
        store = HyperStore(nodes=2)
        data = {f"k{i}": i for i in range(500)}
        for k, v in data.items():
            store.put(k, v)
        store.add_node()
        assert store.node_count() == 3
        for k, v in data.items():
            assert store.get(k) == v

    def test_add_node_rebalances(self):
        store = HyperStore(nodes=1)
        for i in range(400):
            store.put(f"k{i}", i)
        store.add_node()
        sizes = store.partition_sizes()
        assert all(size > 0 for size in sizes.values())
        assert sum(sizes.values()) == 400


class TestFailurePropagation:
    def test_failed_node_raises_for_its_keys(self):
        """Paper section 4.4: key-value store failures are propagated,
        not masked."""
        store = HyperStore(nodes=2)
        for i in range(100):
            store.put(f"k{i}", i)
        victim = next(iter(store.partition_sizes()))
        store.fail_node(victim)
        failures = 0
        for i in range(100):
            try:
                store.get(f"k{i}")
            except StoreUnavailableError:
                failures += 1
        assert failures > 0

    def test_recovered_node_serves_again(self):
        store = HyperStore(nodes=1)
        store.put("x", 1)
        store.fail_node("store-0")
        with pytest.raises(StoreUnavailableError):
            store.get("x")
        store.recover_node("store-0")
        assert store.get("x") == 1

    def test_unknown_node_raises(self, store):
        with pytest.raises(ValueError):
            store.fail_node("bogus")


class TestStatistics:
    def test_hot_keys_tracked(self):
        store = HyperStore(nodes=1, track_hot_keys=True)
        for _ in range(10):
            store.put("hot", 1)
        store.put("cold", 1)
        ranked = store.hot_keys(top_n=1)
        assert ranked[0][0] == "hot"
        assert ranked[0][1] == 10

    def test_total_ops_counted(self, store):
        store.put("a", 1)
        store.get("a")
        store.delete("a")
        assert store.total_ops() == 3

    def test_on_op_hook_invoked(self):
        seen = []
        store = HyperStore(nodes=1, on_op=lambda op, key: seen.append((op, key)))
        store.put("x", 1)
        store.get("x")
        assert seen == [("put", "x"), ("get", "x")]
