"""Tests for consistent hashing."""

import pytest

from repro.kvstore.ring import HashRing


class TestHashRing:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(RuntimeError):
            HashRing().owner("k")

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add_node("a")
        assert all(ring.owner(f"k{i}") == "a" for i in range(50))

    def test_duplicate_add_raises(self):
        ring = HashRing()
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_raises(self):
        with pytest.raises(ValueError):
            HashRing().remove_node("a")

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_ownership_is_stable(self):
        ring = HashRing()
        for n in ("a", "b", "c"):
            ring.add_node(n)
        owners1 = {f"k{i}": ring.owner(f"k{i}") for i in range(100)}
        owners2 = {f"k{i}": ring.owner(f"k{i}") for i in range(100)}
        assert owners1 == owners2

    def test_distribution_roughly_balanced(self):
        ring = HashRing(vnodes=128)
        for n in ("a", "b", "c", "d"):
            ring.add_node(n)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(4000):
            counts[ring.owner(f"key-{i}")] += 1
        for node, count in counts.items():
            assert 400 < count < 2000, f"{node} owns {count}/4000"

    def test_adding_node_moves_only_some_keys(self):
        ring = HashRing(vnodes=64)
        ring.add_node("a")
        ring.add_node("b")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(1000)}
        ring.add_node("c")
        moved = sum(
            1 for k, owner in before.items() if ring.owner(k) != owner
        )
        # New node should take roughly a third, and every key that moved
        # must have moved TO the new node.
        assert 100 < moved < 600
        for k, owner in before.items():
            now = ring.owner(k)
            if now != owner:
                assert now == "c"

    def test_removing_node_restores_prior_ownership(self):
        ring = HashRing()
        ring.add_node("a")
        ring.add_node("b")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(200)}
        ring.add_node("c")
        ring.remove_node("c")
        after = {f"k{i}": ring.owner(f"k{i}") for i in range(200)}
        assert before == after

    def test_len_counts_nodes(self):
        ring = HashRing()
        ring.add_node("a")
        ring.add_node("b")
        assert len(ring) == 2
