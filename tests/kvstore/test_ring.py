"""Tests for consistent hashing."""

import pytest

from repro.kvstore.ring import HashRing


class TestHashRing:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(RuntimeError):
            HashRing().owner("k")

    def test_single_node_owns_everything(self):
        ring = HashRing()
        ring.add_node("a")
        assert all(ring.owner(f"k{i}") == "a" for i in range(50))

    def test_duplicate_add_raises(self):
        ring = HashRing()
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_raises(self):
        with pytest.raises(ValueError):
            HashRing().remove_node("a")

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_ownership_is_stable(self):
        ring = HashRing()
        for n in ("a", "b", "c"):
            ring.add_node(n)
        owners1 = {f"k{i}": ring.owner(f"k{i}") for i in range(100)}
        owners2 = {f"k{i}": ring.owner(f"k{i}") for i in range(100)}
        assert owners1 == owners2

    def test_distribution_roughly_balanced(self):
        ring = HashRing(vnodes=128)
        for n in ("a", "b", "c", "d"):
            ring.add_node(n)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(4000):
            counts[ring.owner(f"key-{i}")] += 1
        for node, count in counts.items():
            assert 400 < count < 2000, f"{node} owns {count}/4000"

    def test_adding_node_moves_only_some_keys(self):
        ring = HashRing(vnodes=64)
        ring.add_node("a")
        ring.add_node("b")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(1000)}
        ring.add_node("c")
        moved = sum(
            1 for k, owner in before.items() if ring.owner(k) != owner
        )
        # New node should take roughly a third, and every key that moved
        # must have moved TO the new node.
        assert 100 < moved < 600
        for k, owner in before.items():
            now = ring.owner(k)
            if now != owner:
                assert now == "c"

    def test_removing_node_restores_prior_ownership(self):
        ring = HashRing()
        ring.add_node("a")
        ring.add_node("b")
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(200)}
        ring.add_node("c")
        ring.remove_node("c")
        after = {f"k{i}": ring.owner(f"k{i}") for i in range(200)}
        assert before == after

    def test_len_counts_nodes(self):
        ring = HashRing()
        ring.add_node("a")
        ring.add_node("b")
        assert len(ring) == 2


class TestIncrementalRemoval:
    """Satellite bugfix: removal deletes the node's own points by
    bisection instead of rebuilding the whole sorted ring."""

    def test_removal_equals_rebuild(self):
        """Any removal order leaves the ring identical to one built
        from scratch with the surviving nodes."""
        nodes = [f"node-{i}" for i in range(8)]
        ring = HashRing(vnodes=32)
        for node in nodes:
            ring.add_node(node)
        for victim in ("node-3", "node-0", "node-7"):
            ring.remove_node(victim)
            nodes.remove(victim)
            rebuilt = HashRing(vnodes=32)
            for node in nodes:
                rebuilt.add_node(node)
            assert ring._ring == rebuilt._ring
            assert ring.nodes == rebuilt.nodes

    def test_remove_then_readd_roundtrips(self):
        ring = HashRing(vnodes=16)
        for node in ("a", "b", "c"):
            ring.add_node(node)
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(300)}
        ring.remove_node("b")
        ring.add_node("b")
        after = {f"k{i}": ring.owner(f"k{i}") for i in range(300)}
        assert before == after

    def test_keys_moving_on_removal_go_to_survivors(self):
        ring = HashRing(vnodes=64)
        for node in ("a", "b", "c"):
            ring.add_node(node)
        before = {f"k{i}": ring.owner(f"k{i}") for i in range(1000)}
        ring.remove_node("b")
        for key, owner in before.items():
            now = ring.owner(key)
            if owner == "b":
                assert now in ("a", "c")
            else:
                assert now == owner  # survivors keep their keys


class TestOwnerTieBreak:
    """Satellite bugfix: lookup bisects with ``(hash, "")`` instead of a
    U+FFFF sentinel string, so node names above the BMP order
    correctly and equal-hash ties break deterministically."""

    def test_astral_plane_node_names_route(self):
        # "\U0001F600" (and friends) sort *above* the old "￿"
        # sentinel, which used to skew successor choice at their points.
        ring = HashRing(vnodes=32)
        names = ["\U0001F600-node", "\U0001F680-node", "plain-node"]
        for name in names:
            ring.add_node(name)
        counts = {name: 0 for name in names}
        for i in range(3000):
            counts[ring.owner(f"key-{i}")] += 1
        # Every node — astral or not — owns a real share of the space.
        for name, count in counts.items():
            assert count > 300, f"{name!r} owns {count}/3000"

    def test_astral_names_removal_equals_rebuild(self):
        ring = HashRing(vnodes=16)
        for name in ("\U0001F600", "z", "￿", "a"):
            ring.add_node(name)
        ring.remove_node("￿")
        rebuilt = HashRing(vnodes=16)
        for name in ("\U0001F600", "z", "a"):
            rebuilt.add_node(name)
        assert ring._ring == rebuilt._ring

    def test_exact_point_hash_owns_deterministically(self):
        """A key hashing exactly onto a ring point resolves to that
        point (hash >= h, ties to the smallest node name) — the same
        answer on every construction of the same ring."""
        ring = HashRing(vnodes=8)
        for name in ("alpha", "beta"):
            ring.add_node(name)
        # Synthesize an exact collision: bisect at each point's own hash
        # must return that point's position, so the owner is the point's
        # node (or, on an equal-hash run, the lexicographically first).
        for point_hash, node in ring._ring:
            hits = [n for h, n in ring._ring if h == point_hash]
            idx = __import__("bisect").bisect_left(
                ring._ring, (point_hash, "")
            )
            assert ring._ring[idx][0] == point_hash
            assert ring._ring[idx][1] == min(hits)
