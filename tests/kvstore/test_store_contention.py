"""Multi-thread contention on cas/update, and scan-vs-writer safety.

The store's whole value is per-key linearizability under concurrency;
these tests hammer the primitives from many threads and assert nothing
is lost, duplicated, or version-reordered.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import CASMismatchError
from repro.kvstore import HyperStore

THREADS = 8
ROUNDS = 250


@pytest.fixture
def store():
    return HyperStore(nodes=2)


def run_threads(fn, n=THREADS):
    threads = [threading.Thread(target=fn, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestUpdateContention:
    def test_no_lost_updates(self, store):
        store.put("ctr", 0)

        def worker(_):
            for _ in range(ROUNDS):
                store.update("ctr", lambda v: v + 1)

        run_threads(worker)
        assert store.get("ctr") == THREADS * ROUNDS
        # One version per write: the initial put plus every update.
        assert store.get_versioned("ctr").version == THREADS * ROUNDS + 1

    def test_update_creates_exactly_once_under_race(self, store):
        # All threads update a missing key concurrently; the default
        # must be applied exactly once, not once per thread.
        def worker(_):
            store.update("race", lambda v: v + 1, default=0)

        run_threads(worker)
        assert store.get("race") == THREADS


class TestCasContention:
    def test_cas_loop_serializes_all_writers(self, store):
        failures = [0] * THREADS

        def worker(i):
            for _ in range(ROUNDS):
                while True:
                    current = store.get("acc", default=None)
                    try:
                        store.cas(
                            "acc", current, (current or 0) + 1
                        )
                        break
                    except CASMismatchError:
                        failures[i] += 1

        run_threads(worker, n=4)
        assert store.get("acc") == 4 * ROUNDS
        # Versions count successful writes only.
        assert store.get_versioned("acc").version == 4 * ROUNDS

    def test_only_one_create_if_absent_wins(self, store):
        winners = []

        def worker(i):
            try:
                store.cas("slot", None, f"thread-{i}")
                winners.append(i)
            except CASMismatchError:
                pass

        run_threads(worker)
        assert len(winners) == 1
        assert store.get("slot") == f"thread-{winners[0]}"


class TestScanSafety:
    def test_keys_snapshot_is_immune_to_concurrent_mutation(self, store):
        """The satellite fix: `keys(prefix)` snapshots candidates at
        call time, so a racing writer can neither crash the iteration
        (set changed size during iteration) nor leak into it."""
        for i in range(50):
            store.put(f"scan$k{i}", i)
        stop = threading.Event()

        def churn():
            i = 50
            while not stop.is_set():
                store.put(f"scan$k{i}", i)
                store.delete(f"scan$k{i - 25}")
                i += 1

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(100):
                listed = list(store.keys("scan$"))
                assert all(k.startswith("scan$") for k in listed)
        finally:
            stop.set()
            t.join()

    def test_snapshot_taken_at_call_not_first_next(self, store):
        store.put("snap$a", 1)
        it = store.keys("snap$")
        store.put("snap$b", 2)  # after the call: not in the snapshot
        assert list(it) == ["snap$a"]


class TestWatchedContention:
    def test_watched_counter_under_contention_stays_exact(self, store):
        """Watches riding on contended writes: every version delivered
        exactly once, in order, while 8 threads fight for the key."""
        events = []
        lock = threading.Lock()

        def record(event):
            with lock:
                events.append(event.version)

        store.watch("hot", record)

        def worker(_):
            for _ in range(ROUNDS):
                store.incr("hot")

        run_threads(worker)
        assert events == list(range(1, THREADS * ROUNDS + 1))
