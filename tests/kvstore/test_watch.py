"""Store watch subsystem: ordering, locking discipline, overflow, errors.

The two load-bearing guarantees: subscribers observe a key's events in
version order (events are enqueued under the stripe lock that serialized
the writes), and no callback ever runs while a stripe lock is held (the
writer drains queues only after unlocking), so a subscriber can re-enter
the store freely.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import StoreUnavailableError
from repro.kvstore import HyperStore
from repro.kvstore.watch import AsyncWatchQueue, WatchEvent, WatchHub


@pytest.fixture
def store():
    return HyperStore(nodes=2)


class TestDeliveryBasics:
    def test_put_delete_events_in_version_order(self, store):
        events: list[WatchEvent] = []
        store.watch("k", events.append)
        store.put("k", "a")
        store.put("k", "b")
        store.delete("k")
        store.put("k", "c")
        assert [(e.kind, e.value) for e in events] == [
            ("put", "a"),
            ("put", "b"),
            ("delete", None),
            ("put", "c"),
        ]
        # Versions are strictly monotonic, *including* across the
        # delete/recreate boundary (the delete consumes a version).
        assert [e.version for e in events] == [1, 2, 3, 4]

    def test_cas_incr_update_fire_put_events(self, store):
        events = []
        store.watch("n", events.append)
        store.incr("n", 5)
        store.cas("n", 5, 6)
        store.update("n", lambda v: v + 1)
        assert [(e.kind, e.value) for e in events] == [
            ("put", 5),
            ("put", 6),
            ("put", 7),
        ]

    def test_prefix_watch_sees_only_matching_keys(self, store):
        events = []
        store.watch_prefix("svc$", events.append)
        store.put("svc$epoch", 1)
        store.put("other$epoch", 9)
        store.put("svc$map", {"a": 1})
        assert [e.key for e in events] == ["svc$epoch", "svc$map"]

    def test_put_many_notifies_each_key(self, store):
        events = []
        store.watch_prefix("m$", events.append)
        versions = store.put_many({"m$a": 1, "m$b": 2})
        assert versions == {"m$a": 1, "m$b": 1}
        assert sorted(e.key for e in events) == ["m$a", "m$b"]

    def test_cancel_stops_delivery_and_unregisters(self, store):
        events = []
        sub = store.watch("k", events.append)
        store.put("k", 1)
        sub.cancel()
        store.put("k", 2)
        assert [e.value for e in events] == [1]
        assert store.watch_stats()["subscriptions"] == 0

    def test_callback_exception_does_not_break_writer(self, store):
        sub = store.watch("k", lambda e: 1 / 0)
        store.put("k", 1)  # must not raise into the writer
        assert sub.callback_errors == 1
        assert sub.delivered == 0


class TestLockingDiscipline:
    def test_no_stripe_lock_held_during_delivery(self, store):
        """The lock-probing subscriber: RLock reentrancy makes an
        acquire-based probe useless on the writer thread, but the
        C-level ``_is_owned`` answers for the *calling* thread."""
        owned: list[bool] = []

        def probe(event: WatchEvent) -> None:
            for part in store._partitions.values():
                owned.extend(lock._is_owned() for lock in part._stripes)

        store.watch("k", probe)
        store.put("k", 1)
        assert owned and not any(owned)

    def test_subscriber_may_reenter_the_store(self, store):
        """Re-entrancy: a callback reading (or writing!) the store must
        not deadlock — this is what off-lock delivery buys."""
        seen = []

        def reenter(event: WatchEvent) -> None:
            if event.value == "trigger":
                store.put("other", "from-callback")
            seen.append(store.get("k"))

        store.watch("k", reenter)
        store.put("k", "trigger")
        assert seen == ["trigger"]
        assert store.get("other") == "from-callback"


class TestConcurrentOrdering:
    def test_multithreaded_writers_deliver_in_version_order(self, store):
        events: list[WatchEvent] = []
        done = threading.Event()
        store.watch("ctr", events.append)

        def hammer():
            for _ in range(200):
                store.incr("ctr")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done.set()
        versions = [e.version for e in events]
        assert versions == sorted(versions)
        assert versions == list(range(1, len(versions) + 1))
        assert versions[-1] == 800


class TestOverflow:
    def test_queue_overflow_drops_oldest_and_delivers_gap(self):
        hub = WatchHub(depth=4)
        received: list[WatchEvent] = []
        sub = hub.watch("k", received.append)
        # Fill the queue without draining: enqueue() returns True only
        # for the combiner; pretend the combiner is stalled by never
        # calling drain until the end.
        kicked = []
        for i in range(10):
            if sub.enqueue(WatchEvent("k", "put", i, i + 1)):
                kicked.append(sub)
        # Combiner duty was claimed exactly once...
        assert kicked == [sub]
        sub.drain()
        # ...and the subscriber saw: a gap first (the hole precedes the
        # survivors), then the newest `depth` events.
        assert received[0].kind == "gap"
        assert [e.version for e in received[1:]] == [7, 8, 9, 10]
        assert sub.dropped == 6


class TestFailureEvents:
    def test_fail_node_fires_error_to_affected_key_watch(self, store):
        events = []
        store.watch("k", events.append)
        store.fail_node(store.owner_node("k"))
        assert [e.kind for e in events] == ["error"]
        assert isinstance(events[0].error, StoreUnavailableError)

    def test_fail_node_skips_keys_on_other_nodes(self, store):
        key = "k"
        owner = store.owner_node(key)
        other = next(n for n in store.node_names() if n != owner)
        events = []
        store.watch(key, events.append)
        store.fail_node(other)
        store.recover_node(other)
        assert events == []

    def test_prefix_watch_always_hears_failures(self, store):
        # A prefix can span partitions, so node failure must reach it.
        events = []
        store.watch_prefix("svc$", events.append)
        store.fail_node(store.node_names()[0])
        assert [e.kind for e in events] == ["error"]

    def test_recover_fires_error_event_too(self, store):
        events = []
        store.watch("k", events.append)
        node = store.owner_node("k")
        store.fail_node(node)
        store.recover_node(node)
        assert [e.kind for e in events] == ["error", "error"]


class TestObservability:
    def test_delivered_and_dropped_counters(self, store):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        store.set_obs(registry)
        store.watch("k", lambda e: None)
        store.put("k", 1)
        store.put("k", 2)
        snap = registry.snapshot()
        assert snap["counters"]["kvstore.watch.delivered"] == 2
        assert "kvstore.watch.dropped" not in snap["counters"]


class TestAsyncBridge:
    def test_events_arrive_on_the_loop(self, store):
        from repro.rmi.aio import loop_runtime

        loop = loop_runtime().loop
        bridge = AsyncWatchQueue(loop)
        store.watch("k", bridge.callback)
        store.put("k", "x")
        store.put("k", "y")

        async def collect():
            return [await bridge.get(), await bridge.get()]

        events = asyncio.run_coroutine_threadsafe(collect(), loop).result(5.0)
        assert [(e.value, e.version) for e in events] == [("x", 1), ("y", 2)]

    def test_bounded_bridge_degrades_with_gap(self, store):
        from repro.rmi.aio import loop_runtime

        loop = loop_runtime().loop
        bridge = AsyncWatchQueue(loop, maxsize=2)
        store.watch("b", bridge.callback)
        for i in range(6):
            store.put("b", i)

        async def drain_all():
            out = []
            while not bridge.empty():
                out.append(await bridge.get())
            return out

        events = asyncio.run_coroutine_threadsafe(drain_all(), loop).result(5.0)
        assert bridge.dropped > 0
        assert any(e.kind == "gap" for e in events)
        # The newest event always survives displacement.
        assert events[-1].value == 5
